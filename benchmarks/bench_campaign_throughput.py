"""Campaign engine throughput: serial vs. pooled missions/sec.

Runs the same 16-mission campaign (4 scenarios x 2 policies x 2 runs)
through the serial path and through a multiprocessing pool, reports
missions/sec for both, and verifies the two paths produce bit-identical
records. The speedup assertion only applies on machines with enough
cores -- on a 1-2 core box the pool merely pays its fork overhead.
"""

import os
import time

from repro.experiments.reporting import ascii_table
from repro.sim import Campaign, get_scenario, run_campaign

#: Simulated flight time per mission; short enough to benchmark, long
#: enough that execution dominates the pool's process start-up cost.
FLIGHT_TIME_S = 30.0


def build_campaign() -> Campaign:
    return Campaign(
        name="throughput",
        scenarios=tuple(
            get_scenario(n)
            for n in ("paper-room", "apartment", "corridor-maze", "empty-arena")
        ),
        policies=("pseudo-random", "spiral"),
        n_runs=2,
        flight_time_s=FLIGHT_TIME_S,
        seed=2023,
    )


def test_campaign_throughput():
    campaign = build_campaign()
    n = len(campaign.missions())
    assert n == 16

    start = time.perf_counter()
    serial = run_campaign(campaign, workers=None)
    serial_s = time.perf_counter() - start

    cores = os.cpu_count() or 1
    pool_workers = min(4, max(2, cores))
    start = time.perf_counter()
    pooled = run_campaign(campaign, workers=pool_workers)
    pooled_s = time.perf_counter() - start

    print()
    print(
        ascii_table(
            ["path", "workers", "wall [s]", "missions/s"],
            [
                ["serial", "1", f"{serial_s:.2f}", f"{n / serial_s:.2f}"],
                ["pool", str(pool_workers), f"{pooled_s:.2f}", f"{n / pooled_s:.2f}"],
            ],
            title=(
                f"campaign throughput: {n} missions x {FLIGHT_TIME_S:.0f} s "
                f"simulated flight ({cores} cores)"
            ),
        )
    )
    print(f"speedup: {serial_s / pooled_s:.2f}x")

    # The two paths must be indistinguishable downstream.
    assert serial.records == pooled.records
    assert serial.to_json() == pooled.to_json()
    # On a real multi-core machine the pool must pay for itself. Set
    # REPRO_BENCH_RELAX=1 on loaded/oversubscribed machines where the
    # wall-clock comparison is meaningless.
    if cores >= 4 and os.environ.get("REPRO_BENCH_RELAX") != "1":
        assert serial_s / pooled_s >= 2.0, (
            f"expected >= 2x speedup on {cores} cores, got {serial_s / pooled_s:.2f}x"
        )
