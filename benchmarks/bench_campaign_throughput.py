"""Campaign engine throughput: serial vs. pooled vs. cache-hit missions/sec.

Runs the same 16-mission campaign (4 scenarios x 2 policies x 2 runs)
through the serial path and through a multiprocessing pool, reports
missions/sec for both, and verifies the two paths produce bit-identical
records. The speedup assertion only applies on machines with enough
cores -- on a 1-2 core box the pool merely pays its fork overhead.

Run as a script to also measure the execution layer itself and emit a
JSON report::

    PYTHONPATH=src python benchmarks/bench_campaign_throughput.py \\
        --out BENCH_campaign_throughput.json

which adds four sections: ``executor_overhead`` (per-job cost of the
JobSpec hash + executor bookkeeping against calling the function
directly, with and without a cache), ``fault_tolerance`` (the no-fault
cost of the retry-policy machinery, and the per-job cost of recovering
from one injected transient failure), ``cache_hit_throughput`` (the
same campaign re-run against a warm cache: zero missions executed, all
records loaded) and ``record_overhead`` (the same campaign flown with
``--record`` telemetry capture on; asserts the capture costs < 10 %
wall clock and never changes the result bytes).
"""

import argparse
import json
import os
import tempfile
import time

from repro.exec import Executor, JobSpec, ResultCache, RetryPolicy
from repro.exec.demo import scaled_sum
from repro.exec.faults import FaultPlan, FaultSpec, injected
from repro.experiments.reporting import ascii_table, machine_info
from repro.sim import Campaign, get_scenario, run_campaign

#: Simulated flight time per mission; short enough to benchmark, long
#: enough that execution dominates the pool's process start-up cost.
FLIGHT_TIME_S = 30.0


def build_campaign(flight_time_s: float = FLIGHT_TIME_S) -> Campaign:
    return Campaign(
        name="throughput",
        scenarios=tuple(
            get_scenario(n)
            for n in ("paper-room", "apartment", "corridor-maze", "empty-arena")
        ),
        policies=("pseudo-random", "spiral"),
        n_runs=2,
        flight_time_s=flight_time_s,
        seed=2023,
    )


def bench_executor_overhead(n_jobs: int = 500) -> dict:
    """Per-job cost of the execution layer on trivial jobs.

    Compares ``n_jobs`` direct calls of a no-op-sized function against
    the same calls submitted as jobs (hashing + bookkeeping, no cache),
    then against a cold cache (adds the store) and a warm cache (pure
    hit path).
    """
    jobs = [
        JobSpec(
            fn="repro.exec.demo:scaled_sum",
            kwargs={"values": [float(i)], "factor": 2.0},
            version="bench/v1",
        )
        for i in range(n_jobs)
    ]

    start = time.perf_counter()
    direct = [scaled_sum([float(i)], 2.0) for i in range(n_jobs)]
    direct_s = time.perf_counter() - start

    start = time.perf_counter()
    uncached = Executor().run(jobs)
    executor_s = time.perf_counter() - start
    assert uncached == direct

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        start = time.perf_counter()
        Executor(cache=cache).run(jobs)
        cold_cache_s = time.perf_counter() - start
        hit_executor = Executor(cache=cache)
        start = time.perf_counter()
        hits = hit_executor.run(jobs)
        warm_cache_s = time.perf_counter() - start
        assert hits == direct
        assert hit_executor.last_report.executed == 0

    return {
        "n_jobs": n_jobs,
        "direct_s": direct_s,
        "executor_s": executor_s,
        "cold_cache_s": cold_cache_s,
        "warm_cache_s": warm_cache_s,
        "overhead_us_per_job": (executor_s - direct_s) / n_jobs * 1e6,
        "store_us_per_job": (cold_cache_s - direct_s) / n_jobs * 1e6,
        "hit_us_per_job": warm_cache_s / n_jobs * 1e6,
    }


def bench_fault_tolerance(n_jobs: int = 500) -> dict:
    """Cost of the fault-tolerance machinery on the hot (no-fault) path.

    The retry policy, the fault-plan lookup and the per-attempt
    bookkeeping all sit on every job execution, so their no-op cost
    must stay in the noise. Times the same trivial job set three ways
    -- no policy, a 3-attempt policy with nothing failing, and a
    3-attempt policy with an injected transient fault on every first
    attempt -- and verifies the chaos arm still returns the exact
    no-fault results.
    """
    jobs = [
        JobSpec(
            fn="repro.exec.demo:scaled_sum",
            kwargs={"values": [float(i)], "factor": 2.0},
            version="bench/v1",
        )
        for i in range(n_jobs)
    ]

    start = time.perf_counter()
    baseline = Executor().run(jobs)
    baseline_s = time.perf_counter() - start

    start = time.perf_counter()
    with_policy = Executor(retry=RetryPolicy(max_attempts=3)).run(jobs)
    policy_s = time.perf_counter() - start
    assert with_policy == baseline

    chaos_executor = Executor(retry=RetryPolicy(max_attempts=3))
    plan = FaultPlan((FaultSpec(kind="raise", attempt=0),))
    start = time.perf_counter()
    with injected(plan):
        chaos = chaos_executor.run(jobs)
    chaos_s = time.perf_counter() - start
    assert chaos == baseline
    assert chaos_executor.last_report.retried == n_jobs

    return {
        "n_jobs": n_jobs,
        "baseline_s": baseline_s,
        "policy_s": policy_s,
        "chaos_s": chaos_s,
        "policy_overhead_us_per_job": (policy_s - baseline_s) / n_jobs * 1e6,
        "retry_us_per_job": (chaos_s - baseline_s) / n_jobs * 1e6,
    }


def bench_cache_hit_throughput(campaign: Campaign, executed_s: float) -> dict:
    """Missions/sec when every mission of ``campaign`` is a cache hit."""
    n = len(campaign.missions())
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        warm = run_campaign(campaign, cache=cache)
        start = time.perf_counter()
        hit = run_campaign(campaign, cache=cache)
        hit_s = time.perf_counter() - start
    assert hit.execution.executed == 0, hit.execution
    assert hit.execution.cached == n
    assert warm.to_json() == hit.to_json()
    return {
        "missions": n,
        "wall_s": hit_s,
        "missions_per_s": n / hit_s if hit_s > 0 else float("inf"),
        "speedup_vs_serial": executed_s / hit_s if hit_s > 0 else float("inf"),
    }


#: Hard ceiling on the wall-clock cost of ``--record`` telemetry
#: capture, relative to an identical unrecorded campaign.
RECORD_OVERHEAD_LIMIT = 0.10


def bench_record_overhead(campaign: Campaign, repeats: int = 5) -> dict:
    """Wall-clock cost of flight recording on a fresh campaign.

    Flies ``campaign`` from scratch ``repeats`` times per arm -- plain
    and with ``record=True`` into a throwaway trace store -- and
    asserts the observability contract: byte-identical result JSON and
    less than :data:`RECORD_OVERHEAD_LIMIT` relative wall-clock
    overhead. Each repeat times one plain and one recorded campaign
    back to back (fresh cache every time, so nothing is a hit) and the
    overhead asserted is the best of the paired ratios: pairing samples
    both arms under near-identical machine load, and the minimum
    discards pairs where background noise hit one arm but not the other
    -- external noise only ever adds time, so the best pair is the
    closest estimate of the true capture cost. The reported
    ``overhead_frac`` is the median pair, a fairer headline number on a
    loaded machine (the min can dip below zero when noise lands on the
    plain arm).
    """
    n = len(campaign.missions())

    # Both arms store results into a fresh cache so the only variable
    # is the telemetry capture itself.
    plain_s = recorded_s = float("inf")
    ratios = []
    for _ in range(repeats):
        with tempfile.TemporaryDirectory() as tmp:
            start = time.perf_counter()
            plain = run_campaign(campaign, cache=ResultCache(tmp))
            pair_plain_s = time.perf_counter() - start
        with tempfile.TemporaryDirectory() as tmp:
            start = time.perf_counter()
            recorded = run_campaign(campaign, cache=ResultCache(tmp), record=True)
            pair_recorded_s = time.perf_counter() - start
            from repro.obs import TraceStore

            trace_stats = TraceStore(tmp).stats()
        plain_s = min(plain_s, pair_plain_s)
        recorded_s = min(recorded_s, pair_recorded_s)
        ratios.append(pair_recorded_s / pair_plain_s)

    assert recorded.to_json() == plain.to_json()
    assert trace_stats.traces == n
    overhead = min(ratios) - 1.0
    median_overhead = sorted(ratios)[len(ratios) // 2] - 1.0
    # REPRO_BENCH_RELAX=1 skips the wall-clock assertion on loaded or
    # oversubscribed machines, same as the pool-speedup check above.
    if os.environ.get("REPRO_BENCH_RELAX") != "1":
        assert overhead < RECORD_OVERHEAD_LIMIT, (
            f"recording cost {overhead:.1%} wall clock "
            f"(limit {RECORD_OVERHEAD_LIMIT:.0%}): {plain_s:.2f}s plain vs "
            f"{recorded_s:.2f}s recorded"
        )
    return {
        "missions": n,
        "plain_s": plain_s,
        "recorded_s": recorded_s,
        "overhead_frac": median_overhead,
        "best_pair_overhead_frac": overhead,
        "limit_frac": RECORD_OVERHEAD_LIMIT,
        "trace_bytes": trace_stats.total_bytes,
        "trace_bytes_per_mission": trace_stats.total_bytes / n,
    }


def run_benchmarks(quick: bool = False, out_path: str = None) -> dict:
    campaign = build_campaign(10.0 if quick else FLIGHT_TIME_S)
    n = len(campaign.missions())

    start = time.perf_counter()
    serial = run_campaign(campaign, workers=None)
    serial_s = time.perf_counter() - start

    machine = machine_info()
    # Size the pool from the cores the process may actually use, not the
    # box's total -- on cgroup-limited CI runners the two differ a lot.
    cores = machine["cpus_available"] or os.cpu_count() or 1
    pool_workers = min(4, max(2, cores))
    start = time.perf_counter()
    pooled = run_campaign(campaign, workers=pool_workers)
    pooled_s = time.perf_counter() - start
    assert serial.to_json() == pooled.to_json()

    overhead = bench_executor_overhead(100 if quick else 500)
    faults = bench_fault_tolerance(100 if quick else 500)
    cache_hits = bench_cache_hit_throughput(campaign, serial_s)
    recording = bench_record_overhead(campaign)

    print(
        ascii_table(
            ["path", "workers", "wall [s]", "missions/s"],
            [
                ["serial", "1", f"{serial_s:.2f}", f"{n / serial_s:.2f}"],
                ["pool", str(pool_workers), f"{pooled_s:.2f}", f"{n / pooled_s:.2f}"],
                [
                    "cache hit",
                    "1",
                    f"{cache_hits['wall_s']:.2f}",
                    f"{cache_hits['missions_per_s']:.2f}",
                ],
            ],
            title=(
                f"campaign throughput: {n} missions x "
                f"{campaign.flight_time_s:.0f} s simulated flight ({cores} cores)"
            ),
        )
    )
    print(
        f"executor overhead: {overhead['overhead_us_per_job']:.0f} us/job, "
        f"cache store {overhead['store_us_per_job']:.0f} us/job, "
        f"cache hit {overhead['hit_us_per_job']:.0f} us/job"
    )
    print(
        f"record overhead: {recording['overhead_frac']:.1%} wall clock "
        f"(limit {recording['limit_frac']:.0%}), "
        f"{recording['trace_bytes_per_mission'] / 1e3:.1f} kB trace/mission"
    )
    print(
        f"fault tolerance: retry-policy bookkeeping "
        f"{faults['policy_overhead_us_per_job']:.0f} us/job on the no-fault "
        f"path, {faults['retry_us_per_job']:.0f} us/job with one injected "
        f"transient failure per job"
    )

    payload = {
        "machine": machine,
        "campaign": {
            "missions": n,
            "flight_time_s": campaign.flight_time_s,
            "cores": cores,
            "serial_s": serial_s,
            "pooled_s": pooled_s,
            "pool_workers": pool_workers,
            "serial_missions_per_s": n / serial_s,
            "pooled_missions_per_s": n / pooled_s,
            "pool_speedup": serial_s / pooled_s,
        },
        "executor_overhead": overhead,
        "fault_tolerance": faults,
        "cache_hit_throughput": cache_hits,
        "record_overhead": recording,
    }
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {out_path}")
    return payload


def test_campaign_throughput():
    campaign = build_campaign()
    n = len(campaign.missions())
    assert n == 16

    start = time.perf_counter()
    serial = run_campaign(campaign, workers=None)
    serial_s = time.perf_counter() - start

    cores = machine_info()["cpus_available"] or os.cpu_count() or 1
    pool_workers = min(4, max(2, cores))
    start = time.perf_counter()
    pooled = run_campaign(campaign, workers=pool_workers)
    pooled_s = time.perf_counter() - start

    print()
    print(
        ascii_table(
            ["path", "workers", "wall [s]", "missions/s"],
            [
                ["serial", "1", f"{serial_s:.2f}", f"{n / serial_s:.2f}"],
                ["pool", str(pool_workers), f"{pooled_s:.2f}", f"{n / pooled_s:.2f}"],
            ],
            title=(
                f"campaign throughput: {n} missions x {FLIGHT_TIME_S:.0f} s "
                f"simulated flight ({cores} cores)"
            ),
        )
    )
    print(f"speedup: {serial_s / pooled_s:.2f}x")

    # The two paths must be indistinguishable downstream.
    assert serial.records == pooled.records
    assert serial.to_json() == pooled.to_json()
    # On a real multi-core machine the pool must pay for itself. Set
    # REPRO_BENCH_RELAX=1 on loaded/oversubscribed machines where the
    # wall-clock comparison is meaningless.
    if cores >= 4 and os.environ.get("REPRO_BENCH_RELAX") != "1":
        assert serial_s / pooled_s >= 2.0, (
            f"expected >= 2x speedup on {cores} cores, got {serial_s / pooled_s:.2f}x"
        )


def test_cache_hit_reuse():
    """A warm cache serves the whole campaign with zero executions."""
    campaign = build_campaign(flight_time_s=10.0)
    report = bench_cache_hit_throughput(campaign, executed_s=1.0)
    assert report["missions"] == 16


def test_record_overhead():
    """Telemetry capture leaves results byte-identical and cheap."""
    report = bench_record_overhead(build_campaign(flight_time_s=10.0))
    assert report["missions"] == 16
    # The best paired ratio is the noise-robust estimate the bench
    # itself asserts on; the median headline number may wobble on a
    # loaded machine.
    assert report["best_pair_overhead_frac"] < report["limit_frac"]
    assert report["trace_bytes"] > 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="10 s flights and fewer overhead jobs (CI smoke)",
    )
    parser.add_argument(
        "--out", default="BENCH_campaign_throughput.json",
        help="path of the emitted JSON report",
    )
    args = parser.parse_args(argv)
    run_benchmarks(quick=args.quick, out_path=args.out)


if __name__ == "__main__":
    main()
