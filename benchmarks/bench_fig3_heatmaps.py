"""Regenerates Fig. 3: occupancy heatmaps of the four policies."""

from conftest import run_once

from repro.experiments import fig3


def test_fig3_heatmaps(benchmark, scale):
    result = run_once(benchmark, fig3.run, scale)
    print()
    print(fig3.format_maps(result))
    # Wall-following never explores the inner part of the room (paper).
    grid = result.grids["wall-following"]
    mask = grid.visited_mask
    inner = mask[3:-3, 3:-3]
    assert inner.mean() < 0.35
    # The spiral and pseudo-random policies beat it on overall coverage.
    assert result.coverage["spiral"] > result.coverage["wall-following"]
    assert result.coverage["pseudo-random"] > result.coverage["rotate-and-measure"]
