"""Shared benchmark fixtures and scale selection.

Every benchmark regenerates one of the paper's tables/figures. By default
a reduced "bench" scale keeps the whole suite in the minutes range; set
``REPRO_FULL=1`` for paper-scale runs (5 runs x 180 s flights, larger
training sets).
"""

import os

import pytest

from repro.experiments.config import FULL_SCALE, SMOKE_SCALE, quick


@pytest.fixture(scope="session")
def scale():
    """Experiment scale shared by all benchmarks."""
    if os.environ.get("REPRO_FULL") == "1":
        return FULL_SCALE
    return SMOKE_SCALE


@pytest.fixture(scope="session")
def train_scale():
    """Smaller scale for the training-heavy Table I benchmark."""
    if os.environ.get("REPRO_FULL") == "1":
        return FULL_SCALE
    return quick(
        SMOKE_SCALE,
        train_images=90,
        finetune_images=40,
        test_images=40,
        pretrain_epochs=4,
        finetune_epochs=2,
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)
