"""Regenerates Table II: params / MMAC / efficiency / FPS on GAP8."""

from conftest import run_once

from repro.experiments import table2


def test_table2_onboard(benchmark, scale):
    result = run_once(benchmark, table2.run, scale)
    print()
    print(table2.format_table(result))
    rows = {r.width: r for r in result.rows}
    # Paper shape: monotone params/MACs in alpha; throughput inverse.
    assert rows[1.0].params > rows[0.75].params > rows[0.5].params
    assert rows[1.0].macs > rows[0.75].macs > rows[0.5].macs
    assert rows[0.5].fps > rows[0.75].fps > rows[1.0].fps
    # Magnitudes within the paper's band.
    assert 1.0 <= rows[1.0].fps <= 2.5
    assert 3.0 <= rows[0.5].fps <= 6.0
    assert 4.5 <= rows[1.0].efficiency <= 6.5
