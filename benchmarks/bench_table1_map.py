"""Regenerates Table I: mAP across domains, fine-tuning and precision.

Trains the laptop-scale SSD family on the synthetic web domain, measures
the domain gap on the onboard domain, fine-tunes with QAT and converts to
int8 -- the paper's full accuracy table.
"""

from conftest import run_once

from repro.experiments import table1


def test_table1_map(benchmark, train_scale):
    result = run_once(benchmark, table1.run, train_scale)
    print()
    print(table1.format_table(result))
    widths = sorted(result.rows[0].map_by_width)
    # Shape checks mirroring the paper's qualitative claims.
    web = result.rows[0].map_by_width
    gap = result.rows[1].map_by_width
    ft = result.rows[2].map_by_width
    for w in widths:
        assert 0.0 <= web[w] <= 1.0
        # Fine-tuning must recover (most of) the domain gap.
        assert ft[w] >= gap[w] - 0.05
