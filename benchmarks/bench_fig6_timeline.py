"""Regenerates Fig. 6: coverage band + detection timeline, best config."""

from conftest import run_once

from repro.experiments import fig6


def test_fig6_timeline(benchmark, scale):
    result = run_once(benchmark, fig6.run, scale)
    print()
    print(fig6.format_figure(result))
    # Coverage grows monotonically and ends well above the start.
    assert (result.mean_coverage[1:] >= result.mean_coverage[:-1] - 1e-9).all()
    assert result.mean_coverage[-1] > 0.4
    # The best run detects most of the six objects.
    assert result.best_run.detection_rate >= 0.5
