"""Simulation-core microbenchmark: vectorized tick loop vs. the pre-PR path.

Measures single-mission throughput (control ticks/second) for the
batched, grid-accelerated simulation core against a faithful *legacy
emulation* of the pre-refactor hot path: per-beam numpy raycasts with
fresh temporaries, ``np.clip`` in the ToF noise model, per-call obstacle
segment rebuilding in ``Room.is_free``, per-sample ``TrackedSample``
allocation plus ``visited.sum()`` coverage, and the per-draw sensor noise
path. The legacy implementations are copied verbatim from the seed tree
and monkeypatched in for the baseline runs, so both sides execute in the
same process on the same interpreter -- and both must produce
bit-identical mission results, which the benchmark asserts.

Also times the raycast kernels in isolation (legacy per-ray loop vs.
batched broadcast vs. uniform grid) across segment counts.

Run standalone (this is what CI's bench smoke step does):

    PYTHONPATH=src python benchmarks/bench_sim_core.py --quick --out BENCH_sim_core.json

or through pytest: ``pytest benchmarks/bench_sim_core.py``. Results land
in ``BENCH_sim_core.json`` (see README "Performance"). Set
``REPRO_BENCH_RELAX=1`` on loaded machines to skip the speedup
assertion.
"""

import argparse
import json
import math
import os
import time
from contextlib import contextmanager
from typing import List, Optional

import numpy as np

from repro.drone.crazyflie import CrazyflieConfig
from repro.drone.dynamics import DroneDynamics, DroneState
from repro.drone.state_estimator import EstimatedState, StateEstimator
from repro.experiments.reporting import ascii_table, machine_info
from repro.geometry.raycast import RayCaster
from repro.geometry.vec import Vec2
from repro.mapping.mocap import MotionCaptureTracker, TrackedSample
from repro.mapping.occupancy import OccupancyGrid
from repro.mission.closed_loop import ClosedLoopMission
from repro.mission.detector_model import CalibratedDetectorModel, paper_operating_points
from repro.policies import PolicyConfig
from repro.policies.registry import make_policy
from repro.sensors.camera import HimaxCamera
from repro.sensors.tof import ToFSensor
from repro.sim import generate_scenario, get_scenario
from repro.world.layouts import cluttered_room
from repro.world.room import Room

#: Scenarios timed by the mission benchmark.
MISSION_SCENARIOS = ("paper-room", "dense-depot", "apartment")

#: Required speedup of the optimized core over the legacy emulation for a
#: single paper-room closed-loop mission (the PR-2 acceptance bar). Quick
#: mode flies 3x shorter missions, so per-mission setup amortizes less
#: and the smoke bar is lower.
REQUIRED_PAPER_ROOM_SPEEDUP = 3.0
REQUIRED_PAPER_ROOM_SPEEDUP_QUICK = 2.5

#: Required grid-vs-brute speedup for ``is_free`` point queries on a
#: generated 1000+-segment world (the PR-3 acceptance bar).
REQUIRED_POINT_QUERY_SPEEDUP = 2.0

#: Fleet sizes swept by the fleet-throughput benchmark.
FLEET_SIZES = (1, 8, 64)

#: Required fleet-vs-serial throughput gain at the largest fleet size on
#: paper-room (the fleet-vectorization acceptance bar). Quick mode flies
#: 3x shorter missions, so the fleet's per-block setup (noise-tape
#: pre-generation, schedules) amortizes over fewer ticks and the smoke
#: bar is lower.
REQUIRED_FLEET_SPEEDUP = 3.0
REQUIRED_FLEET_SPEEDUP_QUICK = 2.5

_EPS = 1e-12


# --------------------------------------------------------------------------
# Legacy (pre-PR) hot-path implementations, copied from the seed tree.


def _legacy_cast_distance(self, origin, heading) -> Optional[float]:
    dx, dy = math.cos(heading), math.sin(heading)
    denom = dx * self._ey - dy * self._ex
    ox = self._ax - origin.x
    oy = self._ay - origin.y
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        t = (ox * self._ey - oy * self._ex) / denom
        u = (ox * dy - oy * dx) / denom
    valid = (np.abs(denom) > _EPS) & (t >= 0.0) & (u >= -1e-9) & (u <= 1.0 + 1e-9)
    if not np.any(valid):
        return None
    return float(np.min(t[valid]))


def _legacy_cast(self, origin, heading, max_range=math.inf) -> float:
    d = _legacy_cast_distance(self, origin, heading)
    if d is None or d > max_range:
        return max_range
    return d


def _legacy_cast_hit(self, origin, heading):
    return _legacy_cast_distance(self, origin, heading)


def _legacy_cast_many(self, origin, headings, max_range=math.inf):
    return np.array(
        [_legacy_cast(self, origin, h, max_range) for h in headings],
        dtype=np.float64,
    )


def _legacy_line_of_sight(self, a, b, slack=1e-6) -> bool:
    dist = a.distance_to(b)
    if dist < _EPS:
        return True
    hit = _legacy_cast_distance(self, a, (b - a).heading())
    return hit is None or hit >= dist - slack


def _legacy_tof_measure(self, caster, position, heading) -> float:
    from repro.geometry.vec import normalize_angle

    beam = normalize_angle(heading + self.mount_angle)
    true_dist = caster.cast(position, beam, max_range=self.max_range)
    if self._rng is None:
        return true_dist
    if self._rng.uniform() < self.dropout_prob:
        return self.max_range
    noisy = true_dist + self._rng.normal(0.0, self.noise_std)
    return float(np.clip(noisy, 0.0, self.max_range))


def _legacy_is_free(self, p, margin=0.0) -> bool:
    if not self._bounds.contains(p, margin=margin):
        return False
    for obs in self._obstacles:
        if obs.contains(p):
            return False
        if margin > 0.0 and any(
            s.distance_to_point(p) < margin for s in obs.segments()
        ):
            return False
    return True


def _legacy_clearance(self, p) -> float:
    if not self.is_free(p):
        return 0.0
    return min(s.distance_to_point(p) for s in self.all_segments())


def _legacy_dynamics_step(self, setpoint, dt):
    from repro.geometry.vec import normalize_angle

    s = self.state
    alpha_v = 1.0 - math.exp(-dt / self.velocity_tau)
    alpha_w = 1.0 - math.exp(-dt / self.yaw_tau)
    vx = s.vx_body + alpha_v * (setpoint.forward - s.vx_body)
    vy = s.vy_body + alpha_v * (setpoint.side - s.vy_body)
    wz = s.yaw_rate + alpha_w * (setpoint.yaw_rate - s.yaw_rate)

    heading = normalize_angle(s.heading + wz * dt)
    candidate = DroneState(
        position=s.position,
        heading=heading,
        vx_body=vx,
        vy_body=vy,
        yaw_rate=wz,
        time=s.time,
    )
    delta = candidate.velocity_world() * dt
    new_pos, blocked = self._resolve_motion(s.position, delta)
    if blocked:
        self.collision_count += 1
        vx, vy = self._body_velocity_after_contact(new_pos, s.position, heading, dt)
    self.state = DroneState(
        position=new_pos,
        heading=heading,
        vx_body=vx,
        vy_body=vy,
        yaw_rate=wz,
        time=s.time + dt,
    )
    return self.state


def _legacy_estimate(self) -> EstimatedState:
    return EstimatedState(
        position=self._position,
        heading=self._heading,
        vx_body=self._vx,
        vy_body=self._vy,
        yaw_rate=self._yaw_rate,
        time=self._time,
    )


def _legacy_grid_init(self, room, cell_size=0.5, start=None):
    # The legacy hot path is the per-sample numpy bookkeeping below; the
    # once-per-mission reachable mask (which postdates the seed tree) is
    # built with the current helper on both sides so legacy and
    # optimized missions report the same normalized coverage.
    from repro.errors import WorldError
    from repro.world.freespace import reachable_cell_mask

    if cell_size <= 0.0:
        raise WorldError("cell size must be positive")
    self.room = room
    self.cell_size = cell_size
    self.nx = int(math.ceil(room.width / cell_size))
    self.ny = int(math.ceil(room.length / cell_size))
    self._np_time = np.zeros((self.ny, self.nx), dtype=np.float64)
    self._np_visited = np.zeros((self.ny, self.nx), dtype=bool)
    if start is None:
        self._np_reachable = np.ones((self.ny, self.nx), dtype=bool)
        self.reachable_cells = self.nx * self.ny
    else:
        self._np_reachable = reachable_cell_mask(
            room, start, cell_size, (self.ny, self.nx)
        )
        self.reachable_cells = int(self._np_reachable.sum())


def _legacy_grid_record(self, p, dt) -> None:
    ix, iy = self.cell_of(p)
    self._np_time[iy, ix] += dt
    self._np_visited[iy, ix] = True


def _legacy_grid_visited_count(self) -> int:
    return int(self._np_visited.sum())


def _legacy_grid_visited_reachable_count(self) -> int:
    return int((self._np_visited & self._np_reachable).sum())


def _legacy_grid_cell_of(self, p):
    ix = min(self.nx - 1, max(0, int(p.x / self.cell_size)))
    iy = min(self.ny - 1, max(0, int(p.y / self.cell_size)))
    return ix, iy


def _legacy_tracker_init(self, room, rate_hz=50.0, cell_size=None, start=None):
    self.rate_hz = rate_hz
    kwargs = {} if cell_size is None else {"cell_size": cell_size}
    self.grid = OccupancyGrid(room, start=start, **kwargs)
    self._samples = []
    self._period = 1.0 / rate_hz
    self._last_time = None


def _legacy_tracker_samples(self) -> List[TrackedSample]:
    return list(self._samples)


def _legacy_tracker_observe(self, state) -> bool:
    if (
        self._last_time is not None
        and state.time - self._last_time < self._period - 1e-9
    ):
        return False
    dt = self._period if self._last_time is not None else 0.0
    self._last_time = state.time
    self._samples.append(
        TrackedSample(time=state.time, position=state.position, heading=state.heading)
    )
    self.grid.record(state.position, dt)
    return True


@contextmanager
def legacy_sim_core():
    """Monkeypatch the seed-tree hot-path implementations back in."""
    saved = {
        "cast": RayCaster.cast,
        "cast_hit": RayCaster.cast_hit,
        "cast_many": RayCaster.cast_many,
        "line_of_sight": RayCaster.line_of_sight,
        "tof_measure": ToFSensor.measure,
        "is_free": Room.is_free,
        "clearance": Room.clearance,
        "dyn_step": DroneDynamics.step,
        "estimate": StateEstimator.estimate,
        "grid_init": OccupancyGrid.__init__,
        "grid_cell_of": OccupancyGrid.cell_of,
        "grid_record": OccupancyGrid.record,
        "grid_count": OccupancyGrid.visited_count,
        "grid_reach_count": OccupancyGrid.visited_reachable_count,
        "tracker_init": MotionCaptureTracker.__init__,
        "tracker_observe": MotionCaptureTracker.observe,
        "tracker_samples": MotionCaptureTracker.samples,
        "camera_batched": HimaxCamera.batched,
    }
    RayCaster.cast = _legacy_cast
    RayCaster.cast_hit = _legacy_cast_hit
    RayCaster.cast_many = _legacy_cast_many
    RayCaster.line_of_sight = _legacy_line_of_sight
    ToFSensor.measure = _legacy_tof_measure
    Room.is_free = _legacy_is_free
    Room.clearance = _legacy_clearance
    DroneDynamics.step = _legacy_dynamics_step
    StateEstimator.estimate = property(_legacy_estimate)
    OccupancyGrid.__init__ = _legacy_grid_init
    OccupancyGrid.cell_of = _legacy_grid_cell_of
    OccupancyGrid.record = _legacy_grid_record
    OccupancyGrid.visited_count = _legacy_grid_visited_count
    OccupancyGrid.visited_reachable_count = _legacy_grid_visited_reachable_count
    MotionCaptureTracker.__init__ = _legacy_tracker_init
    MotionCaptureTracker.observe = _legacy_tracker_observe
    MotionCaptureTracker.samples = property(_legacy_tracker_samples)
    HimaxCamera.batched = False
    try:
        yield
    finally:
        RayCaster.cast = saved["cast"]
        RayCaster.cast_hit = saved["cast_hit"]
        RayCaster.cast_many = saved["cast_many"]
        RayCaster.line_of_sight = saved["line_of_sight"]
        ToFSensor.measure = saved["tof_measure"]
        Room.is_free = saved["is_free"]
        Room.clearance = saved["clearance"]
        DroneDynamics.step = saved["dyn_step"]
        StateEstimator.estimate = saved["estimate"]
        OccupancyGrid.__init__ = saved["grid_init"]
        OccupancyGrid.cell_of = saved["grid_cell_of"]
        OccupancyGrid.record = saved["grid_record"]
        OccupancyGrid.visited_count = saved["grid_count"]
        OccupancyGrid.visited_reachable_count = saved["grid_reach_count"]
        MotionCaptureTracker.__init__ = saved["tracker_init"]
        MotionCaptureTracker.observe = saved["tracker_observe"]
        MotionCaptureTracker.samples = saved["tracker_samples"]
        HimaxCamera.batched = saved["camera_batched"]


# --------------------------------------------------------------------------
# Benchmark drivers.


def build_mission(name, flight_time, batched=True, accel="auto"):
    scenario = get_scenario(name)
    op = paper_operating_points()[scenario.ssd_width]
    policy = make_policy(
        scenario.policy, PolicyConfig(cruise_speed=scenario.cruise_speed)
    )
    room = Room(
        scenario.room.width,
        scenario.room.length,
        [o.build() for o in scenario.room.obstacles],
        accel=accel,
    )
    config = CrazyflieConfig(noisy=scenario.noisy, batched_sensors=batched)
    return ClosedLoopMission(
        room,
        scenario.build_objects(),
        policy,
        CalibratedDetectorModel(op),
        op,
        flight_time_s=flight_time,
        start=scenario.start_position(),
        drone_config=config,
    )


def _result_fingerprint(result):
    return (
        result.events,
        result.coverage,
        result.coverage_raw,
        result.reachable_cells,
        result.collisions,
        result.distance_flown_m,
        result.series.coverage.tolist(),
    )


def bench_missions(flight_time: float, repeats: int, seed: int = 7):
    rows = []
    for name in MISSION_SCENARIOS:
        legacy_s = math.inf
        with legacy_sim_core():
            for _ in range(repeats):
                mission = build_mission(
                    name, flight_time, batched=False, accel="none"
                )
                start = time.perf_counter()
                legacy_result = mission.run(seed=seed)
                legacy_s = min(legacy_s, time.perf_counter() - start)
        optimized_s = math.inf
        for _ in range(repeats):
            mission = build_mission(name, flight_time)
            start = time.perf_counter()
            optimized_result = mission.run(seed=seed)
            optimized_s = min(optimized_s, time.perf_counter() - start)
        identical = _result_fingerprint(legacy_result) == _result_fingerprint(
            optimized_result
        )
        ticks = int(round(flight_time / 0.02))
        rows.append(
            {
                "scenario": name,
                "flight_time_s": flight_time,
                "ticks": ticks,
                "legacy_s": legacy_s,
                "optimized_s": optimized_s,
                "legacy_ticks_per_s": ticks / legacy_s,
                "optimized_ticks_per_s": ticks / optimized_s,
                "speedup": legacy_s / optimized_s,
                "bit_identical": identical,
            }
        )
    return rows


def _time_calls(fn, repeats, inner):
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def bench_raycast(repeats: int, inner: int = 400):
    """Per-call latency of a 4-beam cast under each kernel."""
    worlds = {
        "paper-room (S=4)": get_scenario("paper-room").build_room().all_segments(),
        "dense-depot (S=84)": get_scenario("dense-depot").build_room().all_segments(),
        "big-hall (S=344)": cluttered_room(
            n_obstacles=40, seed=3, width=30.0, length=30.0
        ).all_segments(),
    }
    origin = Vec2(2.0, 2.0)
    headings = [0.3, 1.7, -2.0, 3.0]
    rows = []
    for label, segments in worlds.items():
        brute = RayCaster(segments, accel="none")
        grid = RayCaster(segments, accel="grid")
        legacy_us = (
            _time_calls(
                lambda: _legacy_cast_many(brute, origin, headings, 4.0),
                repeats,
                inner,
            )
            * 1e6
        )
        batched_us = (
            _time_calls(lambda: brute.cast_many(origin, headings, 4.0), repeats, inner)
            * 1e6
        )
        grid_us = (
            _time_calls(lambda: grid.cast_many(origin, headings, 4.0), repeats, inner)
            * 1e6
        )
        rows.append(
            {
                "world": label,
                "n_segments": len(segments),
                "legacy_per_ray_us": legacy_us,
                "batched_us": batched_us,
                "grid_us": grid_us,
                "speedup_batched": legacy_us / batched_us,
                "speedup_grid": legacy_us / grid_us,
            }
        )
    return rows


def bench_point_queries(repeats: int, n_points: int = 1500):
    """``is_free``/``clearance`` latency, grid vs. brute, on generated worlds.

    Uses the scenario generators' 1000+-segment maze and warehouse --
    the workloads the point-query grid exists for -- and asserts the
    two paths agree bit-for-bit on every sampled point before timing.
    """
    worlds = {
        "perfect-maze": generate_scenario(
            "perfect-maze", {"cols": 24, "rows": 18, "cell_m": 1.0}, seed=5
        ),
        "cluttered-warehouse": generate_scenario(
            "cluttered-warehouse",
            {"width": 40.0, "length": 30.0, "aisle": 1.2, "shelf_depth": 0.5, "unit_len": 1.0},
            seed=5,
        ),
    }
    rng = np.random.default_rng(11)
    rows = []
    for label, scenario in worlds.items():
        spec = scenario.room
        obstacles = [o.build() for o in spec.obstacles]
        brute = Room(spec.width, spec.length, obstacles, accel="none")
        grid = Room(spec.width, spec.length, obstacles, accel="auto")
        n_segments = len(brute.all_segments())
        assert n_segments >= 1000, (label, n_segments)
        points = [
            Vec2(rng.uniform(0.0, spec.width), rng.uniform(0.0, spec.length))
            for _ in range(n_points)
        ]
        for p in points:
            assert brute.is_free(p, margin=0.12) == grid.is_free(p, margin=0.12)
            assert brute.clearance(p) == grid.clearance(p)

        def _free(room):
            return lambda: [room.is_free(p, margin=0.12) for p in points]

        def _clear(room):
            return lambda: [room.clearance(p) for p in points]

        free_brute_us = _time_calls(_free(brute), repeats, 1) / n_points * 1e6
        free_grid_us = _time_calls(_free(grid), repeats, 1) / n_points * 1e6
        clear_brute_us = _time_calls(_clear(brute), repeats, 1) / n_points * 1e6
        clear_grid_us = _time_calls(_clear(grid), repeats, 1) / n_points * 1e6
        rows.append(
            {
                "world": label,
                "n_segments": n_segments,
                "n_obstacles": len(obstacles),
                "is_free_brute_us": free_brute_us,
                "is_free_grid_us": free_grid_us,
                "clearance_brute_us": clear_brute_us,
                "clearance_grid_us": clear_grid_us,
                "speedup_is_free": free_brute_us / free_grid_us,
                "speedup_clearance": clear_brute_us / clear_grid_us,
                "bit_identical": True,  # asserted above over every point
            }
        )
    return rows


#: Pre-extraction raster fingerprints: sha256 of the packed bits of
#: ``free_space_mask(room, 0.25)``, captured while the function still
#: lived in ``repro.sim.generators`` (PR 3). The extraction to
#: ``repro.world.freespace`` is a pure move, so these must never drift.
FREESPACE_WORLDS = (
    {
        "world": "perfect-maze",
        "params": {"cols": 6, "rows": 5, "cell_m": 1.0},
        "seed": 3,
        "resolution": 0.25,
        "mask_sha256_16": "f2627b986bfb06b8",
    },
    {
        "world": "cluttered-warehouse",
        "params": {},
        "seed": 2,
        "resolution": 0.25,
        "mask_sha256_16": "b8454683e46e0fc5",
    },
)


def bench_freespace_raster(repeats: int, inner: int = 20):
    """Free-space mask build + flood fill on generated worlds.

    Asserts the rasters are identical to the pre-extraction generator
    ones twice over: the ``repro.sim.generators`` import path must
    resolve to the very functions now in ``repro.world.freespace``, and
    the produced mask must match the fingerprint pinned before the move.
    """
    import hashlib

    from repro.sim import generators as gen
    from repro.world import freespace

    assert gen.free_space_mask is freespace.free_space_mask
    assert gen.flood_fill is freespace.flood_fill
    rows = []
    for cfg in FREESPACE_WORLDS:
        scenario = generate_scenario(cfg["world"], cfg["params"], seed=cfg["seed"])
        room = scenario.build_room()
        res = cfg["resolution"]
        mask = freespace.free_space_mask(room, res)
        digest = hashlib.sha256(np.packbits(mask).tobytes()).hexdigest()[:16]
        assert digest == cfg["mask_sha256_16"], (
            f"{cfg['world']}: raster drifted from the pre-extraction "
            f"fingerprint ({digest} != {cfg['mask_sha256_16']})"
        )
        seed_cell = tuple(int(v) for v in np.argwhere(mask)[0])
        reach = freespace.flood_fill(mask, seed_cell)
        mask_us = _time_calls(
            lambda: freespace.free_space_mask(room, res), repeats, inner
        ) * 1e6
        fill_us = _time_calls(
            lambda: freespace.flood_fill(mask, seed_cell), repeats, inner
        ) * 1e6
        rows.append(
            {
                "world": cfg["world"],
                "resolution_m": res,
                "raster_shape": list(mask.shape),
                "free_cells": int(mask.sum()),
                "reachable_cells": int(reach.sum()),
                "mask_sha256_16": digest,
                "mask_build_us": mask_us,
                "flood_fill_us": fill_us,
                "identical_to_pre_extraction": True,  # asserted above
            }
        )
    return rows


def bench_fleet_throughput(flight_time: float, repeats: int) -> list:
    """Fleet-vectorized vs. serial mission stepping on paper-room.

    Flies the same N-mission block (identical specs, only the run index
    and seed stream differ) through the serial :func:`fly_mission` loop
    and through the lock-step :func:`~repro.sim.fleet.fly_fleet`
    stepper, asserting record bit-identity before reporting throughput.
    N=1 is expected to *lose* (vectorization overhead with nothing to
    amortize it over -- the reason the runner's ``fleet_block`` gate
    ignores blocks of one); the win grows with N as the per-tick numpy
    dispatch spreads over the whole block.
    """
    from repro.sim.campaign import MissionSpec
    from repro.sim.fleet import fly_fleet
    from repro.sim.runner import fly_mission

    scenario = get_scenario("paper-room")
    rows = []
    for n in FLEET_SIZES:
        specs = [
            MissionSpec(
                index=i,
                scenario=scenario,
                kind="explore",
                policy="pseudo-random",
                speed=0.5,
                ssd_width=None,
                run_idx=i,
                flight_time_s=flight_time,
                seed_entropy=20240807,
                spawn_key=(11, i),
            )
            for i in range(n)
        ]
        serial_s = math.inf
        serial_records = None
        for _ in range(repeats):
            start = time.perf_counter()
            flown = [fly_mission(spec)[0] for spec in specs]
            serial_s = min(serial_s, time.perf_counter() - start)
            serial_records = flown
        fleet_s = math.inf
        fleet_records = None
        for _ in range(repeats):
            start = time.perf_counter()
            flown = fly_fleet(specs)
            fleet_s = min(fleet_s, time.perf_counter() - start)
            fleet_records = flown
        identical = [f.to_dict() for f in fleet_records] == [
            s.to_dict() for s in serial_records
        ]
        rows.append(
            {
                "scenario": "paper-room",
                "n": n,
                "serial_s": serial_s,
                "fleet_s": fleet_s,
                "serial_missions_per_s": n / serial_s,
                "fleet_missions_per_s": n / fleet_s,
                "speedup": serial_s / fleet_s,
                "bit_identical": identical,
            }
        )
    return rows


def run_benchmarks(quick: bool, out_path: str):
    flight_time = 10.0 if quick else 30.0
    repeats = 2 if quick else 3
    missions = bench_missions(flight_time, repeats)
    raycast = bench_raycast(repeats)
    point_queries = bench_point_queries(repeats)
    freespace_raster = bench_freespace_raster(repeats)
    fleet_throughput = bench_fleet_throughput(flight_time, repeats)

    print()
    print(
        ascii_table(
            ["scenario", "legacy [s]", "optimized [s]", "speedup", "identical"],
            [
                [
                    r["scenario"],
                    f"{r['legacy_s']:.3f}",
                    f"{r['optimized_s']:.3f}",
                    f"{r['speedup']:.2f}x",
                    str(r["bit_identical"]),
                ]
                for r in missions
            ],
            title=(
                f"single-mission throughput, {flight_time:.0f} s simulated flight "
                f"(legacy = pre-PR hot path, monkeypatched seed code)"
            ),
        )
    )
    print(
        ascii_table(
            ["world", "legacy/ray [us]", "batched [us]", "grid [us]", "best speedup"],
            [
                [
                    r["world"],
                    f"{r['legacy_per_ray_us']:.1f}",
                    f"{r['batched_us']:.1f}",
                    f"{r['grid_us']:.1f}",
                    f"{max(r['speedup_batched'], r['speedup_grid']):.2f}x",
                ]
                for r in raycast
            ],
            title="4-beam cast latency by kernel",
        )
    )
    print(
        ascii_table(
            ["world", "segs", "is_free brute/grid [us]", "clearance brute/grid [us]", "speedups"],
            [
                [
                    r["world"],
                    str(r["n_segments"]),
                    f"{r['is_free_brute_us']:.1f} / {r['is_free_grid_us']:.1f}",
                    f"{r['clearance_brute_us']:.1f} / {r['clearance_grid_us']:.1f}",
                    f"{r['speedup_is_free']:.1f}x / {r['speedup_clearance']:.1f}x",
                ]
                for r in point_queries
            ],
            title="point-query latency on generated worlds (bit-identical asserted)",
        )
    )
    print(
        ascii_table(
            ["world", "raster", "free/reach", "mask [us]", "fill [us]"],
            [
                [
                    r["world"],
                    "x".join(str(v) for v in r["raster_shape"]),
                    f"{r['free_cells']}/{r['reachable_cells']}",
                    f"{r['mask_build_us']:.0f}",
                    f"{r['flood_fill_us']:.0f}",
                ]
                for r in freespace_raster
            ],
            title=(
                "free-space raster + flood fill (identical to the "
                "pre-extraction generator rasters, fingerprint-asserted)"
            ),
        )
    )
    print()
    print(
        ascii_table(
            ["N", "serial [s]", "fleet [s]", "missions/s", "speedup", "identical"],
            [
                [
                    str(r["n"]),
                    f"{r['serial_s']:.3f}",
                    f"{r['fleet_s']:.3f}",
                    f"{r['fleet_missions_per_s']:.1f}",
                    f"{r['speedup']:.2f}x",
                    str(r["bit_identical"]),
                ]
                for r in fleet_throughput
            ],
            title=(
                f"fleet-vectorized stepping, paper-room x {flight_time:.0f} s "
                f"flights (serial = per-mission loop, same records)"
            ),
        )
    )

    payload = {
        "benchmark": "sim_core",
        "created_unix": time.time(),
        "quick": quick,
        "machine": {**machine_info(), "numpy": np.__version__},
        "baseline": (
            "legacy = seed-tree hot-path implementations (per-beam numpy "
            "casts, np.clip ToF noise, per-call obstacle segment rebuilds, "
            "per-sample allocations) monkeypatched into the same process"
        ),
        "missions": missions,
        "raycast": raycast,
        "point_queries": point_queries,
        "freespace_raster": freespace_raster,
        "fleet_throughput": fleet_throughput,
    }
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"\nwrote {out_path}")

    for r in missions:
        assert r["bit_identical"], f"{r['scenario']}: legacy and optimized diverged"
    for r in fleet_throughput:
        assert r["bit_identical"], f"fleet N={r['n']}: fleet and serial diverged"
    paper = next(r for r in missions if r["scenario"] == "paper-room")
    if os.environ.get("REPRO_BENCH_RELAX") != "1":
        bar = REQUIRED_PAPER_ROOM_SPEEDUP_QUICK if quick else REQUIRED_PAPER_ROOM_SPEEDUP
        assert paper["speedup"] >= bar, (
            f"paper-room speedup {paper['speedup']:.2f}x below the "
            f"{bar:.1f}x bar (set REPRO_BENCH_RELAX=1 on loaded machines)"
        )
        for r in point_queries:
            assert r["speedup_is_free"] >= REQUIRED_POINT_QUERY_SPEEDUP, (
                f"{r['world']}: is_free grid speedup {r['speedup_is_free']:.2f}x "
                f"below the {REQUIRED_POINT_QUERY_SPEEDUP:.1f}x bar "
                f"(set REPRO_BENCH_RELAX=1 on loaded machines)"
            )
        fleet_bar = (
            REQUIRED_FLEET_SPEEDUP_QUICK if quick else REQUIRED_FLEET_SPEEDUP
        )
        biggest = max(fleet_throughput, key=lambda r: r["n"])
        assert biggest["speedup"] >= fleet_bar, (
            f"fleet N={biggest['n']} speedup {biggest['speedup']:.2f}x below "
            f"the {fleet_bar:.1f}x bar (set REPRO_BENCH_RELAX=1 on loaded "
            f"machines)"
        )
    return payload


def test_sim_core_bench():
    """Pytest entry point (quick unless REPRO_FULL=1)."""
    quick = os.environ.get("REPRO_FULL") != "1"
    run_benchmarks(quick=quick, out_path="BENCH_sim_core.json")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="10 s flights, 2 repeats (CI smoke); default is 30 s x 3",
    )
    parser.add_argument(
        "--out",
        default="BENCH_sim_core.json",
        help="path of the emitted JSON report",
    )
    args = parser.parse_args(argv)
    run_benchmarks(quick=args.quick, out_path=args.out)


if __name__ == "__main__":
    main()
