"""Work-queue overhead: broker ops/sec and broker-drained campaign cost.

The SQLite broker buys crash-safe, multi-machine fan-out; this bench
measures what it costs. Three sections:

- ``broker_ops``: raw submit and lease->complete cycle throughput on
  trivial jobs (every cycle is two ``BEGIN IMMEDIATE`` transactions
  plus a lease-audit insert);
- ``campaign_drain``: the same campaign flown serially and through
  enqueue -> in-process worker drain -> collect, with the byte-identity
  contract asserted on the way;
- the queue bookkeeping overhead per mission implied by the two.

Run as a script to emit a JSON report::

    PYTHONPATH=src python benchmarks/bench_queue_broker.py \\
        --quick --out BENCH_queue_broker.json
"""

import argparse
import json
import os
import tempfile
import time

from repro.exec import Broker, JobSpec, Worker
from repro.experiments.reporting import ascii_table
from repro.sim import Campaign, get_scenario, run_campaign
from repro.sim.runner import enqueue_campaign

FLIGHT_TIME_S = 10.0


def build_campaign(flight_time_s: float = FLIGHT_TIME_S) -> Campaign:
    return Campaign(
        name="queue-bench",
        scenarios=(get_scenario("paper-room"), get_scenario("corridor-maze")),
        policies=("pseudo-random", "spiral"),
        n_runs=2,
        flight_time_s=flight_time_s,
        seed=2024,
    )


def bench_broker_ops(n_jobs: int = 200) -> dict:
    """Submit and lease->complete throughput on trivial jobs."""
    jobs = [
        JobSpec(
            fn="repro.exec.demo:scaled_sum",
            kwargs={"values": [float(i)], "factor": 2.0},
            version="bench/v1",
        )
        for i in range(n_jobs)
    ]
    with tempfile.TemporaryDirectory() as tmp:
        with Broker(os.path.join(tmp, "queue.db")) as broker:
            start = time.perf_counter()
            report = broker.submit(jobs)
            submit_s = time.perf_counter() - start
            assert report.submitted == n_jobs

            start = time.perf_counter()
            while True:
                lease = broker.lease("bench")
                if lease is None:
                    break
                broker.complete("bench", lease.content_hash, lease.job.run())
            cycle_s = time.perf_counter() - start
            counts = broker.counts()
            assert counts.done == n_jobs and counts.remaining == 0
    return {
        "n_jobs": n_jobs,
        "submit_s": submit_s,
        "submit_jobs_per_s": n_jobs / submit_s,
        "cycle_s": cycle_s,
        "cycle_jobs_per_s": n_jobs / cycle_s,
        "cycle_ms_per_job": cycle_s / n_jobs * 1e3,
    }


def bench_campaign_drain(campaign: Campaign) -> dict:
    """Serial vs. enqueue->drain->collect, asserting byte-identity."""
    n = len(campaign.missions())

    start = time.perf_counter()
    serial = run_campaign(campaign)
    serial_s = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as tmp:
        with Broker(os.path.join(tmp, "queue.db")) as broker:
            start = time.perf_counter()
            enqueue_campaign(campaign, broker)
            enqueue_s = time.perf_counter() - start

            start = time.perf_counter()
            Worker(
                broker, worker_id="bench", poll_s=0.01, exit_when_drained=True
            ).run()
            drain_s = time.perf_counter() - start

            start = time.perf_counter()
            brokered = run_campaign(
                campaign, broker=broker, poll_s=0.01, wait_timeout_s=60.0
            )
            collect_s = time.perf_counter() - start
    assert brokered.to_json() == serial.to_json()
    queue_s = enqueue_s + drain_s + collect_s
    return {
        "missions": n,
        "serial_s": serial_s,
        "enqueue_s": enqueue_s,
        "drain_s": drain_s,
        "collect_s": collect_s,
        "queue_total_s": queue_s,
        "serial_missions_per_s": n / serial_s,
        "queue_missions_per_s": n / queue_s,
        "overhead_ms_per_mission": (queue_s - serial_s) / n * 1e3,
    }


def run_benchmarks(quick: bool = False, out_path: str = None) -> dict:
    ops = bench_broker_ops(50 if quick else 200)
    drain = bench_campaign_drain(build_campaign(5.0 if quick else FLIGHT_TIME_S))

    print(
        ascii_table(
            ["path", "wall [s]", "missions/s"],
            [
                [
                    "serial",
                    f"{drain['serial_s']:.2f}",
                    f"{drain['serial_missions_per_s']:.2f}",
                ],
                [
                    "broker (enqueue+drain+collect)",
                    f"{drain['queue_total_s']:.2f}",
                    f"{drain['queue_missions_per_s']:.2f}",
                ],
            ],
            title=(
                f"queue-drained campaign: {drain['missions']} missions, "
                f"byte-identical results"
            ),
        )
    )
    print(
        f"broker ops: submit {ops['submit_jobs_per_s']:.0f} jobs/s, "
        f"lease->complete {ops['cycle_jobs_per_s']:.0f} jobs/s "
        f"({ops['cycle_ms_per_job']:.2f} ms/job); campaign bookkeeping "
        f"{drain['overhead_ms_per_mission']:.1f} ms/mission"
    )

    payload = {"broker_ops": ops, "campaign_drain": drain}
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {out_path}")
    return payload


def test_broker_ops_throughput():
    """Lease->complete cycles stay in the milliseconds, not seconds."""
    report = bench_broker_ops(n_jobs=50)
    assert report["cycle_jobs_per_s"] > 5.0


def test_broker_drained_campaign_matches_serial():
    """Enqueue -> drain -> collect is byte-identical to a serial run."""
    report = bench_campaign_drain(build_campaign(flight_time_s=5.0))
    assert report["missions"] == 8


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer ops jobs and 5 s flights (CI smoke)",
    )
    parser.add_argument(
        "--out", default="BENCH_queue_broker.json",
        help="path of the emitted JSON report",
    )
    args = parser.parse_args(argv)
    run_benchmarks(quick=args.quick, out_path=args.out)


if __name__ == "__main__":
    main()
