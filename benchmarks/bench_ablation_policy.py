"""Ablation: the pseudo-random policy's design constants.

DESIGN.md calls out two choices to ablate: the >= 90 deg floor on the
random turn (without it the drone often re-faces the obstacle it just
avoided) and the 1 m ToF obstacle threshold (too short risks collisions,
too long wastes the room's free space).
"""

import numpy as np
from conftest import run_once

from repro.mission.explorer import ExplorationMission
from repro.policies import PolicyConfig, PseudoRandomPolicy
from repro.world import paper_room


def _mean_coverage(policy_factory, n_runs, flight_time_s):
    room = paper_room()
    scores = []
    for run_idx in range(n_runs):
        mission = ExplorationMission(
            room, policy_factory(), flight_time_s=flight_time_s
        )
        scores.append(mission.run(seed=300 + run_idx).coverage)
    return float(np.mean(scores))


def _sweep(scale):
    config = PolicyConfig(cruise_speed=0.5)
    rows = {}
    for min_turn in (10.0, 45.0, 90.0, 135.0):
        rows[f"min_turn={min_turn:g}deg"] = _mean_coverage(
            lambda: PseudoRandomPolicy(config, min_turn_deg=min_turn),
            scale.n_runs,
            scale.flight_time_s,
        )
    for threshold in (0.5, 1.0, 2.0):
        cfg = PolicyConfig(cruise_speed=0.5, obstacle_threshold=threshold)
        rows[f"threshold={threshold:g}m"] = _mean_coverage(
            lambda: PseudoRandomPolicy(cfg), scale.n_runs, scale.flight_time_s
        )
    return rows


def test_ablation_pseudo_random(benchmark, scale):
    rows = run_once(benchmark, _sweep, scale)
    print()
    print("pseudo-random ablation (mean coverage):")
    for name, coverage in rows.items():
        print(f"  {name:20s} {coverage:.0%}")
    # The paper's 90 deg floor should not lose to near-zero floors, and a
    # 2 m threshold (reacting far too early) wastes free space.
    assert rows["min_turn=90deg"] >= rows["min_turn=10deg"] - 0.10
    assert rows["threshold=2m"] <= rows["threshold=1m"] + 0.05
