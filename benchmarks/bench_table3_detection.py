"""Regenerates Table III: closed-loop detection rate per SSD/policy/speed."""

from conftest import run_once

from repro.experiments import table3


def test_table3_detection(benchmark, scale):
    result = run_once(benchmark, table3.run, scale)
    print()
    print(table3.format_table(result))
    r = result.rates
    # 0.1 m/s cripples the pseudo-random policy (paper: 27%).
    assert r[("1.0", "pseudo-random", 0.1)] < r[("1.0", "pseudo-random", 0.5)]
    # The winning configuration involves pseudo-random or spiral at >= 0.5 m/s.
    width, policy, speed = result.best_configuration()
    assert policy in ("pseudo-random", "spiral")
    assert speed >= 0.5
    # The big SSD wins (or ties) the best-policy comparison at 0.5 m/s.
    assert (
        r[("1.0", "pseudo-random", 0.5)] >= r[("0.75", "pseudo-random", 0.5)] - 0.15
    )
