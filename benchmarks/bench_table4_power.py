"""Regenerates Table IV: power breakdown of the robotic platform."""

from conftest import run_once

from repro.experiments import table4


def test_table4_power(benchmark, scale):
    result = run_once(benchmark, table4.run, scale)
    print()
    print(table4.format_table(result))
    pct = result.breakdown.percentages()
    # Paper: motors dominate at ~91%, AI-deck is ~1.7%, total ~8 W.
    assert 85.0 <= pct["Motors"] <= 95.0
    assert pct["AI-deck"] <= 3.0
    assert 7.0 <= result.breakdown.total_w <= 9.0
