"""Ablation: QAT fine-tuning vs plain post-training quantization.

The paper adds a QAT fine-tuning step "to minimize the mAP loss due to
the 8-bit conversion". This ablation trains one model, quantizes it once
with and once without QAT fine-tuning, and compares the int8 mAP.
"""

import numpy as np
from conftest import run_once

from repro.datasets import make_himax_like, make_openimages_like
from repro.evaluation import evaluate_map
from repro.quantization import QATWeightQuantizer, quantize_detector
from repro.vision import SSDDetector, tiny_spec
from repro.vision.training import (
    Trainer,
    paper_finetune_config,
    paper_pretrain_config,
)


def _evaluate(model, dataset):
    preds = []
    for start in range(0, len(dataset), 16):
        images = np.stack(
            [dataset[i].image for i in range(start, min(start + 16, len(dataset)))]
        )
        preds.extend(model.predict(images, score_threshold=0.3))
    return evaluate_map(
        preds, [d.boxes for d in dataset], [d.labels for d in dataset]
    ).map_score


def _run(train_scale):
    web_train = make_openimages_like(train_scale.train_images, seed=0)
    himax_train = make_himax_like(train_scale.finetune_images, seed=1)
    himax_test = make_himax_like(train_scale.test_images, seed=2)
    calib = np.stack([himax_train[i].image for i in range(16)])

    base = SSDDetector(tiny_spec(1.0), rng=np.random.default_rng(0))
    Trainer(base, paper_pretrain_config(train_scale.pretrain_epochs)).fit(web_train)

    import copy

    ptq_model = copy.deepcopy(base)
    Trainer(ptq_model, paper_finetune_config(train_scale.finetune_epochs)).fit(himax_train)
    qat_model = copy.deepcopy(base)
    Trainer(
        qat_model,
        paper_finetune_config(train_scale.finetune_epochs),
        qat=QATWeightQuantizer(),
    ).fit(himax_train)

    return {
        "float32 (PTQ branch)": _evaluate(ptq_model, himax_test),
        "int8 PTQ": _evaluate(quantize_detector(ptq_model, calib), himax_test),
        "float32 (QAT branch)": _evaluate(qat_model, himax_test),
        "int8 QAT": _evaluate(quantize_detector(qat_model, calib), himax_test),
    }


def test_ablation_quantization(benchmark, train_scale):
    rows = run_once(benchmark, _run, train_scale)
    print()
    print("quantization ablation (onboard-domain mAP):")
    for name, score in rows.items():
        print(f"  {name:22s} {score:.1%}")
    # int8 must stay within a few points of its float parent either way.
    assert rows["int8 QAT"] >= rows["float32 (QAT branch)"] - 0.15
    assert rows["int8 PTQ"] >= rows["float32 (PTQ branch)"] - 0.20
