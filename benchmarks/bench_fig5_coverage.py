"""Regenerates Fig. 5: mean coverage per policy and flight speed."""

from conftest import run_once

from repro.experiments import fig5


def test_fig5_coverage(benchmark, scale):
    result = run_once(benchmark, fig5.run, scale)
    print()
    print(fig5.format_table(result))
    cov = result.coverage
    # Paper shape: pseudo-random and spiral benefit strongly from speed.
    assert cov[("pseudo-random", 0.5)] > cov[("pseudo-random", 0.1)] + 0.15
    assert cov[("spiral", 0.5)] > cov[("spiral", 0.1)] + 0.15
    # The best configurations reach high coverage (paper: 83% at 1 m/s).
    best_policy, best_speed = result.best_configuration()
    assert cov[(best_policy, best_speed)] >= 0.6
    assert best_policy in ("pseudo-random", "spiral")
    # Wall-following and rotate-and-measure stay well below the leaders.
    assert cov[("wall-following", 1.0)] < cov[("spiral", 1.0)]
    assert cov[("rotate-and-measure", 0.5)] < cov[("pseudo-random", 0.5)]
