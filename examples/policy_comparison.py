"""Compare the four bio-inspired exploration policies (Fig. 3 + Fig. 5).

Flies every policy at the three paper speeds (0.1 / 0.5 / 1.0 m/s),
prints the Fig. 5 coverage table and one Fig. 3 heatmap per policy, and
reports the STM32 host-MCU load of each policy for context.

Usage:
    python examples/policy_comparison.py [--runs N] [--flight-time S]
"""

import argparse

from repro.experiments import SMOKE_SCALE
from repro.experiments.config import quick
from repro.experiments import fig3, fig5
from repro.hw import STM32LoadModel
from repro.policies import POLICY_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=2, help="flights per configuration")
    parser.add_argument("--flight-time", type=float, default=180.0, help="seconds per flight")
    args = parser.parse_args()

    scale = quick(SMOKE_SCALE, n_runs=args.runs, flight_time_s=args.flight_time)

    print(fig5.format_table(fig5.run(scale)))
    print()
    best_policy, best_speed = fig5.run(scale).best_configuration()
    print(f"best configuration: {best_policy} at {best_speed:g} m/s")
    print()
    print(fig3.format_maps(fig3.run(scale)))
    print()
    load = STM32LoadModel()
    print("STM32 host load (policy + flight stack):")
    for name in POLICY_NAMES:
        print(
            f"  {name:20s} {load.total_load(name):6.2%} "
            f"(headroom {load.headroom(name):.0%})"
        )


if __name__ == "__main__":
    main()
