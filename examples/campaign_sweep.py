"""Multi-scenario campaign: one sweep across every registered room.

Demonstrates the ``repro.sim`` engine end-to-end: expand a cartesian
campaign over all registered scenarios and two policies, execute it
(optionally on a worker pool), aggregate detection rates per scenario,
and persist the columnar results as hash-keyed JSON.

Usage:
    python examples/campaign_sweep.py [--runs N] [--flight-time S]
                                      [--workers W] [--out DIR]
"""

import argparse

from repro.experiments.reporting import ascii_table
from repro.sim import Campaign, iter_scenarios, run_campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=2)
    parser.add_argument("--flight-time", type=float, default=60.0)
    parser.add_argument(
        "--workers", type=int, default=0, help="pool size; 0 = all cores"
    )
    parser.add_argument("--out", default="results")
    args = parser.parse_args()

    campaign = Campaign(
        name="grand-tour",
        scenarios=tuple(iter_scenarios()),
        policies=("pseudo-random", "wall-following"),
        n_runs=args.runs,
        flight_time_s=args.flight_time,
        seed=7,
    )
    print(
        f"{len(campaign.missions())} missions "
        f"({len(campaign.scenarios)} scenarios), hash "
        f"{campaign.campaign_hash()[:12]}"
    )

    result = run_campaign(
        campaign,
        workers=args.workers,
        progress=lambda done, total, rec: print(
            f"  [{done}/{total}] {rec.scenario}/{rec.policy}: "
            f"detection {rec.detection_rate:.0%}, coverage {rec.coverage:.0%}"
        ),
    )

    agg = result.aggregate(("scenario", "policy"))
    rows = [
        [scenario, policy, f"{stat.mean:.0%}", f"{stat.std:.0%}"]
        for (scenario, policy), stat in sorted(agg.items())
    ]
    print()
    print(
        ascii_table(
            ["scenario", "policy", "mean detection", "std"],
            rows,
            title="grand tour",
        )
    )
    path = result.save(args.out)
    print(f"\nresults written to {path}")


if __name__ == "__main__":
    main()
