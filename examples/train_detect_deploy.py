"""Full vision pipeline: train, fine-tune, quantize, deploy, fly.

Walks the paper's entire CNN lifecycle on the laptop-scale models:

1. train SSD-MbV2-tiny on the synthetic web domain (OpenImages stand-in);
2. measure the domain gap on the onboard (Himax) domain;
3. fine-tune with quantization-aware training;
4. convert to int8 and re-measure mAP;
5. plan the GAP8 deployment of the full-resolution architecture
   (params / MMAC / FPS / power / memory);
6. fly one closed-loop search mission where the *trained tiny network*
   runs on rendered camera frames (the faithful detection path).

Usage:
    python examples/train_detect_deploy.py [--epochs N] [--images N]
"""

import argparse

import numpy as np

from repro.datasets import (
    make_himax_like,
    make_openimages_like,
    rebalance_with_translation,
)
from repro.evaluation import evaluate_map
from repro.hw import AIDeckPowerModel, GAPFlowDeployer
from repro.mission.closed_loop import ClosedLoopMission
from repro.mission.detector_model import DetectorOperatingPoint
from repro.policies import PolicyConfig, PseudoRandomPolicy
from repro.quantization import QATWeightQuantizer, quantize_detector
from repro.vision import SSDDetector, full_scale_spec, tiny_spec
from repro.vision.pipeline import RenderedDetectorChannel
from repro.vision.training import (
    Trainer,
    paper_finetune_config,
    paper_pretrain_config,
)
from repro.world import paper_object_layout, paper_room


def evaluate(model, dataset, threshold=0.3):
    preds = []
    for start in range(0, len(dataset), 16):
        images = np.stack(
            [dataset[i].image for i in range(start, min(start + 16, len(dataset)))]
        )
        preds.extend(model.predict(images, score_threshold=threshold))
    return evaluate_map(preds, [d.boxes for d in dataset], [d.labels for d in dataset])


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--images", type=int, default=160)
    args = parser.parse_args()

    print("== 1. train on the web domain ==")
    web_train = rebalance_with_translation(
        make_openimages_like(args.images, seed=0), seed=1
    )
    web_test = make_openimages_like(48, seed=2)
    himax_train = make_himax_like(56, seed=3)
    himax_test = make_himax_like(48, seed=4)
    detector = SSDDetector(tiny_spec(1.0), rng=np.random.default_rng(0))
    log = Trainer(detector, paper_pretrain_config(args.epochs)).fit(web_train)
    print(f"   final loss {log.final_loss:.2f}")
    web_map = evaluate(detector, web_test)
    print(f"   web-domain mAP {web_map.map_score:.1%} (AP50 {web_map.map_50:.1%})")

    print("== 2. domain gap ==")
    gap_map = evaluate(detector, himax_test)
    print(f"   onboard-domain mAP before fine-tuning {gap_map.map_score:.1%}")

    print("== 3. fine-tune with QAT ==")
    Trainer(
        detector, paper_finetune_config(max(2, args.epochs // 2)),
        qat=QATWeightQuantizer(),
    ).fit(himax_train)
    ft_map = evaluate(detector, himax_test)
    print(f"   onboard-domain mAP after fine-tuning {ft_map.map_score:.1%}")

    print("== 4. int8 conversion ==")
    calib = np.stack([himax_train[i].image for i in range(16)])
    qdet = quantize_detector(detector, calib)
    q_map = evaluate(qdet, himax_test)
    print(f"   int8 onboard-domain mAP {q_map.map_score:.1%}")

    print("== 5. GAP8 deployment plan (full-resolution architecture) ==")
    plan = GAPFlowDeployer().plan(SSDDetector(full_scale_spec(1.0)))
    power = AIDeckPowerModel().power_w(plan.performance)
    print(f"   {plan.summary()}")
    print(f"   AI-deck power {power * 1e3:.1f} mW")

    print("== 6. closed-loop flight with the trained CNN on rendered frames ==")
    op = DetectorOperatingPoint(
        "tiny-rendered", fps=plan.performance.fps, map_score=max(q_map.map_score, 0.05)
    )
    channel = RenderedDetectorChannel(qdet)
    mission = ClosedLoopMission(
        paper_room(),
        paper_object_layout(),
        PseudoRandomPolicy(PolicyConfig(cruise_speed=0.5)),
        channel,
        op,
        flight_time_s=120.0,
    )
    result = mission.run(seed=11)
    print(
        f"   detection rate {result.detection_rate:.0%} over "
        f"{result.frames_processed} frames, coverage {result.coverage:.0%}"
    )
    for event in result.events:
        print(
            f"     {event.time_s:6.1f} s  {event.object_name} at {event.distance_m:.2f} m"
        )


if __name__ == "__main__":
    main()
