"""Quickstart: fly one exploration mission and print the occupancy map.

Runs the paper's winning policy (pseudo-random) in the 6.5 m x 5.5 m
testing room for one 3-minute flight at 0.5 m/s and prints the coverage
statistics and the Fig. 3-style ASCII heatmap.

It also writes ``quickstart_heatmap.pgm`` and ``quickstart_path.svg``
next to the script -- openable with any image viewer / browser.

Usage:
    python examples/quickstart.py
"""

from pathlib import Path

from repro.mission.explorer import ExplorationMission
from repro.policies import PolicyConfig, PseudoRandomPolicy
from repro.viz import heatmap_to_pgm, trajectory_to_svg, write_pgm
from repro.world import paper_room


def main() -> None:
    room = paper_room()
    policy = PseudoRandomPolicy(PolicyConfig(cruise_speed=0.5))
    mission = ExplorationMission(room, policy, flight_time_s=180.0)
    result = mission.run(seed=42)

    print(f"policy:          {policy.name}")
    print(f"flight time:     {result.flight_time_s:.0f} s")
    print(f"distance flown:  {result.distance_flown_m:.1f} m")
    print(
        f"coverage:        {result.coverage:.0%} of "
        f"{result.reachable_cells} reachable cells"
    )
    print(f"collisions:      {result.collisions}")
    print()
    print("occupancy heatmap (18 s cap, '.' = never visited):")
    print(result.grid.render_ascii(cap_seconds=18.0))

    here = Path(__file__).resolve().parent
    write_pgm(heatmap_to_pgm(result.grid), here / "quickstart_heatmap.pgm")
    svg = trajectory_to_svg(
        room,
        result.samples,
        title=f"{policy.name} @ 0.5 m/s, coverage {result.coverage:.0%}",
    )
    (here / "quickstart_path.svg").write_text(svg)
    print()
    print(f"wrote {here / 'quickstart_heatmap.pgm'}")
    print(f"wrote {here / 'quickstart_path.svg'}")


if __name__ == "__main__":
    main()
