"""Closed-loop search mission: the paper's headline experiment (Sec. IV-C).

Flies the ``paper-room`` scenario (three bottles + three tin cans) with
the pseudo-random policy at 0.5 m/s and SSD-MbV2-1.0 (the paper's best
configuration) and reports detection events, then sweeps all four
policies for comparison -- everything routed through the ``repro.sim``
campaign engine.

Usage:
    python examples/object_search_mission.py [--runs N] [--workers W]
"""

import argparse

from repro.policies import POLICY_NAMES
from repro.sim import Campaign, get_scenario, run_campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=5)
    parser.add_argument(
        "--workers", type=int, default=None, help="pool size; 0 = all cores"
    )
    args = parser.parse_args()

    scenario = get_scenario("paper-room")
    print("objects placed:")
    for obj in scenario.build_objects():
        print(f"  {obj.name:15s} at ({obj.position.x:.2f}, {obj.position.y:.2f}) m")
    print()

    print("== best configuration: pseudo-random @ 0.5 m/s, SSD-MbV2-1.0 ==")
    best_config = Campaign(
        name="best-config",
        scenarios=(scenario,),
        policies=("pseudo-random",),
        speeds=(0.5,),
        n_runs=args.runs,
        seed=1000,
    )
    result = run_campaign(best_config, workers=args.workers)
    stat = result.aggregate(("policy",))[("pseudo-random",)]
    print(f"detection rate over {args.runs} runs: {stat.mean:.0%} (std {stat.std:.0%})")
    best = result.best("detection_rate")
    print(f"best run ({best.detection_rate:.0%}):")
    for name, cls, time_s, distance_m in best.events:
        print(f"  {time_s:6.1f} s  {name:15s} ({cls}) at {distance_m:.2f} m")
    print()

    print("== all policies at 0.5 m/s ==")
    sweep = Campaign(
        name="policy-sweep",
        scenarios=(scenario,),
        policies=POLICY_NAMES,
        speeds=(0.5,),
        n_runs=args.runs,
        seed=2000,
    )
    agg = run_campaign(sweep, workers=args.workers).aggregate(("policy",))
    for name in POLICY_NAMES:
        print(f"  {name:20s} {agg[(name,)].mean:.0%}")


if __name__ == "__main__":
    main()
