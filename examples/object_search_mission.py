"""Closed-loop search mission: the paper's headline experiment (Sec. IV-C).

Places three bottles and three tin cans in the testing room, flies the
pseudo-random policy at 0.5 m/s with SSD-MbV2-1.0 (the paper's best
configuration) and reports detection events, then sweeps all four
policies for comparison.

Usage:
    python examples/object_search_mission.py [--runs N]
"""

import argparse

import numpy as np

from repro.evaluation import aggregate_detection_rate
from repro.mission.closed_loop import ClosedLoopMission
from repro.mission.detector_model import (
    CalibratedDetectorModel,
    paper_operating_points,
)
from repro.policies import POLICY_NAMES, PolicyConfig, make_policy
from repro.world import paper_object_layout, paper_room


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=5)
    args = parser.parse_args()

    room = paper_room()
    objects = paper_object_layout()
    op = paper_operating_points()["1.0"]
    channel = CalibratedDetectorModel(op)

    print("objects placed:")
    for obj in objects:
        print(f"  {obj.name:15s} at ({obj.position.x:.2f}, {obj.position.y:.2f}) m")
    print()

    print(f"== best configuration: pseudo-random @ 0.5 m/s, {op.name} ==")
    results = []
    for run_idx in range(args.runs):
        policy = make_policy("pseudo-random", PolicyConfig(cruise_speed=0.5))
        mission = ClosedLoopMission(room, objects, policy, channel, op)
        results.append(mission.run(seed=1000 + run_idx))
    mean, std = aggregate_detection_rate(results)
    print(f"detection rate over {args.runs} runs: {mean:.0%} (std {std:.0%})")
    best = max(results, key=lambda r: r.detection_rate)
    print(f"best run ({best.detection_rate:.0%}):")
    for event in best.events:
        print(
            f"  {event.time_s:6.1f} s  {event.object_name:15s} "
            f"({event.object_class}) at {event.distance_m:.2f} m"
        )
    print()

    print("== all policies at 0.5 m/s ==")
    for name in POLICY_NAMES:
        rates = []
        for run_idx in range(args.runs):
            policy = make_policy(name, PolicyConfig(cruise_speed=0.5))
            mission = ClosedLoopMission(room, objects, policy, channel, op)
            rates.append(mission.run(seed=2000 + run_idx).detection_rate)
        print(f"  {name:20s} {float(np.mean(rates)):.0%}")


if __name__ == "__main__":
    main()
