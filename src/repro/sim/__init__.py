"""Scenario registry + generators + parallel mission campaign engine.

The one subsystem owning all mission fan-out:

- :mod:`repro.sim.scenario` -- declarative :class:`Scenario` specs and a
  registry of named presets (the paper room plus synthetic layouts),
- :mod:`repro.sim.generators` -- parametric :class:`ScenarioFamily`
  generators (procedural apartments, mazes, warehouses, scatter fields
  from a seed) registered alongside the presets,
- :mod:`repro.sim.campaign` -- :class:`Campaign` cartesian sweeps with
  per-mission independent ``SeedSequence`` streams, over presets and
  ``(family, params, seed)`` references alike,
- :mod:`repro.sim.runner` -- a thin adapter over the
  :mod:`repro.exec` execution layer: serial, pooled, cache-served or
  fleet-vectorized missions, all bit-identical,
- :mod:`repro.sim.fleet` -- the fleet stepper: N same-world missions
  advanced in lock-step as structure-of-arrays numpy state, one
  multi-origin raycast per tick,
- :mod:`repro.sim.results` -- the columnar result store with aggregation
  and hash-keyed JSON persistence.

``python -m repro.sim`` exposes the same machinery on the command line.
See ``docs/architecture.md`` / ``docs/scenarios.md`` /
``docs/determinism.md`` for the guided tour.
"""

from repro.sim.campaign import (
    Campaign,
    MissionSpec,
    OperatingPointSpec,
    paper_operating_point_spec,
)
from repro.sim.generators import (
    GeneratedSpec,
    ParamSpec,
    ScenarioFamily,
    ascii_layout,
    family_names,
    generate_scenario,
    get_family,
    iter_families,
    register_family,
)
from repro.sim.fleet import fleet_key, fly_fleet
from repro.sim.results import AggregateStat, CampaignResult, MissionRecord
from repro.sim.runner import (
    campaign_jobs,
    enqueue_campaign,
    execute_mission,
    mission_job,
    run_campaign,
)
from repro.sim.scenario import (
    ObjectSpec,
    ObstacleSpec,
    RoomSpec,
    Scenario,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)

__all__ = [
    "AggregateStat",
    "Campaign",
    "CampaignResult",
    "GeneratedSpec",
    "MissionRecord",
    "MissionSpec",
    "ObjectSpec",
    "ObstacleSpec",
    "OperatingPointSpec",
    "ParamSpec",
    "RoomSpec",
    "Scenario",
    "ScenarioFamily",
    "ascii_layout",
    "campaign_jobs",
    "enqueue_campaign",
    "execute_mission",
    "family_names",
    "fleet_key",
    "fly_fleet",
    "generate_scenario",
    "get_family",
    "get_scenario",
    "iter_families",
    "iter_scenarios",
    "mission_job",
    "paper_operating_point_spec",
    "register_family",
    "register_scenario",
    "run_campaign",
    "scenario_names",
]
