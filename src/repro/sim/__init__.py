"""Scenario registry + parallel mission campaign engine.

The one subsystem owning all mission fan-out:

- :mod:`repro.sim.scenario` -- declarative :class:`Scenario` specs and a
  registry of named presets (the paper room plus synthetic layouts),
- :mod:`repro.sim.campaign` -- :class:`Campaign` cartesian sweeps with
  per-mission independent ``SeedSequence`` streams,
- :mod:`repro.sim.runner` -- serial or ``multiprocessing`` execution
  producing bit-identical results,
- :mod:`repro.sim.results` -- the columnar result store with aggregation
  and hash-keyed JSON persistence.

``python -m repro.sim`` exposes the same machinery on the command line.
"""

from repro.sim.campaign import (
    Campaign,
    MissionSpec,
    OperatingPointSpec,
    paper_operating_point_spec,
)
from repro.sim.results import AggregateStat, CampaignResult, MissionRecord
from repro.sim.runner import execute_mission, run_campaign
from repro.sim.scenario import (
    ObjectSpec,
    ObstacleSpec,
    RoomSpec,
    Scenario,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)

__all__ = [
    "AggregateStat",
    "Campaign",
    "CampaignResult",
    "MissionRecord",
    "MissionSpec",
    "ObjectSpec",
    "ObstacleSpec",
    "OperatingPointSpec",
    "RoomSpec",
    "Scenario",
    "execute_mission",
    "get_scenario",
    "iter_scenarios",
    "paper_operating_point_spec",
    "register_scenario",
    "run_campaign",
    "scenario_names",
]
