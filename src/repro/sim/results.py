"""Columnar campaign results: aggregation and JSON persistence.

Every executed mission becomes a flat :class:`MissionRecord`; a
:class:`CampaignResult` holds the records column-wise-accessible plus the
campaign definition and its content hash. Results persist as a single
JSON document named after the hash, so re-running the identical campaign
overwrites (rather than duplicates) its file.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import asdict, dataclass
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro import schemas

from repro.errors import SimError
from repro.mapping.coverage import CoverageSeries
from repro.mission.closed_loop import DetectionEvent, SearchResult
from repro.mission.explorer import ExplorationResult

#: Scalar per-mission columns exposed by :meth:`CampaignResult.columns`.
SCALAR_COLUMNS = (
    "index",
    "scenario",
    "kind",
    "policy",
    "speed",
    "ssd_width",
    "run_idx",
    "flight_time_s",
    "detection_rate",
    "coverage",
    "coverage_raw",
    "reachable_cells",
    "grid_cells",
    "collisions",
    "frames_processed",
    "n_objects",
    "distance_flown_m",
)

#: Result-file schema. v2 added the reachable-free-space coverage
#: columns (``coverage_raw``, ``reachable_cells``, ``grid_cells``) when
#: ``coverage`` switched to reachable-cell normalization; v1 files load
#: with backfilled defaults (see :meth:`MissionRecord.from_dict`).
RESULT_SCHEMA = schemas.RESULT_SCHEMA


@dataclass(frozen=True)
class MissionRecord:
    """Flat outcome of one mission, JSON- and pickle-friendly.

    ``events`` rows are ``(object_name, object_class, time_s,
    distance_m)`` tuples; ``series_times``/``series_coverage`` hold the
    coverage-over-time trace.

    ``coverage`` is visited cells over the cells *reachable* from the
    start pose; ``coverage_raw`` is the historical visited-over-all-cells
    fraction, and ``reachable_cells``/``grid_cells`` are the two
    denominators. Records loaded from pre-v2 result files backfill
    ``coverage_raw = coverage`` (the old column *was* the raw fraction)
    and zero cell counts (meaning "unknown").
    """

    index: int
    scenario: str
    kind: str
    policy: str
    speed: float
    ssd_width: str
    run_idx: int
    flight_time_s: float
    detection_rate: float
    coverage: float
    collisions: int
    frames_processed: int
    n_objects: int
    distance_flown_m: float
    coverage_raw: float = 0.0
    reachable_cells: int = 0
    grid_cells: int = 0
    events: Tuple[Tuple[str, str, float, float], ...] = ()
    series_times: Tuple[float, ...] = ()
    series_coverage: Tuple[float, ...] = ()

    def time_to_full_detection(self) -> Optional[float]:
        """Time of the last first-detection if every object was found."""
        if self.detection_rate < 1.0 or not self.events:
            return None
        return max(e[2] for e in self.events)

    def build_series(self) -> CoverageSeries:
        """Rebuild the live coverage-over-time series."""
        series = CoverageSeries()
        for t, c in zip(self.series_times, self.series_coverage):
            series.append(t, c)
        return series

    def to_search_result(self) -> SearchResult:
        """Rebuild a :class:`~repro.mission.closed_loop.SearchResult`.

        The trajectory samples and occupancy grid are not persisted, so
        those fields come back ``None``.
        """
        return SearchResult(
            detection_rate=self.detection_rate,
            events=[
                DetectionEvent(
                    object_name=name,
                    object_class=cls,
                    time_s=time_s,
                    distance_m=distance_m,
                )
                for name, cls, time_s, distance_m in self.events
            ],
            coverage=self.coverage,
            series=self.build_series(),
            frames_processed=self.frames_processed,
            collisions=self.collisions,
            distance_flown_m=self.distance_flown_m,
            coverage_raw=self.coverage_raw,
            reachable_cells=self.reachable_cells,
            grid_cells=self.grid_cells,
        )

    @classmethod
    def from_search(cls, spec, result: SearchResult) -> "MissionRecord":
        """Record a closed-loop search outcome for mission ``spec``."""
        series = result.series
        return cls(
            index=spec.index,
            scenario=spec.scenario.name,
            kind=spec.kind,
            policy=spec.policy,
            speed=spec.speed,
            ssd_width=spec.ssd_width,
            run_idx=spec.run_idx,
            flight_time_s=spec.flight_time_s,
            detection_rate=result.detection_rate,
            coverage=result.coverage,
            collisions=result.collisions,
            frames_processed=result.frames_processed,
            n_objects=len(spec.scenario.objects),
            distance_flown_m=result.distance_flown_m,
            coverage_raw=result.coverage_raw,
            reachable_cells=result.reachable_cells,
            grid_cells=result.grid_cells,
            events=tuple(
                (e.object_name, e.object_class, e.time_s, e.distance_m)
                for e in result.events
            ),
            series_times=() if series is None else tuple(series.times.tolist()),
            series_coverage=() if series is None else tuple(series.coverage.tolist()),
        )

    @classmethod
    def from_exploration(cls, spec, result: ExplorationResult) -> "MissionRecord":
        """Record an exploration-only outcome for mission ``spec``."""
        return cls(
            index=spec.index,
            scenario=spec.scenario.name,
            kind=spec.kind,
            policy=spec.policy,
            speed=spec.speed,
            ssd_width=spec.ssd_width,
            run_idx=spec.run_idx,
            flight_time_s=spec.flight_time_s,
            detection_rate=0.0,
            coverage=result.coverage,
            collisions=result.collisions,
            frames_processed=0,
            n_objects=0,
            distance_flown_m=result.distance_flown_m,
            coverage_raw=result.coverage_raw,
            reachable_cells=result.reachable_cells,
            grid_cells=result.grid_cells,
            series_times=tuple(result.series.times.tolist()),
            series_coverage=tuple(result.series.coverage.tolist()),
        )

    def to_dict(self) -> dict:
        """Plain-data form for JSON persistence."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "MissionRecord":
        """Inverse of :meth:`to_dict`; accepts pre-v2 records.

        A v1 record predates reachable-cell normalization: its
        ``coverage`` column *was* the raw all-cells fraction, so
        ``coverage_raw`` backfills from it; the cell counts, never
        persisted, backfill as 0 ("unknown").
        """
        data = dict(data)
        data["events"] = tuple(tuple(e) for e in data.get("events", ()))
        data["series_times"] = tuple(data.get("series_times", ()))
        data["series_coverage"] = tuple(data.get("series_coverage", ()))
        if "coverage_raw" not in data:
            data["coverage_raw"] = data.get("coverage", 0.0)
        data.setdefault("reachable_cells", 0)
        data.setdefault("grid_cells", 0)
        return cls(**data)


class AggregateStat(NamedTuple):
    """Mean/std/count of one value column over a group of runs."""

    mean: float
    std: float
    n: int


class CampaignResult:
    """The columnar result store of one executed campaign.

    Args:
        campaign: the campaign definition as a plain dict
            (:meth:`~repro.sim.campaign.Campaign.to_dict`).
        campaign_hash: stable content hash of the definition.
        records: one record per executed mission, in mission order.
        execution: optional :class:`~repro.exec.ExecutionReport` of the
            run that produced the records (how many missions were
            cached vs. freshly executed). Ephemeral run metadata: not
            persisted by :meth:`to_dict`/:meth:`save`, ``None`` on
            loaded or derived results.
        failures: missions that exhausted their attempts when the
            campaign ran with ``keep_going``: plain
            :class:`~repro.exec.JobFailure` dicts, each with the
            mission ``index`` attached. Persisted (a result file with
            holes must say so), sorted by index; empty for a clean run.

    Example:
        >>> from repro.sim import Campaign, get_scenario, run_campaign
        >>> campaign = Campaign(
        ...     name="doc",
        ...     scenarios=(get_scenario("paper-room"),),
        ...     n_runs=2,
        ...     flight_time_s=5.0,
        ...     seed=1,
        ... )
        >>> result = run_campaign(campaign)
        >>> stat = result.aggregate(("scenario",), value="coverage")[("paper-room",)]
        >>> stat.n
        2
        >>> sorted(result.columns())[:2]
        ['collisions', 'coverage']
    """

    def __init__(
        self,
        campaign: dict,
        campaign_hash: str,
        records: Sequence[MissionRecord],
        execution=None,
        failures: Sequence[dict] = (),
    ):
        self.campaign = campaign
        self.campaign_hash = campaign_hash
        self.records: List[MissionRecord] = sorted(records, key=lambda r: r.index)
        self.execution = execution
        self.failures: List[dict] = sorted(
            (dict(f) for f in failures), key=lambda f: f.get("index", -1)
        )

    @property
    def name(self) -> str:
        """Campaign name."""
        return self.campaign.get("name", "campaign")

    def __len__(self) -> int:
        return len(self.records)

    # -- columnar access --------------------------------------------------

    def column(self, field: str) -> list:
        """One scalar column across every record."""
        if field not in SCALAR_COLUMNS:
            raise SimError(f"unknown column {field!r}; known: {SCALAR_COLUMNS}")
        return [getattr(r, field) for r in self.records]

    def columns(self) -> Dict[str, list]:
        """Every scalar column, keyed by name."""
        return {field: self.column(field) for field in SCALAR_COLUMNS}

    def filter(self, **criteria) -> "CampaignResult":
        """Sub-result with the records matching every ``field=value``.

        The sub-result records the filter criteria in its campaign dict
        and derives a new content hash, so saving it cannot overwrite
        the parent campaign's persisted file with partial records.
        """
        for field in criteria:
            if field not in SCALAR_COLUMNS:
                raise SimError(f"unknown column {field!r}; known: {SCALAR_COLUMNS}")
        kept = [
            r
            for r in self.records
            if all(getattr(r, f) == v for f, v in criteria.items())
        ]
        campaign = dict(self.campaign)
        campaign["filter"] = {**campaign.get("filter", {}), **criteria}
        blob = json.dumps(
            {"parent": self.campaign_hash, "filter": campaign["filter"]},
            sort_keys=True,
            default=str,
        )
        derived_hash = hashlib.sha256(blob.encode("utf-8")).hexdigest()
        return CampaignResult(campaign, derived_hash, kept)

    # -- aggregation ------------------------------------------------------

    def aggregate(
        self,
        group_by: Sequence[str],
        value: str = "detection_rate",
    ) -> Dict[tuple, AggregateStat]:
        """Mean/std of ``value`` per unique ``group_by`` key tuple.

        Matches the paper's aggregation (mean and population std over
        the independent runs of one configuration).
        """
        for field in tuple(group_by) + (value,):
            if field not in SCALAR_COLUMNS:
                raise SimError(f"unknown column {field!r}; known: {SCALAR_COLUMNS}")
        groups: Dict[tuple, List[float]] = {}
        for r in self.records:
            key = tuple(getattr(r, f) for f in group_by)
            groups.setdefault(key, []).append(getattr(r, value))
        return {
            key: AggregateStat(
                mean=float(np.mean(vals)), std=float(np.std(vals)), n=len(vals)
            )
            for key, vals in groups.items()
        }

    def best(self, value: str = "detection_rate") -> MissionRecord:
        """The record maximizing ``value``."""
        if not self.records:
            raise SimError("empty campaign result")
        return max(self.records, key=lambda r: getattr(r, value))

    # -- persistence ------------------------------------------------------

    def to_dict(self) -> dict:
        """Full plain-data form: definition, hash and all records.

        The ``failures`` key only appears when there are failures, so
        clean runs stay byte-identical to results written before fault
        tolerance existed.
        """
        data = {
            "schema": RESULT_SCHEMA,
            "campaign_hash": self.campaign_hash,
            "campaign": self.campaign,
            "records": [r.to_dict() for r in self.records],
        }
        if self.failures:
            data["failures"] = list(self.failures)
        return data

    def to_json(self, indent: Optional[int] = None) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def result_filename(self) -> str:
        """Canonical file name, keyed by the campaign hash.

        The campaign name is sanitized to a filename-safe slug so that
        names containing path separators cannot escape (or break) the
        target directory.
        """
        slug = re.sub(r"[^A-Za-z0-9._-]+", "-", self.name).strip("-.") or "campaign"
        return f"campaign-{slug}-{self.campaign_hash[:12]}.json"

    def save(self, directory: str) -> str:
        """Persist to ``directory`` (created if missing); returns the path."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, self.result_filename())
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(indent=1))
        return path

    @classmethod
    def load(cls, path: str) -> "CampaignResult":
        """Load a result previously written by :meth:`save`.

        Any ``repro.sim.campaign-result/*`` schema version is accepted;
        records from pre-v2 files backfill the reachable-coverage
        columns (see :meth:`MissionRecord.from_dict`).
        """
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        schema = data.get("schema", "")
        if not schema.startswith(schemas.family(RESULT_SCHEMA) + "/"):
            raise SimError(f"{path}: not a campaign result file (schema {schema!r})")
        return cls(
            campaign=data["campaign"],
            campaign_hash=data["campaign_hash"],
            records=[MissionRecord.from_dict(r) for r in data["records"]],
            failures=data.get("failures", ()),
        )
