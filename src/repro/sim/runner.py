"""Campaign execution: serial loop or a ``multiprocessing`` pool.

Missions are embarrassingly parallel -- each :class:`MissionSpec` is
self-contained and owns an independent seed stream -- so the pooled and
serial paths produce bit-identical records, merely in a different
wall-clock order. Records are re-sorted by mission index before they
enter the :class:`~repro.sim.results.CampaignResult`, which makes the
two paths indistinguishable downstream.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Optional

from repro.errors import SimError
from repro.mission.closed_loop import ClosedLoopMission
from repro.mission.detector_model import CalibratedDetectorModel
from repro.mission.explorer import ExplorationMission
from repro.policies import PolicyConfig, make_policy
from repro.sim.campaign import Campaign, MissionSpec
from repro.sim.results import CampaignResult, MissionRecord

#: Progress callback signature: ``(done, total, record)``.
ProgressCallback = Callable[[int, int, MissionRecord], None]


def execute_mission(spec: MissionSpec) -> MissionRecord:
    """Run one mission from its spec (also the pool worker entry point).

    Args:
        spec: a fully-specified mission from
            :meth:`~repro.sim.campaign.Campaign.missions`.

    Returns:
        The flat :class:`~repro.sim.results.MissionRecord` outcome.
    """
    scenario = spec.scenario
    room = scenario.build_room()
    policy = make_policy(spec.policy, PolicyConfig(cruise_speed=spec.speed))
    seed = spec.seed_sequence()
    if spec.kind == "explore":
        mission = ExplorationMission(
            room,
            policy,
            flight_time_s=spec.flight_time_s,
            start=scenario.start_position(),
            start_heading=scenario.start_heading,
            drone_config=scenario.drone_config(),
        )
        return MissionRecord.from_exploration(spec, mission.run(seed=seed))
    op = spec.operating_point()
    mission = ClosedLoopMission(
        room,
        scenario.build_objects(),
        policy,
        CalibratedDetectorModel(op),
        op,
        flight_time_s=spec.flight_time_s,
        start=scenario.start_position(),
        drone_config=scenario.drone_config(),
    )
    return MissionRecord.from_search(spec, mission.run(seed=seed))


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker count: ``None`` -> serial, ``0`` -> all cores."""
    if workers is None:
        return 1
    if workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise SimError(f"workers must be >= 0, got {workers}")
    return workers


def run_campaign(
    campaign: Campaign,
    workers: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
) -> CampaignResult:
    """Execute every mission of ``campaign`` and collect the results.

    Args:
        campaign: the sweep to run.
        workers: ``None``/``1`` for the serial path, ``0`` for one worker
            per CPU core, otherwise the pool size. If the pool cannot be
            created (restricted environments), execution silently falls
            back to the serial path -- results are identical either way.
        progress: optional callback invoked after each finished mission
            with ``(done, total, record)``. Under the pool it runs in the
            parent process, in completion order.

    Returns:
        A :class:`~repro.sim.results.CampaignResult` with one record per
        mission, sorted by mission index.

    Raises:
        SimError: for a negative ``workers`` count.

    Example:
        >>> from repro.sim import Campaign, get_scenario, run_campaign
        >>> campaign = Campaign(
        ...     name="doc",
        ...     scenarios=(get_scenario("paper-room"),),
        ...     flight_time_s=5.0,
        ...     seed=7,
        ... )
        >>> result = run_campaign(campaign)
        >>> len(result)
        1
        >>> result.records[0].scenario
        'paper-room'
    """
    specs = campaign.missions()
    total = len(specs)
    n_workers = resolve_workers(workers)
    records = None
    if n_workers > 1 and total > 1:
        records = _run_pooled(specs, min(n_workers, total), total, progress)
    if records is None:
        records = []
        for spec in specs:
            records.append(execute_mission(spec))
            if progress is not None:
                progress(len(records), total, records[-1])
    return CampaignResult(campaign.to_dict(), campaign.campaign_hash(), records)


def _run_pooled(specs, n_workers: int, total: int, progress):
    """Pool execution; returns ``None`` if no pool can be created."""
    try:
        pool = multiprocessing.Pool(processes=n_workers)
    except (OSError, ValueError, ImportError):  # pragma: no cover - env specific
        return None
    records = []
    try:
        # ``with pool`` terminates on exit: when a mission raises, the
        # queued remainder is killed immediately instead of burning the
        # rest of the campaign's wall-clock before the error surfaces.
        with pool:
            for record in pool.imap_unordered(execute_mission, specs):
                records.append(record)
                if progress is not None:
                    progress(len(records), total, record)
    finally:
        pool.join()
    return records
