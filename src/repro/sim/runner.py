"""Campaign execution: a thin adapter over :mod:`repro.exec`.

Missions are embarrassingly parallel -- each :class:`MissionSpec` is
self-contained and owns an independent seed stream -- so they map 1:1
onto execution-layer jobs: :func:`mission_job` turns a spec into a
:class:`~repro.exec.jobspec.JobSpec` whose payload is the spec's plain
dict (seed provenance lives on the job, not in the payload) and whose
content hash keys the persistent result cache. Serial, pooled and
cache-hit execution produce bit-identical records, merely in a
different wall-clock order; records are re-sorted by mission index
inside the :class:`~repro.sim.results.CampaignResult`, which makes the
paths indistinguishable downstream.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro import schemas
from repro.errors import ExecError
from repro.exec import (
    Broker,
    Executor,
    ExecutionReport,
    JobFailure,
    JobSpec,
    ResultCache,
    RetryPolicy,
    SubmitReport,
    default_cache_dir,
)
from repro.exec import resolve_workers  # noqa: F401  (re-export, see below)
from repro.exec.executor import ProgressCallback as ExecProgressCallback
from repro.mission.closed_loop import ClosedLoopMission
from repro.mission.detector_model import CalibratedDetectorModel
from repro.mission.explorer import ExplorationMission
from repro.obs import MissionTrace, TraceStore
from repro.policies import PolicyConfig, make_policy
from repro.seeding import seed_provenance
from repro.sim.campaign import Campaign, MissionSpec
from repro.sim.results import CampaignResult, MissionRecord

#: Progress callback signature: ``(done, total, record)``.
ProgressCallback = Callable[[int, int, MissionRecord], None]

#: Code-version token of the mission job, now its own schema family
#: (``repro.sim.mission-job``): cache validity tracks mission
#: *semantics* (what numbers a flight draws and records), which can
#: change without the result-file format moving -- exactly what the
#: per-sensor seed-stream refactor did (v3). Result files still carry
#: :data:`~repro.sim.results.RESULT_SCHEMA`.
MISSION_JOB_VERSION = schemas.MISSION_JOB_VERSION


def fly_mission(
    spec: MissionSpec, record: bool = False
) -> Tuple[MissionRecord, Optional[MissionTrace]]:
    """Run one mission from its spec, optionally recording telemetry.

    Args:
        spec: a fully-specified mission from
            :meth:`~repro.sim.campaign.Campaign.missions`.
        record: when True, also return the flight's
            :class:`~repro.obs.MissionTrace`. Recording never changes
            the flight: the record is bit-identical either way.

    Returns:
        ``(record, trace)``; the trace is ``None`` unless ``record``.
    """
    scenario = spec.scenario
    room = scenario.build_room()
    policy = make_policy(spec.policy, PolicyConfig(cruise_speed=spec.speed))
    seed = spec.seed_sequence()
    if spec.kind == "explore":
        mission = ExplorationMission(
            room,
            policy,
            flight_time_s=spec.flight_time_s,
            start=scenario.start_position(),
            start_heading=scenario.start_heading,
            drone_config=scenario.drone_config(),
            record=record,
        )
        outcome = MissionRecord.from_exploration(spec, mission.run(seed=seed))
    else:
        op = spec.operating_point()
        mission = ClosedLoopMission(
            room,
            scenario.build_objects(),
            policy,
            CalibratedDetectorModel(op),
            op,
            flight_time_s=spec.flight_time_s,
            start=scenario.start_position(),
            drone_config=scenario.drone_config(),
            record=record,
        )
        outcome = MissionRecord.from_search(spec, mission.run(seed=seed))
    return outcome, mission.last_trace


def execute_mission(spec: MissionSpec) -> MissionRecord:
    """Run one mission from its spec.

    Args:
        spec: a fully-specified mission from
            :meth:`~repro.sim.campaign.Campaign.missions`.

    Returns:
        The flat :class:`~repro.sim.results.MissionRecord` outcome.
    """
    return fly_mission(spec)[0]


def run_mission_payload(
    spec: dict,
    seed: np.random.SeedSequence,
    trace_dir: Optional[str] = None,
    trace_key: Optional[str] = None,
) -> dict:
    """Execution-layer entry point: fly one mission from plain data.

    Args:
        spec: a seed-free :meth:`MissionSpec.to_dict` payload.
        seed: the mission's root stream, injected by the executor from
            the job's ``(seed_entropy, spawn_key)`` provenance.
        trace_dir: side-channel (job ``extra``, excluded from the job
            hash): when set, the flight is recorded and its trace
            stored here under ``trace_key``. Never influences the
            returned record.
        trace_key: content hash the trace is filed under -- the job's
            own hash, attached by :func:`mission_job`.

    Returns:
        The mission record as a plain dict
        (:meth:`~repro.sim.results.MissionRecord.to_dict`).
    """
    data = dict(spec)
    data["seed_entropy"], data["spawn_key"] = seed_provenance(seed)
    mission_spec = MissionSpec.from_dict(data)
    if trace_dir is None:
        return execute_mission(mission_spec).to_dict()
    outcome, trace = fly_mission(mission_spec, record=True)
    TraceStore(trace_dir).put(trace_key, trace)
    return outcome.to_dict()


def mission_job(spec: MissionSpec, trace_dir: Optional[str] = None) -> JobSpec:
    """Describe one mission as an execution-layer job.

    The payload is the spec's plain dict with the seed fields lifted
    into the job's provenance (the stream is part of the job identity,
    not of the world description) and the scenario's cosmetic
    ``description`` dropped -- rewording a preset's documentation must
    not re-fly every cached mission, mirroring
    :meth:`~repro.sim.campaign.Campaign.campaign_hash`.

    Args:
        spec: the mission to describe.
        trace_dir: when set, the job records its flight trace there,
            keyed by the job's own content hash. Rides in the job's
            ``extra`` side channel: the hash -- and therefore the
            cached result's identity -- is the same with and without
            recording.
    """
    payload = spec.to_dict()
    payload.pop("seed_entropy")
    payload.pop("spawn_key")
    payload["scenario"] = {
        k: v for k, v in payload["scenario"].items() if k != "description"
    }
    job = JobSpec(
        fn="repro.sim.runner:run_mission_payload",
        kwargs={"spec": payload},
        seed_entropy=spec.seed_entropy,
        spawn_key=spec.spawn_key,
        version=MISSION_JOB_VERSION,
        label=(
            f"{spec.scenario.name}/{spec.policy}"
            f"@{spec.speed:g} run {spec.run_idx}"
        ),
    )
    if trace_dir is not None:
        job = dataclasses.replace(
            job,
            extra={"trace_dir": trace_dir, "trace_key": job.content_hash()},
        )
    return job


def campaign_jobs(
    campaign: Campaign,
    record: bool = False,
    trace_dir: Optional[str] = None,
) -> List[JobSpec]:
    """The campaign's missions as execution-layer jobs, in mission order."""
    if record and trace_dir is None:
        trace_dir = default_cache_dir()
    return [
        mission_job(spec, trace_dir=trace_dir if record else None)
        for spec in campaign.missions()
    ]


def enqueue_campaign(
    campaign: Campaign,
    broker: Broker,
    record: bool = False,
    trace_dir: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
) -> SubmitReport:
    """Submit every mission of ``campaign`` to ``broker`` and return.

    Submission is idempotent (the queue deduplicates by content hash),
    so any number of clients may enqueue the same campaign: missions
    already queued are skipped and missions already completed are
    reported as ``already_done``. Pair with ``python -m repro.exec
    worker`` daemons to drain, and :func:`run_campaign` with
    ``broker=`` to (re-)submit, wait and collect.
    """
    return broker.submit(
        campaign_jobs(campaign, record=record, trace_dir=trace_dir), retry=retry
    )


def _drain_broker(
    campaign: Campaign,
    broker: Broker,
    jobs: List[JobSpec],
    progress: Optional[ProgressCallback],
    exec_progress: Optional[ExecProgressCallback],
    keep_going: bool,
    poll_s: float,
    wait_timeout_s: Optional[float],
) -> CampaignResult:
    """Poll ``broker`` until every campaign job finished; collect results."""
    specs = campaign.missions()
    hashes = [job.content_hash() for job in jobs]
    by_hash = {h: job for h, job in zip(hashes, jobs)}
    unique = list(by_hash)
    pre_done = {
        h for h, out in broker.outcomes(unique).items() if out.state == "done"
    }
    start = time.perf_counter()
    finished: dict = {}
    while True:
        fresh = {
            h: out
            for h, out in broker.outcomes(unique).items()
            if h not in finished
        }
        for h, out in fresh.items():
            finished[h] = out
            if progress is None and exec_progress is None:
                continue
            if out.state == "failed":
                payload: object = out.failure()
            else:
                payload = out.result
            done = len(finished)
            cached = out.cached or h in pre_done
            if exec_progress is not None:
                exec_progress(done, len(unique), by_hash[h], payload, cached)
            if progress is not None and not isinstance(payload, JobFailure):
                progress(done, len(unique), MissionRecord.from_dict(payload))
        if len(finished) == len(unique):
            break
        elapsed = time.perf_counter() - start
        if wait_timeout_s is not None and elapsed > wait_timeout_s:
            counts = broker.counts()
            raise ExecError(
                f"broker drain timed out after {elapsed:.1f} s with "
                f"{counts.remaining} of {len(unique)} campaign jobs "
                f"unfinished ({counts.pending} pending, {counts.leased} "
                f"leased) -- are any workers running?"
            )
        # Dead workers are normally noticed by the next lease() call;
        # reclaim here too so a fleet that died entirely still drains
        # (to `failed` once reclaim budgets exhaust) instead of hanging.
        broker.reclaim_expired()
        time.sleep(poll_s)
    elapsed = time.perf_counter() - start
    records = []
    failures = []
    retried = timed_out = 0
    executed = cached_n = failed_n = 0
    for h in unique:
        out = finished[h]
        timed_out += out.timeouts
        if out.state == "failed":
            failed_n += 1
            retried += max(out.attempts - 1, 0) + out.reclaims
        else:
            retried += out.attempts + out.reclaims
            if out.cached or h in pre_done:
                cached_n += 1
            else:
                executed += 1
    for spec, h in zip(specs, hashes):
        out = finished[h]
        if out.state == "failed":
            failure = out.failure()
            if not keep_going:
                raise ExecError(
                    f"job {failure.summary()} "
                    f"(pass keep_going to isolate failures)"
                )
            failures.append({"index": spec.index, **failure.to_dict()})
        else:
            records.append(MissionRecord.from_dict(out.result))
    report = ExecutionReport(
        total=len(jobs),
        executed=executed,
        cached=cached_n + (len(jobs) - len(unique)),
        elapsed_s=elapsed,
        failed=failed_n,
        retried=retried,
        timed_out=timed_out,
    )
    return CampaignResult(
        campaign.to_dict(),
        campaign.campaign_hash(),
        records,
        execution=report,
        failures=failures,
    )


def _run_campaign_fleet(
    campaign: Campaign,
    fleet_block: int,
    progress: Optional[ProgressCallback],
    cache: Optional[ResultCache],
    exec_progress: Optional[ExecProgressCallback],
    retry: Optional[RetryPolicy],
    keep_going: bool,
) -> CampaignResult:
    """Fleet path of :func:`run_campaign`: step same-world blocks in lock-step.

    Cache hits are served first in mission order (exactly like the
    executor path); the remaining missions are grouped by
    :func:`~repro.sim.fleet.fleet_key` into blocks of at most
    ``fleet_block`` and each block flies as one
    :func:`~repro.sim.fleet.fly_fleet` call. Every member keeps its own
    job identity: one cache entry per mission, progress fired per
    member, and the execution report's per-job wall clocks are the
    block time amortized over its members. A block that raises falls
    back to per-mission serial execution (honoring ``retry`` /
    ``keep_going``), so fleet mode never turns one bad mission into a
    lost block.
    """
    from repro.sim.fleet import fleet_key, fly_fleet

    specs = campaign.missions()
    jobs = [mission_job(spec) for spec in specs]
    total = len(jobs)
    start = time.perf_counter()
    done = 0
    payloads: dict = {}  # mission index -> result dict or JobFailure
    cached_n = 0
    if cache is not None:
        for spec, job in zip(specs, jobs):
            value, hit = cache.get(job)
            if not hit:
                continue
            payloads[spec.index] = value
            cached_n += 1
            done += 1
            if exec_progress is not None:
                exec_progress(done, total, job, value, True)
            if progress is not None:
                progress(done, total, MissionRecord.from_dict(value))

    blocks: List[List[Tuple[MissionSpec, JobSpec]]] = []
    open_blocks: dict = {}
    for spec, job in zip(specs, jobs):
        if spec.index in payloads:
            continue
        key = fleet_key(spec)
        block = open_blocks.get(key)
        if block is None or len(block) >= fleet_block:
            block = []
            open_blocks[key] = block
            blocks.append(block)
        block.append((spec, job))

    executed = 0
    failed_n = 0
    retried = 0
    timed_out = 0
    failures: List[dict] = []
    # (per-mission amortized seconds, label) of every fresh flight.
    timings: List[Tuple[float, str]] = []
    for block in blocks:
        block_specs = [spec for spec, _ in block]
        t0 = time.perf_counter()
        try:
            records = fly_fleet(block_specs)
        except Exception:
            # One bad mission must not sink its block-mates: re-fly the
            # members individually with the executor's fault tolerance.
            executor = Executor(
                workers=None, cache=cache, retry=retry, keep_going=keep_going
            )
            member_jobs = [job for _, job in block]
            member_payloads = executor.run(member_jobs)
            report = executor.last_report
            if report is not None:
                executed += report.executed
                cached_n += report.cached
                failed_n += report.failed
                retried += report.retried
                timed_out += report.timed_out
                if report.executed:
                    timings.append((report.job_min_s, ""))
                    timings.append((report.job_max_s, report.slowest_label))
            for (spec, job), payload in zip(block, member_payloads):
                payloads[spec.index] = payload
                done += 1
                if exec_progress is not None:
                    exec_progress(done, total, job, payload, False)
                if progress is not None and not isinstance(payload, JobFailure):
                    progress(done, total, MissionRecord.from_dict(payload))
            continue
        per_mission_s = (time.perf_counter() - t0) / len(block)
        for (spec, job), outcome in zip(block, records):
            payload = outcome.to_dict()
            if cache is not None:
                cache.put(job, payload)
            payloads[spec.index] = payload
            executed += 1
            done += 1
            timings.append((per_mission_s, job.label or job.content_hash()[:12]))
            if exec_progress is not None:
                exec_progress(done, total, job, payload, False)
            if progress is not None:
                progress(done, total, MissionRecord.from_dict(payload))

    records_out = []
    for spec in specs:
        payload = payloads[spec.index]
        if isinstance(payload, JobFailure):
            failures.append({"index": spec.index, **payload.to_dict()})
        else:
            records_out.append(MissionRecord.from_dict(payload))
    fresh = [t for t, _ in timings]
    report = ExecutionReport(
        total=total,
        executed=executed,
        cached=cached_n,
        elapsed_s=time.perf_counter() - start,
        failed=failed_n,
        retried=retried,
        timed_out=timed_out,
        job_min_s=min(fresh) if fresh else 0.0,
        job_mean_s=sum(fresh) / len(fresh) if fresh else 0.0,
        job_max_s=max(fresh) if fresh else 0.0,
        slowest_label=max(timings, key=lambda t: t[0])[1] if timings else "",
    )
    return CampaignResult(
        campaign.to_dict(),
        campaign.campaign_hash(),
        records_out,
        execution=report,
        failures=failures,
    )


def run_campaign(
    campaign: Campaign,
    workers: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    cache: Optional[ResultCache] = None,
    record: bool = False,
    trace_dir: Optional[str] = None,
    exec_progress: Optional[ExecProgressCallback] = None,
    retry: Optional[RetryPolicy] = None,
    keep_going: bool = False,
    broker: Optional[Broker] = None,
    poll_s: float = 0.2,
    wait_timeout_s: Optional[float] = None,
    fleet_block: Optional[int] = None,
) -> CampaignResult:
    """Execute every mission of ``campaign`` and collect the results.

    Args:
        campaign: the sweep to run.
        workers: ``None``/``1`` for the serial path, ``0`` for one worker
            per CPU core, otherwise the pool size. If the pool cannot be
            created (restricted environments), execution silently falls
            back to the serial path -- results are identical either way.
        progress: optional callback invoked after each finished mission
            with ``(done, total, record)``. Runs in the parent process;
            cache hits are reported first (in mission order), then
            executed missions in completion order.
        cache: optional persistent :class:`~repro.exec.ResultCache`.
            Missions whose job hash is already stored load instead of
            flying again; fresh results are stored for the next run.
            ``None`` (the default) disables caching.
        record: when True, every mission captures a flight trace stored
            beside its cache entry (keyed by the job hash). Recording
            rides the job's ``extra`` side channel, so hashes and
            results are identical with and without it; missions whose
            result is cached but whose trace is missing re-fly (the
            fresh result is byte-identical to the stored one).
        trace_dir: where traces go; defaults to the cache directory
            (or the default cache dir when ``cache`` is ``None``).
        exec_progress: optional executor-level callback with the raw
            ``(done, total, job, payload, cached)`` signature -- what
            the CLIs' live progress line consumes; may be combined
            with ``progress``.
        retry: optional :class:`~repro.exec.RetryPolicy` giving each
            mission multiple attempts, deterministic backoff and a
            per-attempt wall-clock timeout. ``None`` keeps the
            historical one-attempt, no-timeout behavior. Retries do not
            change results: a mission that succeeds on attempt three is
            byte-identical to one that succeeds on attempt one.
        keep_going: when ``True``, a mission that exhausts its attempts
            is dropped from ``records`` and reported in the result's
            ``failures`` (as a :class:`~repro.exec.JobFailure` dict
            with the mission ``index``) while its siblings fly on; when
            ``False`` (default) the first exhausted mission aborts the
            campaign.
        broker: a :class:`~repro.exec.Broker` to shard the campaign
            through instead of executing in-process: every mission is
            enqueued (idempotently -- resubmitting a partially-drained
            campaign only waits for the remainder), external ``python
            -m repro.exec worker`` daemons drain the queue, and this
            call polls until every mission finished. ``workers`` is
            ignored (fleet size is however many daemons are running)
            and ``cache`` is the *workers'* concern; results are
            byte-identical to a serial in-process run. ``retry`` and
            ``keep_going`` keep their meaning (attempt budgets are
            fixed at submit time).
        poll_s: broker mode only -- seconds between outcome polls.
        wait_timeout_s: broker mode only -- give up (``ExecError``)
            after this many seconds without the queue draining;
            ``None`` waits forever.
        fleet_block: when greater than 1, group cache-missed missions
            that share a (world, kind) into blocks of at most this many
            and step each block in lock-step through the vectorized
            :func:`~repro.sim.fleet.fly_fleet` instead of flying
            missions one by one. Purely a throughput knob: records,
            cache entries (one per mission, same job hashes) and saved
            result files are byte-identical to the serial path.
            Ignored in broker mode and when ``record`` is set (traces
            are a per-mission serial concern); ``None``/``1`` keeps
            the historical per-mission paths.

    Returns:
        A :class:`~repro.sim.results.CampaignResult` with one record per
        mission, sorted by mission index. Its ``execution`` attribute
        holds the :class:`~repro.exec.ExecutionReport` (how many
        missions were cached vs. executed, plus failure/retry/timeout
        counters).

    Raises:
        ExecError: for a negative ``workers`` count, or a failed
            mission without ``keep_going``.

    Example:
        >>> from repro.sim import Campaign, get_scenario, run_campaign
        >>> campaign = Campaign(
        ...     name="doc",
        ...     scenarios=(get_scenario("paper-room"),),
        ...     flight_time_s=5.0,
        ...     seed=7,
        ... )
        >>> result = run_campaign(campaign)
        >>> len(result)
        1
        >>> result.records[0].scenario
        'paper-room'
        >>> result.execution.executed
        1
    """
    store = None
    if record:
        if trace_dir is None:
            trace_dir = cache.directory if cache is not None else default_cache_dir()
        store = TraceStore(trace_dir)
    if broker is not None:
        jobs = campaign_jobs(campaign, record=record, trace_dir=trace_dir)
        broker.submit(jobs, retry=retry)
        return _drain_broker(
            campaign,
            broker,
            jobs,
            progress,
            exec_progress,
            keep_going,
            poll_s,
            wait_timeout_s,
        )
    if fleet_block is not None and fleet_block > 1 and not record:
        return _run_campaign_fleet(
            campaign, fleet_block, progress, cache, exec_progress, retry,
            keep_going,
        )
    specs = campaign.missions()
    jobs = [
        mission_job(spec, trace_dir=trace_dir if record else None)
        for spec in specs
    ]
    executor = Executor(
        workers=workers, cache=cache, retry=retry, keep_going=keep_going
    )
    combined = None
    if progress is not None or exec_progress is not None:
        def combined(done, total, job, payload, cached):
            if exec_progress is not None:
                exec_progress(done, total, job, payload, cached)
            if progress is not None and not isinstance(payload, JobFailure):
                progress(done, total, MissionRecord.from_dict(payload))
    refresh = None
    if store is not None:
        # A cached scalar result without its trace artifact must re-fly
        # (determinism makes the re-stored result byte-identical).
        def refresh(job):
            return not store.has(job.content_hash())
    payloads = executor.run(jobs, progress=combined, refresh=refresh)
    records = []
    failures = []
    for spec, payload in zip(specs, payloads):
        if isinstance(payload, JobFailure):
            failures.append({"index": spec.index, **payload.to_dict()})
        else:
            records.append(MissionRecord.from_dict(payload))
    return CampaignResult(
        campaign.to_dict(),
        campaign.campaign_hash(),
        records,
        execution=executor.last_report,
        failures=failures,
    )
