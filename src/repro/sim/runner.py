"""Campaign execution: a thin adapter over :mod:`repro.exec`.

Missions are embarrassingly parallel -- each :class:`MissionSpec` is
self-contained and owns an independent seed stream -- so they map 1:1
onto execution-layer jobs: :func:`mission_job` turns a spec into a
:class:`~repro.exec.jobspec.JobSpec` whose payload is the spec's plain
dict (seed provenance lives on the job, not in the payload) and whose
content hash keys the persistent result cache. Serial, pooled and
cache-hit execution produce bit-identical records, merely in a
different wall-clock order; records are re-sorted by mission index
inside the :class:`~repro.sim.results.CampaignResult`, which makes the
paths indistinguishable downstream.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.exec import Executor, JobSpec, ResultCache
from repro.exec import resolve_workers  # noqa: F401  (re-export, see below)
from repro.mission.closed_loop import ClosedLoopMission
from repro.mission.detector_model import CalibratedDetectorModel
from repro.mission.explorer import ExplorationMission
from repro.policies import PolicyConfig, make_policy
from repro.seeding import seed_provenance
from repro.sim.campaign import Campaign, MissionSpec
from repro.sim.results import RESULT_SCHEMA, CampaignResult, MissionRecord

#: Progress callback signature: ``(done, total, record)``.
ProgressCallback = Callable[[int, int, MissionRecord], None]

#: Code-version token of the mission job. Reusing the result-file
#: schema string ties cache validity to record semantics: bumping the
#: schema (new columns, changed normalization) automatically invalidates
#: every cached mission instead of serving records with stale meaning.
MISSION_JOB_VERSION = RESULT_SCHEMA


def execute_mission(spec: MissionSpec) -> MissionRecord:
    """Run one mission from its spec.

    Args:
        spec: a fully-specified mission from
            :meth:`~repro.sim.campaign.Campaign.missions`.

    Returns:
        The flat :class:`~repro.sim.results.MissionRecord` outcome.
    """
    scenario = spec.scenario
    room = scenario.build_room()
    policy = make_policy(spec.policy, PolicyConfig(cruise_speed=spec.speed))
    seed = spec.seed_sequence()
    if spec.kind == "explore":
        mission = ExplorationMission(
            room,
            policy,
            flight_time_s=spec.flight_time_s,
            start=scenario.start_position(),
            start_heading=scenario.start_heading,
            drone_config=scenario.drone_config(),
        )
        return MissionRecord.from_exploration(spec, mission.run(seed=seed))
    op = spec.operating_point()
    mission = ClosedLoopMission(
        room,
        scenario.build_objects(),
        policy,
        CalibratedDetectorModel(op),
        op,
        flight_time_s=spec.flight_time_s,
        start=scenario.start_position(),
        drone_config=scenario.drone_config(),
    )
    return MissionRecord.from_search(spec, mission.run(seed=seed))


def run_mission_payload(spec: dict, seed: np.random.SeedSequence) -> dict:
    """Execution-layer entry point: fly one mission from plain data.

    Args:
        spec: a seed-free :meth:`MissionSpec.to_dict` payload.
        seed: the mission's root stream, injected by the executor from
            the job's ``(seed_entropy, spawn_key)`` provenance.

    Returns:
        The mission record as a plain dict
        (:meth:`~repro.sim.results.MissionRecord.to_dict`).
    """
    data = dict(spec)
    data["seed_entropy"], data["spawn_key"] = seed_provenance(seed)
    return execute_mission(MissionSpec.from_dict(data)).to_dict()


def mission_job(spec: MissionSpec) -> JobSpec:
    """Describe one mission as an execution-layer job.

    The payload is the spec's plain dict with the seed fields lifted
    into the job's provenance (the stream is part of the job identity,
    not of the world description) and the scenario's cosmetic
    ``description`` dropped -- rewording a preset's documentation must
    not re-fly every cached mission, mirroring
    :meth:`~repro.sim.campaign.Campaign.campaign_hash`.
    """
    payload = spec.to_dict()
    payload.pop("seed_entropy")
    payload.pop("spawn_key")
    payload["scenario"] = {
        k: v for k, v in payload["scenario"].items() if k != "description"
    }
    return JobSpec(
        fn="repro.sim.runner:run_mission_payload",
        kwargs={"spec": payload},
        seed_entropy=spec.seed_entropy,
        spawn_key=spec.spawn_key,
        version=MISSION_JOB_VERSION,
        label=(
            f"{spec.scenario.name}/{spec.policy}"
            f"@{spec.speed:g} run {spec.run_idx}"
        ),
    )


def run_campaign(
    campaign: Campaign,
    workers: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    cache: Optional[ResultCache] = None,
) -> CampaignResult:
    """Execute every mission of ``campaign`` and collect the results.

    Args:
        campaign: the sweep to run.
        workers: ``None``/``1`` for the serial path, ``0`` for one worker
            per CPU core, otherwise the pool size. If the pool cannot be
            created (restricted environments), execution silently falls
            back to the serial path -- results are identical either way.
        progress: optional callback invoked after each finished mission
            with ``(done, total, record)``. Runs in the parent process;
            cache hits are reported first (in mission order), then
            executed missions in completion order.
        cache: optional persistent :class:`~repro.exec.ResultCache`.
            Missions whose job hash is already stored load instead of
            flying again; fresh results are stored for the next run.
            ``None`` (the default) disables caching.

    Returns:
        A :class:`~repro.sim.results.CampaignResult` with one record per
        mission, sorted by mission index. Its ``execution`` attribute
        holds the :class:`~repro.exec.ExecutionReport` (how many
        missions were cached vs. executed).

    Raises:
        ExecError: for a negative ``workers`` count.

    Example:
        >>> from repro.sim import Campaign, get_scenario, run_campaign
        >>> campaign = Campaign(
        ...     name="doc",
        ...     scenarios=(get_scenario("paper-room"),),
        ...     flight_time_s=5.0,
        ...     seed=7,
        ... )
        >>> result = run_campaign(campaign)
        >>> len(result)
        1
        >>> result.records[0].scenario
        'paper-room'
        >>> result.execution.executed
        1
    """
    jobs = [mission_job(spec) for spec in campaign.missions()]
    executor = Executor(workers=workers, cache=cache)
    exec_progress = None
    if progress is not None:
        def exec_progress(done, total, job, payload, cached):
            progress(done, total, MissionRecord.from_dict(payload))
    payloads = executor.run(jobs, progress=exec_progress)
    records = [MissionRecord.from_dict(p) for p in payloads]
    return CampaignResult(
        campaign.to_dict(),
        campaign.campaign_hash(),
        records,
        execution=executor.last_report,
    )
