"""One name registry shared by scenario presets and scenario families.

Presets (:mod:`repro.sim.scenario`) and parametric families
(:mod:`repro.sim.generators`) are looked up through the same CLI and the
same campaign references, so they share a *single* namespace: a family
named ``"paper-room"`` would silently shadow the preset of the same name
everywhere a bare name is accepted. Both registries therefore delegate
to :class:`Registry`, which enforces uniqueness across every registered
kind -- duplicate names within a kind need an explicit ``overwrite``,
and cross-kind collisions are rejected outright (``overwrite`` cannot
turn a preset into a family or vice versa).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple, TypeVar

from repro.errors import SimError

T = TypeVar("T")

#: Global name -> kind map spanning every :class:`Registry` instance.
_NAMESPACE: Dict[str, str] = {}


class Registry:
    """A named-item registry participating in the shared sim namespace.

    Args:
        kind: human label used in error messages and the namespace map,
            e.g. ``"scenario"`` or ``"scenario family"``.

    Example:
        >>> from repro.sim.registry import Registry
        >>> colors = Registry("color")
        >>> colors.register("red", object())  # doctest: +ELLIPSIS
        <object object at ...>
        >>> colors.names()
        ('red',)
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._items: Dict[str, T] = {}

    def register(
        self,
        name: str,
        item: T,
        overwrite: bool = False,
        validate: Optional[Callable[[], None]] = None,
    ) -> T:
        """Add ``item`` under ``name``; returns ``item``.

        Args:
            name: registry key; must be unique across *all* sim
                registries, not just this one.
            item: the object to register.
            overwrite: allow replacing an existing entry **of the same
                kind**. A name owned by another kind is always an error.
            validate: optional callable invoked before the entry is
                stored; a raising validator leaves the registry
                untouched.

        Raises:
            SimError: on duplicate names (unless ``overwrite``), on a
                name owned by a different registry kind, or when
                ``validate`` raises.
        """
        if not name:
            raise SimError(f"{self.kind} needs a name")
        owner = _NAMESPACE.get(name)
        if owner is not None and owner != self.kind:
            raise SimError(
                f"{self.kind} {name!r} would shadow the {owner} of the same "
                f"name; scenario presets and families share one namespace"
            )
        if name in self._items and not overwrite:
            raise SimError(f"{self.kind} {name!r} is already registered")
        if validate is not None:
            validate()
        self._items[name] = item
        _NAMESPACE[name] = self.kind
        return item

    def get(self, name: str) -> T:
        """Look up a registered item by name.

        Raises:
            SimError: for an unknown name, listing the known ones -- and
                pointing at the owning kind when the name exists in a
                sibling registry.
        """
        try:
            return self._items[name]
        except KeyError:
            owner = _NAMESPACE.get(name)
            if owner is not None:
                raise SimError(
                    f"{name!r} is a {owner}, not a {self.kind}"
                ) from None
            known = ", ".join(self.names())
            raise SimError(f"unknown {self.kind} {name!r}; known: {known}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._items

    def names(self) -> Tuple[str, ...]:
        """Registered names, sorted."""
        return tuple(sorted(self._items))

    def values(self) -> Iterable[T]:
        """Registered items in name order."""
        for name in self.names():
            yield self._items[name]
