"""Declarative scenarios and the named-scenario registry.

A :class:`Scenario` bundles everything one closed-loop search flight
needs -- room layout, object placement, default policy configuration,
detector operating point, flight time and drone configuration -- as
plain data. Declarative specs (rather than live ``Room``/``SceneObject``
instances) buy three things at once:

- missions ship to ``multiprocessing`` workers as small picklable
  payloads and are rebuilt in-process,
- a scenario serializes to a canonical dict, giving campaigns a stable
  content hash for result persistence,
- presets are data, so new rooms are a registry entry away.

The registry starts with the paper's mocap room plus four synthetic
layouts built on :mod:`repro.world.layouts` (cluttered office, corridor
maze, empty arena, multi-room apartment) and a nightmare variant.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Iterable, List, Optional, Tuple

from repro.drone.crazyflie import CrazyflieConfig
from repro.errors import SimError
from repro.sim.registry import Registry
from repro.geometry.shapes import AABB, Circle
from repro.geometry.vec import Vec2
from repro.world.layouts import (
    apartment_room,
    cluttered_room,
    corridor_maze_room,
    empty_arena_room,
    paper_object_layout,
    paper_room,
    scattered_object_layout,
)
from repro.world.objects import ObjectClass, SceneObject
from repro.world.room import Obstacle, Room


@dataclass(frozen=True)
class ObstacleSpec:
    """Declarative obstacle: an axis-aligned box or a cylinder.

    Attributes:
        kind: ``"box"`` (params ``xmin, ymin, xmax, ymax``) or
            ``"cylinder"`` (params ``cx, cy, radius``).
        params: shape parameters, metres.
        name: optional identifier.
    """

    kind: str
    params: Tuple[float, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("box", "cylinder"):
            raise SimError(f"unknown obstacle kind {self.kind!r}")
        expected = 4 if self.kind == "box" else 3
        if len(self.params) != expected:
            raise SimError(
                f"{self.kind} obstacle needs {expected} params, got {len(self.params)}"
            )

    def build(self) -> Obstacle:
        """Instantiate the live :class:`~repro.world.room.Obstacle`."""
        if self.kind == "box":
            return Obstacle(AABB(*self.params), name=self.name)
        cx, cy, radius = self.params
        return Obstacle(Circle(Vec2(cx, cy), radius), name=self.name)

    @classmethod
    def from_obstacle(cls, obstacle: Obstacle) -> "ObstacleSpec":
        """Describe an existing obstacle declaratively."""
        shape = obstacle.shape
        if isinstance(shape, AABB):
            return cls(
                "box",
                (shape.xmin, shape.ymin, shape.xmax, shape.ymax),
                name=obstacle.name,
            )
        if isinstance(shape, Circle):
            return cls(
                "cylinder",
                (shape.center.x, shape.center.y, shape.radius),
                name=obstacle.name,
            )
        raise SimError(f"cannot describe obstacle shape {type(shape).__name__}")


@dataclass(frozen=True)
class RoomSpec:
    """Declarative room: wall rectangle plus interior obstacles."""

    width: float
    length: float
    obstacles: Tuple[ObstacleSpec, ...] = ()

    def build(self) -> Room:
        """Instantiate the live :class:`~repro.world.room.Room`."""
        return Room(self.width, self.length, [o.build() for o in self.obstacles])

    @classmethod
    def from_room(cls, room: Room) -> "RoomSpec":
        """Describe an existing room declaratively."""
        return cls(
            width=room.width,
            length=room.length,
            obstacles=tuple(ObstacleSpec.from_obstacle(o) for o in room.obstacles),
        )


@dataclass(frozen=True)
class ObjectSpec:
    """Declarative target object placement."""

    object_class: str  #: an :class:`~repro.world.objects.ObjectClass` value
    x: float
    y: float
    name: str = ""

    def build(self) -> SceneObject:
        """Instantiate the live :class:`~repro.world.objects.SceneObject`."""
        return SceneObject(ObjectClass(self.object_class), Vec2(self.x, self.y), name=self.name)

    @classmethod
    def from_object(cls, obj: SceneObject) -> "ObjectSpec":
        """Describe an existing scene object declaratively."""
        return cls(
            object_class=obj.object_class.value,
            x=obj.position.x,
            y=obj.position.y,
            name=obj.name,
        )


@dataclass(frozen=True)
class Scenario:
    """One named, fully reproducible mission setup.

    Attributes:
        name: registry key, e.g. ``"paper-room"``.
        room: declarative room layout.
        objects: target objects placed in the room.
        policy: default exploration policy name.
        cruise_speed: default mean flight speed, m/s.
        ssd_width: default SSD width-multiplier key (``"1.0"``...).
        flight_time_s: default flight duration, s.
        start: optional drone start position ``(x, y)``; ``None`` uses
            the platform default (1 m from the south-west corner).
        start_heading: initial heading, rad (exploration missions).
        noisy: whether the simulated sensors are noisy.
        description: one-line human description for the CLI listing.

    Raises:
        SimError: on an empty name, non-positive cruise speed or
            non-positive flight time.

    Example:
        >>> from repro.sim import ObjectSpec, RoomSpec, Scenario
        >>> demo = Scenario(
        ...     name="demo",
        ...     room=RoomSpec(width=4.0, length=3.0),
        ...     objects=(ObjectSpec("bottle", 2.0, 1.5, "target"),),
        ... )
        >>> demo.build_room().width
        4.0
        >>> Scenario.from_dict(demo.to_dict()) == demo
        True
    """

    name: str
    room: RoomSpec
    objects: Tuple[ObjectSpec, ...] = ()
    policy: str = "pseudo-random"
    cruise_speed: float = 0.5
    ssd_width: str = "1.0"
    flight_time_s: float = 120.0
    start: Optional[Tuple[float, float]] = None
    start_heading: float = 0.0
    noisy: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SimError("scenario needs a name")
        if self.cruise_speed <= 0.0:
            raise SimError(f"{self.name}: cruise speed must be positive")
        if self.flight_time_s <= 0.0:
            raise SimError(f"{self.name}: flight time must be positive")

    # -- construction -----------------------------------------------------

    def build_room(self) -> Room:
        """The live room."""
        return self.room.build()

    def build_objects(self) -> List[SceneObject]:
        """The live target objects."""
        return [o.build() for o in self.objects]

    def start_position(self) -> Optional[Vec2]:
        """Drone start position, or ``None`` for the platform default."""
        if self.start is None:
            return None
        return Vec2(*self.start)

    def drone_config(self) -> Optional[CrazyflieConfig]:
        """Platform configuration override (``None`` keeps defaults)."""
        if self.noisy:
            return None
        return CrazyflieConfig(noisy=False)

    def validate(self) -> None:
        """Build the world and check that it is flyable.

        Raises:
            SimError: if an object or the start position is placed inside
                an obstacle or outside the walls.
        """
        room = self.build_room()
        for obj in self.build_objects():
            if not room.is_free(obj.position):
                raise SimError(
                    f"{self.name}: object {obj.name!r} at "
                    f"({obj.position.x:.2f}, {obj.position.y:.2f}) is not in free space"
                )
        start = self.start_position()
        if start is not None and not room.is_free(start, margin=0.1):
            raise SimError(
                f"{self.name}: start ({start.x:.2f}, {start.y:.2f}) is not in free space"
            )

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical plain-data form (JSON- and hash-friendly)."""
        return asdict(self)

    def content_hash(self) -> str:
        """Stable SHA-256 hash of the scenario definition.

        The cosmetic ``description`` is excluded, mirroring
        :meth:`repro.sim.campaign.Campaign.campaign_hash`: rewording a
        preset's documentation must not change its identity. Generator
        determinism tests compare this hash across processes.

        Returns:
            The hex digest as a string.
        """
        data = self.to_dict()
        data.pop("description", None)
        blob = json.dumps(data, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Inverse of :meth:`to_dict`."""
        data = dict(data)
        room = data.pop("room")
        objects = data.pop("objects")
        start = data.pop("start")
        return cls(
            room=RoomSpec(
                width=room["width"],
                length=room["length"],
                obstacles=tuple(
                    ObstacleSpec(o["kind"], tuple(o["params"]), o.get("name", ""))
                    for o in room["obstacles"]
                ),
            ),
            objects=tuple(
                ObjectSpec(o["object_class"], o["x"], o["y"], o.get("name", ""))
                for o in objects
            ),
            start=None if start is None else tuple(start),
            **data,
        )


# -- registry -------------------------------------------------------------

#: Preset registry; shares its namespace with the family registry of
#: :mod:`repro.sim.generators` (see :mod:`repro.sim.registry`).
_SCENARIOS: Registry = Registry("scenario")


def register_scenario(scenario: Scenario, overwrite: bool = False) -> Scenario:
    """Add ``scenario`` to the registry (validating its world first).

    Args:
        scenario: the scenario to register.
        overwrite: allow replacing an existing entry of the same name.
            Names owned by a scenario *family* are rejected regardless.

    Returns:
        The registered scenario (handy for chaining).

    Raises:
        SimError: on duplicate names (unless ``overwrite``), on a name
            that would shadow a registered scenario family, or on an
            unflyable world.

    Example:
        >>> from repro.sim import RoomSpec, Scenario, register_scenario
        >>> demo = Scenario(name="doc-demo", room=RoomSpec(width=4.0, length=3.0))
        >>> register_scenario(demo, overwrite=True).name
        'doc-demo'
    """
    return _SCENARIOS.register(
        scenario.name, scenario, overwrite=overwrite, validate=scenario.validate
    )


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name.

    Args:
        name: the registry key, e.g. ``"paper-room"``.

    Returns:
        The registered :class:`Scenario`.

    Raises:
        SimError: for an unknown name, listing the known ones (and
            pointing at the family registry if the name is a family).

    Example:
        >>> from repro.sim import get_scenario
        >>> get_scenario("paper-room").room.width
        6.5
    """
    return _SCENARIOS.get(name)


def scenario_names() -> Tuple[str, ...]:
    """Registered scenario names, sorted.

    Example:
        >>> from repro.sim import scenario_names
        >>> "paper-room" in scenario_names()
        True
    """
    return _SCENARIOS.names()


def iter_scenarios() -> Iterable[Scenario]:
    """Registered scenarios in name order."""
    return _SCENARIOS.values()


def _objects_from(objs: Iterable[SceneObject]) -> Tuple[ObjectSpec, ...]:
    return tuple(ObjectSpec.from_object(o) for o in objs)


def _register_presets() -> None:
    register_scenario(
        Scenario(
            name="paper-room",
            description="the paper's empty 6.5x5.5 m mocap room, 3 bottles + 3 cans",
            room=RoomSpec.from_room(paper_room()),
            objects=_objects_from(paper_object_layout()),
            flight_time_s=180.0,
        )
    )
    office = cluttered_room(n_obstacles=5, seed=42, width=8.0, length=6.0)
    register_scenario(
        Scenario(
            name="cluttered-office",
            description="8x6 m office with 5 random desks/columns (fixed seed)",
            room=RoomSpec.from_room(office),
            objects=_objects_from(scattered_object_layout(office, 6, seed=3)),
            start=(0.6, 0.6),
            flight_time_s=150.0,
        )
    )
    maze = corridor_maze_room()
    register_scenario(
        Scenario(
            name="corridor-maze",
            description="9x7 m S-shaped corridor maze with two partition walls",
            room=RoomSpec.from_room(maze),
            objects=(
                ObjectSpec("bottle", 1.5, 1.0, "bottle-leg1"),
                ObjectSpec("tin_can", 1.0, 6.0, "can-leg1"),
                ObjectSpec("bottle", 4.5, 6.0, "bottle-leg2"),
                ObjectSpec("tin_can", 4.5, 1.2, "can-leg2"),
                ObjectSpec("bottle", 7.5, 1.0, "bottle-leg3"),
                ObjectSpec("tin_can", 8.2, 6.2, "can-leg3"),
            ),
            policy="wall-following",
            start=(0.8, 0.8),
            flight_time_s=180.0,
        )
    )
    arena = empty_arena_room()
    register_scenario(
        Scenario(
            name="empty-arena",
            description="12x9 m empty arena, 8 scattered objects",
            room=RoomSpec.from_room(arena),
            objects=_objects_from(scattered_object_layout(arena, 8, seed=11)),
            flight_time_s=240.0,
        )
    )
    flat = apartment_room()
    register_scenario(
        Scenario(
            name="apartment",
            description="10x8 m multi-room apartment, 1.2 m doorways, 6 objects",
            room=RoomSpec.from_room(flat),
            objects=(
                ObjectSpec("bottle", 1.5, 1.5, "bottle-livingroom"),
                ObjectSpec("tin_can", 4.0, 2.0, "can-livingroom"),
                ObjectSpec("tin_can", 1.5, 6.5, "can-bedroom"),
                ObjectSpec("bottle", 4.0, 7.0, "bottle-bedroom"),
                ObjectSpec("bottle", 7.5, 1.5, "bottle-kitchen"),
                ObjectSpec("tin_can", 8.5, 6.5, "can-kitchen"),
            ),
            start=(0.7, 0.7),
            flight_time_s=240.0,
        )
    )
    dense = cluttered_room(n_obstacles=8, seed=7, width=10.0, length=8.0)
    register_scenario(
        Scenario(
            name="dense-depot",
            description="10x8 m depot with 8 obstacles -- the collision stress test",
            room=RoomSpec.from_room(dense),
            objects=_objects_from(scattered_object_layout(dense, 6, seed=5)),
            start=(0.6, 0.6),
            cruise_speed=0.5,
            flight_time_s=180.0,
        )
    )


_register_presets()
