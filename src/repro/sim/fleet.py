"""Fleet-vectorized mission stepping: N same-world missions per tick.

PR 2 vectorized *within* a control tick (one drone's Multi-ranger beams
per kernel call); this module vectorizes *across missions*. A fleet
block holds the state of N missions that share one world and one drone
configuration as structure-of-arrays ``(N,)`` numpy arrays -- positions,
velocities, estimator state, setpoints -- plus an ``(N, cells)`` visited
mask, and advances all of them in lock-step: one multi-origin raycast
(:meth:`~repro.geometry.raycast.RayCaster.cast_fleet`) resolves every
drone's beams per refresh, and the dynamics, sensor-noise and estimator
updates are single vectorized expressions per tick. Only the genuinely
per-mission, branchy pieces stay scalar: the policy state machines, the
sparse camera-frame/detection events, and collision resolution on the
rare blocked tick.

The contract is **bit-identity**: a fleet-stepped mission produces
exactly the :class:`~repro.sim.results.MissionRecord` the serial
:func:`~repro.sim.runner.fly_mission` produces, for every preset and
generated world (pinned by ``tests/test_sim_fleet.py``). Three
properties make that possible:

- *Per-sensor seed streams.* Each sensor owns a spawned
  ``SeedSequence`` child (see :class:`~repro.drone.crazyflie.Crazyflie`)
  whose position depends only on the tick / refresh count, so a
  mission's entire noise tape can be pre-drawn as one block per sensor
  and indexed by tick.
- *A shared time base.* Missions in a block share the control period,
  so the accumulated time sequence -- and with it the ToF-refresh,
  mocap and (per-mission) camera-frame schedules -- is computed once
  with the same float operations the serial loop performs.
- *Lane-deterministic numpy.* Elementwise numpy arithmetic evaluates
  the same IEEE operation per lane as the scalar expression it
  replaces, so matching the serial code operator-for-operator yields
  bit-identical floats (``np.cos``/``np.sin``/``np.fmod``/``np.clip``
  equal their ``math`` counterparts elementwise; ``np.exp`` and
  ``np.hypot`` do not, which is why the response constants and the
  distance accumulation stay scalar).

Missions that finish early (shorter ``flight_time_s``) are masked out:
their lanes get hover setpoints and stop contributing policy, coverage
or detection work; their records are snapshotted at their own final
tick.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, cast

import numpy as np

from repro.drone.controller import VelocityController
from repro.drone.crazyflie import CrazyflieConfig
from repro.drone.dynamics import CRAZYFLIE_RADIUS_M, DroneDynamics, DroneState
from repro.drone.state_estimator import EstimatedState
from repro.errors import MissionError
from repro.geometry.vec import TWO_PI, Vec2, normalize_angle
from repro.mapping.coverage import CoverageSeries
from repro.mapping.mocap import MOCAP_RATE_HZ
from repro.mapping.occupancy import OccupancyGrid
from repro.mission.closed_loop import DetectionEvent, SearchResult
from repro.mission.detector_model import CalibratedDetectorModel
from repro.mission.explorer import ExplorationResult
from repro.policies import ExplorationPolicy, PolicyConfig, make_policy
from repro.seeding import spawn_streams
from repro.sensors.camera import HimaxCamera
from repro.sensors.flowdeck import FlowDeck
from repro.sensors.imu import Gyro
from repro.sensors.multiranger import BEAM_ANGLES, RangerReading
from repro.sensors.tof import VL53L1X_MAX_RANGE_M, VL53L1X_RATE_HZ
from repro.sim.campaign import MissionSpec
from repro.sim.results import MissionRecord


def _normalize_angles(angles: np.ndarray) -> np.ndarray:
    """Vectorized :func:`~repro.geometry.vec.normalize_angle`.

    Same expression lane-for-lane (``np.fmod`` equals ``math.fmod``
    elementwise), so each entry is bit-identical to the scalar wrap.
    """
    wrapped = np.fmod(angles + math.pi, TWO_PI)
    wrapped[wrapped <= 0.0] += TWO_PI
    wrapped -= math.pi
    return wrapped


def fleet_key(spec: MissionSpec) -> tuple:
    """Grouping key: missions sharing it can ride one fleet block."""
    return (spec.scenario.content_hash(), spec.kind)


def fly_fleet(specs: Sequence[MissionSpec]) -> List[MissionRecord]:
    """Fly a block of same-world missions in lock-step.

    Args:
        specs: missions sharing one scenario (hence one world, start
            pose and drone configuration) and one kind. Policies,
            speeds, operating points, seeds and flight times may differ
            per mission.

    Returns:
        One :class:`~repro.sim.results.MissionRecord` per spec, in spec
        order, each bit-identical to ``fly_mission(spec)[0]``.

    Raises:
        MissionError: when the specs do not share a (world, kind), or a
            flight time is non-positive.
    """
    if not specs:
        return []
    kind = specs[0].kind
    key = fleet_key(specs[0])
    for spec in specs[1:]:
        if fleet_key(spec) != key:
            raise MissionError(
                "a fleet block must share one (world, kind); got "
                f"{fleet_key(spec)} vs {key}"
            )
    for spec in specs:
        if spec.flight_time_s <= 0.0:
            raise MissionError("flight time must be positive")

    scenario = specs[0].scenario
    room = scenario.build_room()
    caster = room.raycaster
    config = scenario.drone_config() or CrazyflieConfig()
    noisy = config.noisy
    start = scenario.start_position()
    if start is None:
        start = Vec2(1.0, 1.0)
    heading0 = scenario.start_heading if kind == "explore" else 0.0
    # Same validation (and same exception) as the serial drone assembly.
    DroneDynamics(
        room=room,
        state=DroneState(position=start, heading=heading0),
        velocity_tau=config.velocity_tau,
        yaw_tau=config.yaw_tau,
    )

    n = len(specs)
    dt = 1.0 / config.control_rate_hz
    n_steps = [int(round(spec.flight_time_s / dt)) for spec in specs]
    n_max = max(n_steps)

    # -- shared schedules ---------------------------------------------------
    # One pass computes the exact float time sequence of the serial loop
    # (t accumulates by repeated addition) and, from it, the ToF-refresh
    # and mocap gates every lane shares.
    tof_period = 1.0 / VL53L1X_RATE_HZ
    mocap_period = 1.0 / MOCAP_RATE_HZ
    times_pre: List[float] = []
    times_post: List[float] = []
    refresh: List[bool] = []
    mocap_dt: List[float] = []  # sample dt per tick; -1.0 = no sample
    t = 0.0
    last_tof = -math.inf
    have_reading = False
    last_mocap: Optional[float] = None
    for _ in range(n_max):
        times_pre.append(t)
        if not have_reading or t - last_tof >= tof_period - 1e-9:
            refresh.append(True)
            last_tof = t
            have_reading = True
        else:
            refresh.append(False)
        t = t + dt
        times_post.append(t)
        if last_mocap is not None and t - last_mocap < mocap_period - 1e-9:
            mocap_dt.append(-1.0)
        else:
            mocap_dt.append(mocap_period if last_mocap is not None else 0.0)
            last_mocap = t
    r_total = sum(refresh)

    # -- per-mission setup --------------------------------------------------
    policies: List[ExplorationPolicy] = []
    readings: List[Optional[RangerReading]] = [None] * n
    det_rngs: List[np.random.Generator] = []
    channels: List[CalibratedDetectorModel] = []
    frame_periods: List[float] = []
    objects = scenario.build_objects() if kind == "search" else []
    camera = HimaxCamera(batched=config.batched_sensors)
    scale = np.ones(n, dtype=np.float64)
    bias = np.zeros(n, dtype=np.float64)
    flow_z = np.empty((n, n_max, 3), dtype=np.float64) if noisy else None
    gyro_z = np.empty((n, n_max), dtype=np.float64) if noisy else None
    drop_u = np.empty((n, r_total, 4), dtype=np.float64) if noisy else None
    tof_z = np.empty((n, r_total, 4), dtype=np.float64) if noisy else None
    for j, spec in enumerate(specs):
        seed = spec.seed_sequence()
        if kind == "explore":
            drone_stream, policy_stream = spawn_streams(seed, 2)
        else:
            drone_stream, policy_stream, detector_stream = spawn_streams(seed, 3)
            det_rngs.append(np.random.default_rng(detector_stream))
            op = spec.operating_point()
            channel = CalibratedDetectorModel(op)
            channel.reset()
            channels.append(channel)
            frame_periods.append(1.0 / op.fps)
        policy = make_policy(spec.policy, PolicyConfig(cruise_speed=spec.speed))
        policy.reset(policy_stream)
        policies.append(policy)
        if noisy:
            assert flow_z is not None and gyro_z is not None
            assert drop_u is not None and tof_z is not None
            # Same spawn order as Crazyflie.__init__, and the same init
            # draws: constructing the deck objects on the live generator
            # consumes the calibration draws (flow scale, gyro bias)
            # exactly as the serial drone does, then the remaining tape
            # is pulled as one block per stream.
            flow_stream, gyro_stream, drop_stream, noise_stream = spawn_streams(
                drone_stream, 4
            )
            flow_gen = np.random.default_rng(flow_stream)
            scale[j] = FlowDeck(
                velocity_noise_std=config.odometry_noise_std, rng=flow_gen
            ).scale
            flow_z[j] = flow_gen.standard_normal(3 * n_max).reshape(n_max, 3)
            gyro_gen = np.random.default_rng(gyro_stream)
            bias[j] = Gyro(noise_std=config.gyro_noise_std, rng=gyro_gen).bias
            gyro_z[j] = gyro_gen.standard_normal(n_max)
            drop_u[j] = np.random.default_rng(drop_stream).random((r_total, 4))
            tof_z[j] = np.random.default_rng(noise_stream).standard_normal(
                (r_total, 4)
            )

    # -- shared world / occupancy setup ------------------------------------
    grid0 = OccupancyGrid(room, start=start)
    ncells = grid0.n_cells
    reach_cells = grid0.reachable_cells
    gnx, gny = grid0.nx, grid0.ny
    cell = grid0.cell_size
    reach_flat = grid0.reachable_mask.ravel().astype(np.int64)
    width, length = room.width, room.length

    mounts = np.array(
        [normalize_angle(a) for a in BEAM_ANGLES.values()], dtype=np.float64
    )
    max_range = VL53L1X_MAX_RANGE_M
    tof_noise_std = config.tof_noise_std
    tof_dropout = config.tof_dropout_prob
    vel_noise_std = config.odometry_noise_std
    gyro_noise_std = config.gyro_noise_std
    controller = VelocityController()
    vmax = controller.max_speed
    wmax = controller.max_yaw_rate
    alpha_v = 1.0 - math.exp(-dt / config.velocity_tau)
    alpha_w = 1.0 - math.exp(-dt / config.yaw_tau)
    margin = CRAZYFLIE_RADIUS_M

    # -- structure-of-arrays state ------------------------------------------
    x = np.full(n, start.x, dtype=np.float64)
    y = np.full(n, start.y, dtype=np.float64)
    h = np.full(n, heading0, dtype=np.float64)
    vx = np.zeros(n, dtype=np.float64)
    vy = np.zeros(n, dtype=np.float64)
    wz = np.zeros(n, dtype=np.float64)
    est_x = np.full(n, start.x, dtype=np.float64)
    est_y = np.full(n, start.y, dtype=np.float64)
    est_h = np.full(n, heading0, dtype=np.float64)
    est_vx = np.zeros(n, dtype=np.float64)
    est_vy = np.zeros(n, dtype=np.float64)
    est_wz = np.zeros(n, dtype=np.float64)
    sp_f = np.zeros(n, dtype=np.float64)
    sp_s = np.zeros(n, dtype=np.float64)
    sp_w = np.zeros(n, dtype=np.float64)
    visited = np.zeros((n, ncells), dtype=bool)
    vcount = np.zeros(n, dtype=np.int64)
    vreach = np.zeros(n, dtype=np.int64)
    cov_hist = np.zeros((n, n_max), dtype=np.float64)
    collisions = [0] * n
    distance = [0.0] * n
    frames = [0] * n
    first_det: List[Dict[str, DetectionEvent]] = [dict() for _ in range(n)]
    records: List[Optional[MissionRecord]] = [None] * n

    active = list(range(n))
    act = np.arange(n, dtype=np.intp)
    r = 0  # refresh row index, shared by every lane

    def _snapshot(i: int) -> MissionRecord:
        spec = specs[i]
        n_i = n_steps[i]
        sampled = [kk for kk in range(n_i) if mocap_dt[kk] >= 0.0]
        series = CoverageSeries.from_arrays(
            np.array([times_post[kk] for kk in sampled], dtype=np.float64),
            cov_hist[i, sampled],
        )
        coverage = int(vreach[i]) / reach_cells
        coverage_raw = int(vcount[i]) / ncells
        if kind == "explore":
            explo = ExplorationResult(
                coverage=coverage,
                # The grid itself is never consumed by the record
                # mapping; the fleet keeps only the counters.
                grid=cast(OccupancyGrid, None),
                series=series,
                collisions=collisions[i],
                flight_time_s=spec.flight_time_s,
                distance_flown_m=distance[i],
                samples=None,
                coverage_raw=coverage_raw,
                reachable_cells=reach_cells,
                grid_cells=ncells,
            )
            return MissionRecord.from_exploration(spec, explo)
        events = sorted(first_det[i].values(), key=lambda e: e.time_s)
        search = SearchResult(
            detection_rate=len(events) / len(objects),
            events=events,
            coverage=coverage,
            series=series,
            frames_processed=frames[i],
            collisions=collisions[i],
            distance_flown_m=distance[i],
            samples=None,
            coverage_raw=coverage_raw,
            reachable_cells=reach_cells,
            grid_cells=ncells,
        )
        return MissionRecord.from_search(spec, search)

    for k in range(n_max):
        # -- Multi-ranger refresh (shared 20 Hz schedule) -------------------
        if refresh[k]:
            beams = _normalize_angles(h[act][:, None] + mounts[None, :])
            dirx = np.cos(beams)
            diry = np.sin(beams)
            hits = caster.cast_fleet(
                np.repeat(x[act], 4),
                np.repeat(y[act], 4),
                dirx.ravel(),
                diry.ravel(),
                max_range,
            ).reshape(len(active), 4)
            true_d = np.minimum(hits, max_range)
            if noisy:
                assert drop_u is not None and tof_z is not None
                vals = np.where(
                    drop_u[act, r, :] < tof_dropout,
                    max_range,
                    np.clip(
                        true_d + tof_noise_std * tof_z[act, r, :],
                        0.0,
                        max_range,
                    ),
                )
            else:
                vals = true_d
            for j, i in enumerate(active):
                front, left, back, right = vals[j].tolist()
                readings[i] = RangerReading(
                    front=front, back=back, left=left, right=right, up=max_range
                )
            r += 1

        # -- policy evaluation (scalar state machines) ----------------------
        est_t = times_pre[k]
        for i in active:
            estimate = EstimatedState(
                position=Vec2(est_x[i], est_y[i]),
                heading=est_h[i],
                vx_body=est_vx[i],
                vy_body=est_vy[i],
                yaw_rate=est_wz[i],
                time=est_t,
            )
            reading = readings[i]
            assert reading is not None
            setpoint = policies[i].update(reading, estimate)
            f_ = setpoint.forward
            s_ = setpoint.side
            w_ = setpoint.yaw_rate
            if not (
                -vmax <= f_ <= vmax
                and -vmax <= s_ <= vmax
                and -wmax <= w_ <= wmax
            ):
                f_ = max(-vmax, min(vmax, f_))
                s_ = max(-vmax, min(vmax, s_))
                w_ = max(-wmax, min(wmax, w_))
            sp_f[i] = f_
            sp_s[i] = s_
            sp_w[i] = w_

        # -- dynamics (vectorized; scalar only on blocked lanes) ------------
        vx_n = vx + alpha_v * (sp_f - vx)
        vy_n = vy + alpha_v * (sp_s - vy)
        wz_n = wz + alpha_w * (sp_w - wz)
        h_n = _normalize_angles(h + wz_n * dt)
        ch = np.cos(h_n)
        sh = np.sin(h_n)
        dx_a = (ch * vx_n - sh * vy_n) * dt
        dy_a = (sh * vx_n + ch * vy_n) * dt
        tx = x + dx_a
        ty = y + dy_a
        free = room.is_free_many(tx, ty, margin)
        x_n = np.where(free, tx, x)
        y_n = np.where(free, ty, y)
        if not free.all():
            for i in np.flatnonzero(~free).tolist():
                if n_steps[i] <= k:
                    # Masked-out lane drifting after its mission ended:
                    # park it; its record is already snapshotted.
                    vx_n[i] = 0.0
                    vy_n[i] = 0.0
                    continue
                sx = float(x[i])
                sy = float(y[i])
                new_pos = Vec2(sx + float(dx_a[i]), sy)
                if not room.is_free(new_pos, margin):
                    new_pos = Vec2(sx, sy + float(dy_a[i]))
                    if not room.is_free(new_pos, margin):
                        new_pos = Vec2(sx, sy)
                collisions[i] += 1
                actual_x = (new_pos.x - sx) / dt
                actual_y = (new_pos.y - sy) / dt
                c_ = float(ch[i])
                s_c = float(sh[i])
                vx_n[i] = c_ * actual_x + s_c * actual_y
                vy_n[i] = -s_c * actual_x + c_ * actual_y
                x_n[i] = new_pos.x
                y_n[i] = new_pos.y

        # -- estimator (vectorized flow/gyro fusion) ------------------------
        if noisy:
            assert flow_z is not None and gyro_z is not None
            meas_vx = scale * vx_n + vel_noise_std * flow_z[:, k, 0]
            meas_vy = scale * vy_n + vel_noise_std * flow_z[:, k, 1]
            gyro_meas = wz_n + bias + gyro_noise_std * gyro_z[:, k]
        else:
            meas_vx = vx_n
            meas_vy = vy_n
            gyro_meas = wz_n
        est_h = _normalize_angles(est_h + gyro_meas * dt)
        ech = np.cos(est_h)
        esh = np.sin(est_h)
        est_x = est_x + (ech * meas_vx - esh * meas_vy) * dt
        est_y = est_y + (esh * meas_vx + ech * meas_vy) * dt
        est_vx = meas_vx
        est_vy = meas_vy
        est_wz = gyro_meas

        # -- mocap / occupancy (vectorized scatter) -------------------------
        if mocap_dt[k] >= 0.0:
            px = x_n[act]
            py = y_n[act]
            in_room = (px >= 0.0) & (px <= width) & (py >= 0.0) & (py <= length)
            if in_room.any():
                rows = act[in_room]
                ix = np.clip((px[in_room] / cell).astype(np.int64), 0, gnx - 1)
                iy = np.clip((py[in_room] / cell).astype(np.int64), 0, gny - 1)
                idx = iy * gnx + ix
                fresh = ~visited[rows, idx]
                if fresh.any():
                    new_rows = rows[fresh]
                    new_idx = idx[fresh]
                    visited[new_rows, new_idx] = True
                    vcount[new_rows] += 1
                    vreach[new_rows] += reach_flat[new_idx]
            cov_hist[act, k] = vreach[act] / reach_cells

        # -- per-lane tail: distance, sparse camera frames ------------------
        t_post = times_post[k]
        for i in active:
            distance[i] += math.hypot(x_n[i] - x[i], y_n[i] - y[i])
            if kind == "search" and t_post + 1e-9 >= frames[i] * frame_periods[i]:
                frames[i] += 1
                pos = Vec2(x_n[i], y_n[i])
                state = DroneState(
                    position=pos,
                    heading=h_n[i],
                    vx_body=vx_n[i],
                    vy_body=vy_n[i],
                    yaw_rate=wz_n[i],
                    time=t_post,
                )
                observations = camera.observe(caster, pos, h_n[i], objects)
                for obs in channels[i].detect(observations, state, det_rngs[i]):
                    name = obs.obj.name
                    if name not in first_det[i]:
                        first_det[i][name] = DetectionEvent(
                            object_name=name,
                            object_class=obs.obj.object_class.value,
                            time_s=t_post,
                            distance_m=obs.distance_m,
                        )

        x, y, h = x_n, y_n, h_n
        vx, vy, wz = vx_n, vy_n, wz_n

        # -- early-finish masking -------------------------------------------
        done_now = [i for i in active if n_steps[i] == k + 1]
        if done_now:
            for i in done_now:
                records[i] = _snapshot(i)
                sp_f[i] = 0.0
                sp_s[i] = 0.0
                sp_w[i] = 0.0
            active = [i for i in active if n_steps[i] > k + 1]
            if not active:
                break
            act = np.array(active, dtype=np.intp)

    out = []
    for i, record in enumerate(records):
        assert record is not None, f"mission {i} never finished"
        out.append(record)
    return out
