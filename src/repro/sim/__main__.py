"""CLI entry: list scenarios and execute mission campaigns.

Usage:
    python -m repro.sim list
    python -m repro.sim show corridor-maze
    python -m repro.sim run --scenario paper-room --runs 2 --flight-time 30
    python -m repro.sim run --scenario paper-room apartment \\
        --policy pseudo-random spiral --speed 0.5 1.0 --width 1.0 \\
        --runs 3 --workers 0 --out results
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import SimError
from repro.experiments.reporting import ascii_table
from repro.sim.campaign import Campaign
from repro.sim.results import CampaignResult
from repro.sim.runner import run_campaign
from repro.sim.scenario import get_scenario, iter_scenarios


def _cmd_list(_args) -> int:
    rows = []
    for s in iter_scenarios():
        rows.append(
            [
                s.name,
                f"{s.room.width:g} x {s.room.length:g}",
                str(len(s.room.obstacles)),
                str(len(s.objects)),
                s.policy,
                f"{s.cruise_speed:g}",
                s.ssd_width,
                f"{s.flight_time_s:g}",
                s.description,
            ]
        )
    print(
        ascii_table(
            ["scenario", "room [m]", "#obst", "#obj", "policy", "speed", "ssd", "t [s]", "description"],
            rows,
            title="registered scenarios",
        )
    )
    return 0


def _cmd_show(args) -> int:
    s = get_scenario(args.scenario)
    print(f"{s.name}: {s.description}")
    print(f"  room: {s.room.width:g} x {s.room.length:g} m, {len(s.room.obstacles)} obstacles")
    for o in s.room.obstacles:
        print(f"    {o.kind:9s} {o.name or '-':18s} params={tuple(round(p, 2) for p in o.params)}")
    print(f"  objects ({len(s.objects)}):")
    for o in s.objects:
        print(f"    {o.name or o.object_class:18s} {o.object_class:8s} at ({o.x:.2f}, {o.y:.2f})")
    start = "platform default" if s.start is None else f"({s.start[0]:g}, {s.start[1]:g})"
    print(
        f"  defaults: policy={s.policy}, speed={s.cruise_speed:g} m/s, "
        f"ssd={s.ssd_width}, flight={s.flight_time_s:g} s, start={start}, "
        f"noisy={s.noisy}"
    )
    return 0


def _progress(done: int, total: int, record) -> None:
    line = (
        f"[{done}/{total}] {record.scenario}/{record.policy}"
        f"@{record.speed:g} run {record.run_idx}: "
        f"coverage {record.coverage:.0%}"
    )
    if record.kind == "search":
        line += f", detection {record.detection_rate:.0%}"
    print(line, flush=True)


def _summary(result: CampaignResult) -> str:
    value = "detection_rate" if result.campaign["kind"] == "search" else "coverage"
    agg = result.aggregate(("scenario", "policy", "speed", "ssd_width"), value=value)
    rows = [
        [scenario, policy, f"{speed:g}", width, f"{stat.mean:.0%}", f"{stat.std:.0%}", str(stat.n)]
        for (scenario, policy, speed, width), stat in sorted(agg.items())
    ]
    return ascii_table(
        ["scenario", "policy", "speed", "ssd", f"mean {value}", "std", "runs"],
        rows,
        title=f"campaign {result.name!r} ({len(result)} missions)",
    )


def _cmd_run(args) -> int:
    scenarios = tuple(get_scenario(name) for name in args.scenario)
    campaign = Campaign(
        name=args.name,
        scenarios=scenarios,
        policies=tuple(args.policy or ()),
        speeds=tuple(args.speed or ()),
        ssd_widths=tuple(args.width or ()),
        n_runs=args.runs,
        flight_time_s=args.flight_time,
        kind=args.kind,
        seed=args.seed,
    )
    total = len(campaign.missions())
    workers = args.workers
    mode = "serial" if (workers is None or workers == 1) else f"pool({workers or 'auto'})"
    print(
        f"campaign {campaign.name!r}: {total} missions, {mode}, "
        f"hash {campaign.campaign_hash()[:12]}",
        flush=True,
    )
    start = time.perf_counter()
    result = run_campaign(
        campaign, workers=workers, progress=None if args.quiet else _progress
    )
    elapsed = time.perf_counter() - start
    print()
    print(_summary(result))
    rate = len(result) / elapsed if elapsed > 0 else float("inf")
    print(f"\n{len(result)} missions in {elapsed:.1f} s ({rate:.2f} missions/s)")
    if args.out:
        path = result.save(args.out)
        print(f"results written to {path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.sim", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered scenarios").set_defaults(fn=_cmd_list)

    show = sub.add_parser("show", help="describe one scenario in detail")
    show.add_argument("scenario")
    show.set_defaults(fn=_cmd_show)

    run = sub.add_parser("run", help="execute a campaign")
    run.add_argument("--scenario", nargs="+", default=["paper-room"], help="scenario names to fly")
    run.add_argument("--policy", nargs="*", default=None, help="policies to sweep (default: scenario's)")
    run.add_argument("--speed", nargs="*", type=float, default=None, help="cruise speeds, m/s")
    run.add_argument("--width", nargs="*", default=None, help="SSD width keys, e.g. 1.0 0.75")
    run.add_argument("--runs", type=int, default=1, help="flights per configuration")
    run.add_argument("--flight-time", type=float, default=None, help="override flight time, s")
    run.add_argument("--kind", choices=("search", "explore"), default="search")
    run.add_argument("--seed", type=int, default=0, help="campaign root seed")
    run.add_argument("--workers", type=int, default=None, help="pool size; 0 = all cores; default serial")
    run.add_argument("--name", default="cli", help="campaign name used in the result file")
    run.add_argument("--out", default=None, help="directory for the JSON result (default: don't persist)")
    run.add_argument("--quiet", action="store_true", help="suppress per-mission progress lines")
    run.set_defaults(fn=_cmd_run)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except SimError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
