"""CLI entry: list scenarios/families and execute mission campaigns.

Usage:
    python -m repro.sim list
    python -m repro.sim show corridor-maze --map
    python -m repro.sim show perfect-maze --seed 3 --param cols=12 --param rows=8
    python -m repro.sim run --scenario paper-room --runs 2 --flight-time 30
    python -m repro.sim run --family perfect-maze --family-seed 1 2 3 \\
        --param cell_m=1.0 --runs 2 --workers 0 --out results
    python -m repro.sim run --record --progress --out results
    python -m repro.sim replay ab3f --verify
    python -m repro.sim replay results/campaign-cli-ab3f....json
    python -m repro.sim report results/campaign-cli-ab3f....json --out report.html
    python -m repro.sim run --retries 3 --timeout 120 --keep-going --workers 0
    python -m repro.sim run --broker queue.db --enqueue-only --runs 8
    python -m repro.sim run --broker queue.db --runs 8   # wait + collect
    python -m repro.sim cache stats
    python -m repro.sim cache evict --max-bytes 500M --max-age 30d

Campaign runs cache mission results under ``.repro-cache`` (override
with ``--cache-dir`` or ``$REPRO_CACHE_DIR``); re-running an identical
campaign loads every mission from the cache instead of re-flying it.
``--no-cache`` opts out. ``--record`` additionally stores a per-tick
flight trace beside each cache entry; ``replay`` reconstructs recorded
missions from those artifacts (``--verify`` re-flies and asserts
bit-identity) and ``report`` renders a campaign result into HTML.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import ExecError, ObsError, SimError
from repro.exec import (
    Broker,
    ResultCache,
    RetryPolicy,
    default_cache_dir,
    open_cache,
)
from repro.exec.cache import parse_age, parse_size
from repro.obs import ProgressLine, TraceStore
from repro.experiments.reporting import ascii_table
from repro.sim.campaign import Campaign
from repro.sim.generators import (
    GeneratedSpec,
    ascii_layout,
    family_names,
    get_family,
    iter_families,
)
from repro.sim.results import CampaignResult
from repro.sim.runner import enqueue_campaign, run_campaign
from repro.sim.scenario import get_scenario, iter_scenarios


def _cmd_list(_args) -> int:
    rows = []
    for s in iter_scenarios():
        rows.append(
            [
                s.name,
                f"{s.room.width:g} x {s.room.length:g}",
                str(len(s.room.obstacles)),
                str(len(s.objects)),
                s.policy,
                f"{s.cruise_speed:g}",
                s.ssd_width,
                f"{s.flight_time_s:g}",
                s.description,
            ]
        )
    print(
        ascii_table(
            ["scenario", "room [m]", "#obst", "#obj", "policy", "speed", "ssd", "t [s]", "description"],
            rows,
            title="registered scenarios",
        )
    )
    fam_rows = [
        [
            f.name,
            str(len(f.params)),
            ", ".join(p.name for p in f.params),
            f.description,
        ]
        for f in iter_families()
    ]
    print()
    print(
        ascii_table(
            ["family", "#par", "parameters", "description"],
            fam_rows,
            title="registered scenario families (procedural; see `show <family>`)",
        )
    )
    return 0


def _parse_params(pairs) -> dict:
    params = {}
    for pair in pairs or ():
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SimError(f"--param expects key=value, got {pair!r}")
        try:
            params[key] = float(value)
        except ValueError:
            raise SimError(f"--param {key}: {value!r} is not a number") from None
    return params


def _show_scenario(s, with_map: bool, room=None) -> None:
    print(f"{s.name}: {s.description}")
    print(f"  room: {s.room.width:g} x {s.room.length:g} m, {len(s.room.obstacles)} obstacles")
    shown = s.room.obstacles[:12]
    for o in shown:
        print(f"    {o.kind:9s} {o.name or '-':18s} params={tuple(round(p, 2) for p in o.params)}")
    if len(s.room.obstacles) > len(shown):
        print(f"    ... and {len(s.room.obstacles) - len(shown)} more")
    print(f"  objects ({len(s.objects)}):")
    for o in s.objects:
        print(f"    {o.name or o.object_class:18s} {o.object_class:8s} at ({o.x:.2f}, {o.y:.2f})")
    start = "platform default" if s.start is None else f"({s.start[0]:.2f}, {s.start[1]:.2f})"
    print(
        f"  defaults: policy={s.policy}, speed={s.cruise_speed:g} m/s, "
        f"ssd={s.ssd_width}, flight={s.flight_time_s:g} s, start={start}, "
        f"noisy={s.noisy}"
    )
    if with_map:
        print()
        print(ascii_layout(s, room=room))


def _cmd_show(args) -> int:
    name = args.scenario
    if name in family_names():
        family = get_family(name)
        print(f"{family.name} (scenario family): {family.description}")
        print(
            ascii_table(
                ["param", "default", "range", "description"],
                [
                    [
                        p.name,
                        f"{p.default:g}",
                        f"[{p.low:g}, {p.high:g}]" + (" int" if p.integer else ""),
                        p.doc,
                    ]
                    for p in family.params
                ],
                title="parameters",
            )
        )
        scenario = family.generate(_parse_params(args.param), seed=args.seed)
        room = scenario.build_room()
        segments = len(room.all_segments())
        print(f"\ninstance (seed {args.seed}): {scenario.name}, {segments} segments")
        _show_scenario(scenario, with_map=not args.no_map, room=room)
        return 0
    _show_scenario(get_scenario(name), with_map=args.map)
    return 0


def _progress(done: int, total: int, record) -> None:
    line = (
        f"[{done}/{total}] {record.scenario}/{record.policy}"
        f"@{record.speed:g} run {record.run_idx}: "
        f"coverage {record.coverage:.0%}"
    )
    if record.kind == "search":
        line += f", detection {record.detection_rate:.0%}"
    print(line, flush=True)


def _summary(result: CampaignResult) -> str:
    value = "detection_rate" if result.campaign["kind"] == "search" else "coverage"
    agg = result.aggregate(("scenario", "policy", "speed", "ssd_width"), value=value)
    rows = [
        [scenario, policy, f"{speed:g}", width, f"{stat.mean:.0%}", f"{stat.std:.0%}", str(stat.n)]
        for (scenario, policy, speed, width), stat in sorted(agg.items())
    ]
    return ascii_table(
        ["scenario", "policy", "speed", "ssd", f"mean {value}", "std", "runs"],
        rows,
        title=f"campaign {result.name!r} ({len(result)} missions)",
    )


def _cmd_cache(args) -> int:
    cache = ResultCache(args.cache_dir or default_cache_dir())
    store = TraceStore(cache.directory)
    if args.action == "clear":
        removed = cache.clear()
        traces = store.clear()
        print(
            f"removed {removed} cached results and {traces} flight traces "
            f"from {cache.directory}"
        )
        return 0
    if args.action == "evict":
        if args.max_bytes is None and args.max_age is None:
            raise SimError("cache evict needs --max-bytes and/or --max-age")
        report = cache.evict(
            max_bytes=None if args.max_bytes is None else parse_size(args.max_bytes),
            max_age_s=None if args.max_age is None else parse_age(args.max_age),
        )
        print(
            f"evicted {report.removed_entries} entries "
            f"(+{report.removed_traces} paired traces, "
            f"{report.removed_junk} junk files), freed "
            f"{report.freed_bytes / 1e6:.2f} MB; "
            f"{report.remaining_bytes / 1e6:.2f} MB remain in {cache.directory}"
        )
        return 0
    stats = cache.stats()
    print(
        f"cache {cache.directory}: {stats.entries} results, "
        f"{stats.total_bytes / 1e6:.2f} MB"
    )
    if stats.orphans or stats.quarantined:
        print(
            f"  junk: {stats.orphans} orphaned temp files, "
            f"{stats.quarantined} quarantined corrupt entries "
            f"(remove with `cache evict` or `cache clear`)"
        )
    if stats.by_version:
        print(
            ascii_table(
                ["job version", "entries", "MB"],
                [
                    [version, str(count), f"{nbytes / 1e6:.2f}"]
                    for version, count, nbytes in stats.by_version
                ],
                title="entries by job version",
            )
        )
    tstats = store.stats()
    print(
        f"traces: {tstats.traces} recorded flights, "
        f"{tstats.total_bytes / 1e6:.2f} MB"
    )
    return 0


def _cmd_replay(args) -> int:
    from repro.obs.replay import replay_mission, replay_target_hashes

    cache_dir = args.cache_dir or default_cache_dir()
    hashes = replay_target_hashes(args.target, cache_dir)
    verified = 0
    for content_hash in hashes:
        outcome = replay_mission(content_hash, cache_dir, verify=args.verify)
        print(outcome.summary(), flush=True)
        if outcome.verified:
            verified += 1
    if args.verify:
        print(f"{verified}/{len(hashes)} missions re-flown bit-identical")
    else:
        print(f"{len(hashes)} recorded missions consistent with the cache")
    return 0


def _cmd_report(args) -> int:
    from repro.obs.report import write_report
    from repro.sim.results import CampaignResult as _CR

    result = _CR.load(args.result)
    cache_dir = args.cache_dir or default_cache_dir()
    path = write_report(result, args.out, cache_dir=cache_dir)
    print(f"report written to {path} ({len(result)} missions)")
    return 0


def _cmd_run(args) -> int:
    scenarios = tuple(get_scenario(name) for name in args.scenario or ())
    params = _parse_params(args.param)
    generated = tuple(
        GeneratedSpec.create(family, params, seed)
        for family in args.family or ()
        for seed in args.family_seed
    )
    # Default to the paper room only when neither axis was *requested*;
    # an explicitly emptied axis (e.g. `--family x --family-seed` with
    # zero values) must surface the campaign error, not silently fly a
    # different world.
    if not args.scenario and not args.family:
        scenarios = (get_scenario("paper-room"),)
    campaign = Campaign(
        name=args.name,
        scenarios=scenarios,
        policies=tuple(args.policy or ()),
        speeds=tuple(args.speed or ()),
        ssd_widths=tuple(args.width or ()),
        n_runs=args.runs,
        flight_time_s=args.flight_time,
        kind=args.kind,
        seed=args.seed,
        generated=generated,
    )
    total = len(campaign.missions())
    workers = args.workers
    cache = open_cache(args.cache_dir, enabled=not args.no_cache)
    fleet_block = args.fleet_block
    if args.broker:
        mode = f"broker({args.broker})"
    elif fleet_block is not None and fleet_block > 1 and not args.record:
        mode = f"fleet(block={fleet_block})"
    elif workers is None or workers == 1:
        mode = "serial"
    else:
        mode = f"pool({workers or 'auto'})"
    print(
        f"campaign {campaign.name!r}: {total} missions, {mode}, "
        f"hash {campaign.campaign_hash()[:12]}",
        flush=True,
    )
    if args.enqueue_only:
        if not args.broker:
            raise SimError("--enqueue-only needs --broker")
        retry = RetryPolicy(
            max_attempts=args.retries,
            backoff_s=args.retry_backoff,
            timeout_s=args.timeout,
        )
        with Broker(args.broker) as broker:
            report = enqueue_campaign(
                campaign, broker, record=args.record, retry=retry,
                trace_dir=cache.directory if (args.record and cache) else None,
            )
            counts = broker.counts()
        print(
            f"enqueued {report.submitted} missions "
            f"({report.duplicates} already queued, {report.already_done} "
            f"already done); queue: {counts.pending} pending, "
            f"{counts.leased} leased, {counts.done} done, "
            f"{counts.failed} failed"
        )
        print(
            f"drain with: python -m repro.exec worker --broker {args.broker}"
        )
        return 0
    progress_line = (
        ProgressLine(f"campaign {campaign.name!r}") if args.progress else None
    )
    retry = RetryPolicy(
        max_attempts=args.retries,
        backoff_s=args.retry_backoff,
        timeout_s=args.timeout,
    )
    start = time.perf_counter()
    broker = Broker(args.broker) if args.broker else None
    try:
        result = run_campaign(
            campaign,
            workers=workers,
            progress=None if (args.quiet or args.progress) else _progress,
            cache=None if broker is not None else cache,
            record=args.record,
            trace_dir=cache.directory if (args.record and cache) else None,
            exec_progress=progress_line,
            retry=retry,
            keep_going=args.keep_going,
            broker=broker,
            poll_s=args.poll,
            wait_timeout_s=args.wait_timeout,
            fleet_block=fleet_block,
        )
    finally:
        if broker is not None:
            broker.close()
        if progress_line is not None:
            progress_line.finish()
    elapsed = time.perf_counter() - start
    print()
    if result.records:
        print(_summary(result))
    rate = len(result) / elapsed if elapsed > 0 else float("inf")
    print(f"\n{len(result)} missions in {elapsed:.1f} s ({rate:.2f} missions/s)")
    if cache is not None and result.execution is not None:
        report = result.execution
        note = " -- all missions loaded from cache" if report.executed == 0 else ""
        print(
            f"cache: {report.cached}/{report.total} hits, "
            f"{report.executed} executed ({cache.directory}){note}"
        )
        timings = report.timings_summary()
        if timings:
            print(timings)
    if result.execution is not None and (
        result.execution.retried or result.execution.timed_out
    ):
        print(
            f"fault tolerance: {result.execution.retried} retries, "
            f"{result.execution.timed_out} timeouts"
        )
    for failure in result.failures:
        print(
            f"FAILED mission {failure['index']} ({failure['label']}): "
            f"{failure['error_type']}: {failure['message']} "
            f"[{failure['attempts']} attempt(s)]"
        )
    if args.record:
        trace_dir = cache.directory if cache is not None else default_cache_dir()
        tstats = TraceStore(trace_dir).stats()
        print(
            f"traces: {tstats.traces} recorded flights in {trace_dir} "
            f"({tstats.total_bytes / 1e6:.2f} MB)"
        )
    if args.out:
        path = result.save(args.out)
        print(f"results written to {path}")
    return 1 if result.failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.sim", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "list", help="list registered scenarios and families"
    ).set_defaults(fn=_cmd_list)

    show = sub.add_parser("show", help="describe one scenario or family in detail")
    show.add_argument("scenario", help="preset name or family name")
    show.add_argument("--map", action="store_true", help="ASCII floor plan (presets)")
    show.add_argument(
        "--no-map", action="store_true", help="skip the ASCII floor plan (families)"
    )
    show.add_argument("--seed", type=int, default=0, help="family instance seed")
    show.add_argument(
        "--param", action="append", default=None, metavar="KEY=VALUE",
        help="family parameter override (repeatable)",
    )
    show.set_defaults(fn=_cmd_show)

    run = sub.add_parser("run", help="execute a campaign")
    run.add_argument(
        "--scenario", nargs="*", default=None,
        help="scenario presets to fly (default: paper-room unless --family is given)",
    )
    run.add_argument(
        "--family", nargs="*", default=None,
        help="scenario families to generate worlds from",
    )
    run.add_argument(
        "--family-seed", nargs="*", type=int, default=[0],
        help="generator seeds; each (family, seed) pair becomes one world",
    )
    run.add_argument(
        "--param", action="append", default=None, metavar="KEY=VALUE",
        help="family parameter override applied to every --family (repeatable)",
    )
    run.add_argument("--policy", nargs="*", default=None, help="policies to sweep (default: scenario's)")
    run.add_argument("--speed", nargs="*", type=float, default=None, help="cruise speeds, m/s")
    run.add_argument("--width", nargs="*", default=None, help="SSD width keys, e.g. 1.0 0.75")
    run.add_argument("--runs", type=int, default=1, help="flights per configuration")
    run.add_argument("--flight-time", type=float, default=None, help="override flight time, s")
    run.add_argument("--kind", choices=("search", "explore"), default="search")
    run.add_argument("--seed", type=int, default=0, help="campaign root seed")
    run.add_argument("--workers", type=int, default=None, help="pool size; 0 = all cores; default serial")
    run.add_argument(
        "--fleet-block", type=int, default=None, metavar="N",
        help="step same-world missions in vectorized lock-step blocks of "
        "up to N (results byte-identical to serial; ignored with "
        "--broker/--record)",
    )
    run.add_argument("--name", default="cli", help="campaign name used in the result file")
    run.add_argument("--out", default=None, help="directory for the JSON result (default: don't persist)")
    run.add_argument("--quiet", action="store_true", help="suppress per-mission progress lines")
    run.add_argument(
        "--progress", action="store_true",
        help="live single-line progress (done/total, hits vs executed, ETA) "
        "instead of per-mission lines",
    )
    run.add_argument(
        "--record", action="store_true",
        help="store a per-tick flight trace beside each mission's cache "
        "entry (re-flies cached missions whose trace is missing)",
    )
    run.add_argument(
        "--cache-dir", default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    run.add_argument(
        "--no-cache", action="store_true",
        help="always re-fly missions; neither read nor write the result cache",
    )
    run.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="attempts per mission (1 = no retries); only transient "
        "failures (crashed workers, timeouts, flaky I/O) are retried",
    )
    run.add_argument(
        "--retry-backoff", type=float, default=0.0, metavar="S",
        help="base backoff between attempts, doubling each retry (deterministic)",
    )
    run.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-attempt wall-clock budget per mission; an overrunning "
        "pooled mission's worker is killed and the attempt retried",
    )
    run.add_argument(
        "--keep-going", action="store_true",
        help="a mission that exhausts its attempts is reported as failed "
        "in the result instead of aborting the campaign",
    )
    run.add_argument(
        "--broker", default=None, metavar="PATH",
        help="shard the campaign through a queue database instead of "
        "executing in-process: missions are enqueued (idempotently) and "
        "`python -m repro.exec worker` daemons drain them; results are "
        "byte-identical to a serial run",
    )
    run.add_argument(
        "--enqueue-only", action="store_true",
        help="with --broker: submit the missions and exit without "
        "waiting (re-run without this flag to wait and collect)",
    )
    run.add_argument(
        "--poll", type=float, default=0.2, metavar="S",
        help="with --broker: seconds between outcome polls",
    )
    run.add_argument(
        "--wait-timeout", type=float, default=None, metavar="S",
        help="with --broker: give up after this long without the queue "
        "draining (default: wait forever)",
    )
    run.set_defaults(fn=_cmd_run)

    replay = sub.add_parser(
        "replay",
        help="reconstruct recorded missions from their trace artifacts",
    )
    replay.add_argument(
        "target",
        help="job content hash (prefix ok) or path to a saved campaign "
        "result file (replays every mission of the campaign)",
    )
    replay.add_argument(
        "--verify", action="store_true",
        help="re-fly each mission and assert bit-identity with the stored "
        "trace and record",
    )
    replay.add_argument(
        "--cache-dir", default=None,
        help="cache/trace directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    replay.set_defaults(fn=_cmd_replay)

    report = sub.add_parser(
        "report", help="render a saved campaign result into an HTML report"
    )
    report.add_argument("result", help="path to a saved campaign result JSON")
    report.add_argument(
        "--out", default="campaign-report.html", help="output HTML path"
    )
    report.add_argument(
        "--cache-dir", default=None,
        help="cache/trace directory the trace-backed panels load from",
    )
    report.set_defaults(fn=_cmd_report)

    cache = sub.add_parser(
        "cache", help="inspect, clear or evict from the result cache"
    )
    cache.add_argument("action", choices=("stats", "clear", "evict"))
    cache.add_argument(
        "--cache-dir", default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    cache.add_argument(
        "--max-bytes", default=None, metavar="SIZE",
        help="evict: byte budget for entries + paired traces, oldest-used "
        "evicted first (accepts k/M/G suffixes, e.g. 500M)",
    )
    cache.add_argument(
        "--max-age", default=None, metavar="AGE",
        help="evict: drop entries last used longer ago than this "
        "(accepts s/m/h/d suffixes, e.g. 30d)",
    )
    cache.set_defaults(fn=_cmd_cache)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (ExecError, ObsError, SimError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
