"""Parametric scenario families: procedural worlds from a seed.

A :class:`ScenarioFamily` is a *generator* of scenarios: a name, a
parameter schema (defaults + bounds) and a builder that turns
``(params, seed)`` into a fully valid :class:`~repro.sim.scenario.Scenario`.
Families are registered next to the fixed presets -- sharing one
namespace through :mod:`repro.sim.registry` so the two kinds can never
shadow each other -- and campaigns sweep ``family x params x seed``
through :class:`GeneratedSpec` references exactly like they sweep preset
names today.

Every generator is deterministic: the same ``(family, params, seed)``
triple produces a bit-identical scenario (same
:meth:`~repro.sim.scenario.Scenario.content_hash`) in any process, so
generated missions stay reproducible across the multiprocessing runner.
And every generator *guarantees* a flyable world before returning it:
the free space is rasterized, flood-filled from the start pose, and the
scenario is rejected unless the start is clear, the free space is
connected, and every target object sits on a reachable cell (objects are
in fact *placed* on reachable cells, so validity holds by construction).

Four families ship by default:

- ``random-apartment`` -- BSP room partitioning with doorways cut into
  every split wall (junction-aware, so no door is walled shut) plus
  furniture boxes,
- ``perfect-maze`` -- recursive-backtracker corridors at a configurable
  cell pitch; the spanning-tree carving makes every cell reachable,
- ``cluttered-warehouse`` -- aisle/shelf-row grids with density and
  aisle-width knobs; a perimeter aisle keeps every aisle connected,
- ``scatter-field`` -- Poisson-disk cylinder/box clutter with a minimum
  boundary gap wide enough to fly through.

Mazes and warehouses routinely exceed 1000 boundary segments, which is
what the grid-bucketed ``Room.is_free``/``clearance`` point queries (see
:mod:`repro.world.room`) were built for.

Example:
    >>> from repro.sim import generate_scenario
    >>> a = generate_scenario("perfect-maze", {"cols": 6, "rows": 5, "cell_m": 1.0}, seed=3)
    >>> b = generate_scenario("perfect-maze", {"cols": 6, "rows": 5, "cell_m": 1.0}, seed=3)
    >>> a.content_hash() == b.content_hash()
    True
    >>> a.build_room().width
    6.0
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import SimError
from repro.geometry.shapes import AABB, Circle
from repro.geometry.vec import Vec2
from repro.sim.registry import Registry
from repro.sim.scenario import ObjectSpec, ObstacleSpec, RoomSpec, Scenario

# Historical home of the free-space raster + flood fill; both moved
# verbatim to repro.world.freespace (PR 4) so the coverage metrics can
# normalize by reachable area without importing the generators. The
# re-exports keep every existing import path working.
from repro.world.freespace import (  # noqa: F401  (re-exported)
    VALIDATION_MARGIN_M,
    flood_fill,
    free_space_mask,
)
from repro.world.layouts import door_wall_obstacles
from repro.world.objects import ObjectClass
from repro.world.room import Obstacle, Room

#: Wall thickness used by the maze and BSP generators, metres.
GENERATOR_WALL_THICKNESS_M = 0.1

#: Minimum centre spacing between placed target objects, metres.
_OBJECT_SPACING_M = 0.8

#: Objects placed when a family schema omits the ``n_objects`` param.
_DEFAULT_N_OBJECTS = 6


# -- parameter schema ------------------------------------------------------


@dataclass(frozen=True)
class ParamSpec:
    """One knob of a scenario family: default value plus inclusive bounds.

    Attributes:
        name: parameter key.
        default: value used when the caller does not override.
        low: inclusive lower bound.
        high: inclusive upper bound.
        doc: one-line description for the CLI parameter table.
        integer: whether values are coerced to ``int`` (e.g. counts).

    Raises:
        SimError: if the bounds are inverted or the default violates
            them.
    """

    name: str
    default: float
    low: float
    high: float
    doc: str = ""
    integer: bool = False

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise SimError(f"param {self.name!r}: bounds [{self.low}, {self.high}] inverted")
        if not self.low <= self.default <= self.high:
            raise SimError(
                f"param {self.name!r}: default {self.default} outside "
                f"[{self.low}, {self.high}]"
            )

    def coerce(self, value: float) -> Union[int, float]:
        """Bounds-check ``value`` and cast it to the parameter's type.

        Raises:
            SimError: when ``value`` falls outside ``[low, high]`` or is
                not a number.
        """
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SimError(f"param {self.name!r}: expected a number, got {value!r}")
        if not self.low <= value <= self.high:
            raise SimError(
                f"param {self.name!r}: {value} outside [{self.low:g}, {self.high:g}]"
            )
        return int(value) if self.integer else float(value)


def _objects_param(default: int = 6) -> ParamSpec:
    return ParamSpec(
        "n_objects", default, 1, 10, "target objects to place", integer=True
    )


# -- world drafts and shared finishing -------------------------------------


@dataclass
class _DraftWorld:
    """What a family builder hands back before shared finishing.

    ``passage`` is the narrowest corridor the layout intends (door
    width, maze corridor, aisle, clutter gap); it sizes the validity
    raster so the flood fill cannot miss a legitimate passage.
    """

    width: float
    length: float
    obstacles: List[Obstacle]
    passage: float
    policy: str = "pseudo-random"
    flight_time_s: float = 240.0


def _raster_resolution(passage: float) -> float:
    """Cell edge fine enough that a ``passage``-wide corridor is seen.

    The free band of a corridor is ``passage - 2 * margin`` wide; two
    cells across that band keep the 4-connected fill from snapping it
    shut at diagonals.
    """
    return min(0.3, max(0.08, (passage - 2.0 * VALIDATION_MARGIN_M) / 2.0))


def _cell_center(iy: int, ix: int, room: Room, shape: Tuple[int, int]) -> Vec2:
    ny, nx = shape
    return Vec2((ix + 0.5) * room.width / nx, (iy + 0.5) * room.length / ny)


def _finish(
    family: "ScenarioFamily",
    draft: _DraftWorld,
    resolved: Dict[str, float],
    rng: np.random.Generator,
    seed: int,
) -> Scenario:
    """Shared tail of every builder: start, objects, validity, Scenario."""
    room = Room(draft.width, draft.length, draft.obstacles)
    name = _instance_name(family.name, resolved, seed)
    res = _raster_resolution(draft.passage)
    free = free_space_mask(room, res)
    if not free.any():
        raise SimError(f"{name}: no free space at margin {VALIDATION_MARGIN_M} m")
    shape = free.shape
    # Start: the free cell nearest the usual launch corner.
    free_cells = np.argwhere(free)
    centers_x = (free_cells[:, 1] + 0.5) * room.width / shape[1]
    centers_y = (free_cells[:, 0] + 0.5) * room.length / shape[0]
    corner = np.argmin((centers_x - 0.75) ** 2 + (centers_y - 0.75) ** 2)
    start_cell = (int(free_cells[corner, 0]), int(free_cells[corner, 1]))
    reach = flood_fill(free, start_cell)
    n_free = int(free.sum())
    n_reach = int(reach.sum())
    if n_reach < 0.98 * n_free:
        raise SimError(
            f"{name}: free space is fragmented -- only {n_reach}/{n_free} "
            f"cells reachable from the start pose"
        )
    start = _cell_center(start_cell[0], start_cell[1], room, shape)
    objects = _place_objects(
        room,
        reach,
        start,
        int(resolved.get("n_objects", _DEFAULT_N_OBJECTS)),
        rng,
        name,
    )
    scenario = Scenario(
        name=name,
        room=RoomSpec(
            width=draft.width,
            length=draft.length,
            obstacles=tuple(ObstacleSpec.from_obstacle(o) for o in draft.obstacles),
        ),
        objects=objects,
        policy=draft.policy,
        flight_time_s=draft.flight_time_s,
        start=(start.x, start.y),
        description=(
            f"generated {family.name} (seed {seed}, "
            + ", ".join(f"{k}={v:g}" for k, v in sorted(resolved.items()))
            + ")"
        ),
    )
    scenario.validate()
    return scenario


def _place_objects(
    room: Room,
    reach: np.ndarray,
    start: Vec2,
    n_objects: int,
    rng: np.random.Generator,
    name: str,
) -> Tuple[ObjectSpec, ...]:
    """Scatter targets over *reachable* cells (reachability by construction).

    Alternates bottles and tin cans like the paper's layout. The
    spacing constraint halves (at most twice) when the world is too
    tight, mirroring :func:`repro.world.layouts.scattered_object_layout`
    in refusing to silently return fewer objects than asked.
    """
    cells = np.argwhere(reach)
    order = rng.permutation(len(cells))
    classes = (ObjectClass.BOTTLE, ObjectClass.TIN_CAN)
    spacing = _OBJECT_SPACING_M
    for _ in range(3):
        chosen: List[Vec2] = []
        for idx in order:
            p = _cell_center(int(cells[idx, 0]), int(cells[idx, 1]), room, reach.shape)
            if p.distance_to(start) < spacing:
                continue
            if any(p.distance_to(q) < spacing for q in chosen):
                continue
            chosen.append(p)
            if len(chosen) == n_objects:
                break
        if len(chosen) == n_objects:
            return tuple(
                ObjectSpec(
                    object_class=classes[i % 2].value,
                    x=p.x,
                    y=p.y,
                    name=f"{classes[i % 2].value}-{i}",
                )
                for i, p in enumerate(chosen)
            )
        spacing /= 2.0
    raise SimError(
        f"{name}: could not place {n_objects} objects on reachable free space"
    )


def _instance_name(family: str, resolved: Dict[str, float], seed: int) -> str:
    blob = json.dumps(
        {"family": family, "params": resolved, "seed": seed}, sort_keys=True
    )
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:6]
    return f"{family}-s{seed}-{digest}"


# -- the family abstraction ------------------------------------------------


@dataclass(frozen=True)
class ScenarioFamily:
    """A parametric scenario generator registered alongside presets.

    Attributes:
        name: registry key, e.g. ``"perfect-maze"``; shares one
            namespace with preset scenario names.
        description: one-line summary for the CLI listing.
        params: the parameter schema (defaults, bounds, docs).
        builder: callable mapping ``(resolved_params, rng)`` to the
            draft world the shared finishing pass completes.

    Example:
        >>> from repro.sim import get_family
        >>> maze = get_family("perfect-maze")
        >>> sorted(p.name for p in maze.params)[:2]
        ['cell_m', 'cols']
        >>> s = maze.generate({"cols": 5, "rows": 4}, seed=1)
        >>> s.name.startswith("perfect-maze-s1-")
        True
    """

    name: str
    description: str
    params: Tuple[ParamSpec, ...]
    builder: Callable[[Dict[str, float], np.random.Generator], _DraftWorld] = field(
        compare=False
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise SimError("scenario family needs a name")
        seen = set()
        for p in self.params:
            if p.name in seen:
                raise SimError(f"family {self.name!r}: duplicate param {p.name!r}")
            seen.add(p.name)

    def defaults(self) -> Dict[str, float]:
        """Default value of every parameter, keyed by name."""
        return {p.name: (int(p.default) if p.integer else float(p.default)) for p in self.params}

    def resolve(self, overrides: Optional[Dict[str, float]] = None) -> Dict[str, float]:
        """Merge ``overrides`` into the defaults, enforcing the schema.

        Args:
            overrides: partial ``{param: value}`` mapping; ``None``
                means all-defaults.

        Returns:
            A complete, bounds-checked parameter dict.

        Raises:
            SimError: on unknown parameter names or out-of-bounds
                values.
        """
        resolved = self.defaults()
        schema = {p.name: p for p in self.params}
        for key, value in (overrides or {}).items():
            if key not in schema:
                known = ", ".join(sorted(schema))
                raise SimError(
                    f"family {self.name!r} has no param {key!r}; known: {known}"
                )
            resolved[key] = schema[key].coerce(value)
        return resolved

    def generate(
        self, params: Optional[Dict[str, float]] = None, seed: int = 0
    ) -> Scenario:
        """Generate one deterministic, validated scenario.

        Args:
            params: parameter overrides (see :meth:`resolve`).
            seed: root entropy; the same ``(params, seed)`` pair always
                yields a bit-identical scenario in any process.

        Returns:
            A :class:`~repro.sim.scenario.Scenario` whose world passed
            the flood-fill validity check (connected free space, clear
            start pose, every object reachable).

        Raises:
            SimError: on bad parameters, or if the drawn world cannot
                be validated (fragmented free space, unplaceable
                objects).
        """
        resolved = self.resolve(params)
        rng = np.random.default_rng(np.random.SeedSequence(seed))
        draft = self.builder(resolved, rng)
        return _finish(self, draft, resolved, rng, seed)


# -- family registry -------------------------------------------------------

#: Family registry; shares its namespace with the preset registry of
#: :mod:`repro.sim.scenario` (see :mod:`repro.sim.registry`).
_FAMILIES: Registry = Registry("scenario family")


def register_family(family: ScenarioFamily, overwrite: bool = False) -> ScenarioFamily:
    """Add ``family`` to the registry.

    Args:
        family: the generator to register.
        overwrite: allow replacing an existing family of the same name.
            Names owned by a scenario *preset* are rejected regardless.

    Returns:
        The registered family (handy for chaining).

    Raises:
        SimError: on duplicate names (unless ``overwrite``) or on a
            name that would shadow a registered preset.
    """
    return _FAMILIES.register(family.name, family, overwrite=overwrite)


def get_family(name: str) -> ScenarioFamily:
    """Look up a registered scenario family by name.

    Raises:
        SimError: for an unknown name, listing the known ones (and
            pointing at the preset registry if the name is a preset).
    """
    return _FAMILIES.get(name)


def family_names() -> Tuple[str, ...]:
    """Registered family names, sorted.

    Example:
        >>> from repro.sim import family_names
        >>> "perfect-maze" in family_names()
        True
    """
    return _FAMILIES.names()


def iter_families() -> Iterable[ScenarioFamily]:
    """Registered families in name order."""
    return _FAMILIES.values()


def generate_scenario(
    family: str, params: Optional[Dict[str, float]] = None, seed: int = 0
) -> Scenario:
    """Shorthand for ``get_family(family).generate(params, seed)``."""
    return get_family(family).generate(params, seed)


@dataclass(frozen=True)
class GeneratedSpec:
    """A picklable ``(family, params, seed)`` scenario reference.

    Campaigns carry these instead of realized scenarios when sweeping a
    family (:attr:`repro.sim.campaign.Campaign.generated`); the triple
    is what the campaign hash covers, and :meth:`realize` deterministically
    reconstructs the identical scenario anywhere.

    Attributes:
        family: registered family name.
        params: canonical (sorted) tuple of ``(name, value)`` overrides.
        seed: generator seed.

    Example:
        >>> from repro.sim import GeneratedSpec
        >>> ref = GeneratedSpec.create("perfect-maze", {"cols": 5, "rows": 4}, seed=2)
        >>> ref.realize().content_hash() == ref.realize().content_hash()
        True
    """

    family: str
    params: Tuple[Tuple[str, float], ...] = ()
    seed: int = 0

    @classmethod
    def create(
        cls,
        family: str,
        params: Optional[Dict[str, float]] = None,
        seed: int = 0,
    ) -> "GeneratedSpec":
        """Build a spec with canonical parameter ordering.

        Raises:
            SimError: for an unknown family or parameters violating its
                schema (failing early, not inside a worker process).
        """
        fam = get_family(family)
        overrides = params or {}
        fam.resolve(overrides)  # validate names and bounds up front
        # Store schema-coerced values: {'cols': 5} and {'cols': 5.0}
        # realize identical worlds and must hash identically too, or
        # re-running the same sweep re-keys its result file.
        schema = {p.name: p for p in fam.params}
        canonical = tuple(
            sorted((k, schema[k].coerce(v)) for k, v in overrides.items())
        )
        return cls(family=family, params=canonical, seed=seed)

    def params_dict(self) -> Dict[str, float]:
        """The parameter overrides as a plain dict."""
        return dict(self.params)

    def realize(self) -> Scenario:
        """Generate the referenced scenario (deterministic).

        Raises:
            SimError: for an unknown family or invalid parameters.
        """
        return generate_scenario(self.family, self.params_dict(), self.seed)

    def to_dict(self) -> dict:
        """Canonical plain-data form (JSON- and hash-friendly)."""
        return {
            "family": self.family,
            "params": {k: v for k, v in self.params},
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GeneratedSpec":
        """Inverse of :meth:`to_dict`."""
        return cls.create(
            data["family"], dict(data.get("params", {})), int(data.get("seed", 0))
        )


# -- ASCII rendering -------------------------------------------------------


def ascii_layout(
    scenario: Scenario, width_chars: int = 64, room: Optional[Room] = None
) -> str:
    """Render a scenario's floor plan as ASCII art (north up).

    ``#`` marks walls/obstacles, ``B``/``C`` bottles and tin cans,
    ``S`` the start pose, ``.`` free floor. A character cell is drawn
    blocked when its centre is non-free or closer to geometry than half
    a cell, so thin partition walls stay visible at coarse samplings.

    Args:
        scenario: the scenario to draw.
        width_chars: horizontal resolution of the rendering.
        room: optionally, the scenario's already-built room (building a
            dense world's query grids twice is the expensive part).

    Returns:
        The multi-line drawing (framed, no trailing newline).
    """
    if room is None:
        room = scenario.build_room()
    nx = max(8, int(width_chars))
    dx = room.width / nx
    dy = dx * 2.0  # terminal characters are ~2x taller than wide
    ny = max(4, int(math.ceil(room.length / dy)))
    dy = room.length / ny
    threshold = max(dx, dy) / 2.0
    rows = []
    for iy in range(ny - 1, -1, -1):
        row = []
        for ix in range(nx):
            p = Vec2((ix + 0.5) * dx, (iy + 0.5) * dy)
            if not room.is_free(p) or room.clearance(p) < threshold:
                row.append("#")
            else:
                row.append(".")
        rows.append(row)

    def mark(x: float, y: float, char: str) -> None:
        ix = min(nx - 1, max(0, int(x / dx)))
        iy = min(ny - 1, max(0, int(y / dy)))
        rows[ny - 1 - iy][ix] = char

    for obj in scenario.objects:
        mark(obj.x, obj.y, "B" if obj.object_class == ObjectClass.BOTTLE.value else "C")
    if scenario.start is not None:
        mark(scenario.start[0], scenario.start[1], "S")
    border = "+" + "-" * nx + "+"
    return "\n".join([border] + ["|" + "".join(r) + "|" for r in rows] + [border])


# -- built-in families -----------------------------------------------------


def _build_perfect_maze(params: Dict[str, float], rng: np.random.Generator) -> _DraftWorld:
    """Recursive-backtracker maze: corridors carved out of a wall grid."""
    cell = params["cell_m"]
    cols = int(params["cols"])
    rows = int(params["rows"])
    t = GENERATOR_WALL_THICKNESS_M
    width = cols * cell
    length = rows * cell
    # open_v[i][j]: passage between (i, j) and (i+1, j); open_h between
    # (i, j) and (i, j+1). The DFS carving yields a spanning tree, so
    # every cell is reachable -- the flood fill re-proves it.
    open_v = np.zeros((cols - 1, rows), dtype=bool)
    open_h = np.zeros((cols, rows - 1), dtype=bool)
    visited = np.zeros((cols, rows), dtype=bool)
    stack = [(0, 0)]
    visited[0, 0] = True
    while stack:
        i, j = stack[-1]
        neighbours = []
        if i > 0 and not visited[i - 1, j]:
            neighbours.append((i - 1, j))
        if i < cols - 1 and not visited[i + 1, j]:
            neighbours.append((i + 1, j))
        if j > 0 and not visited[i, j - 1]:
            neighbours.append((i, j - 1))
        if j < rows - 1 and not visited[i, j + 1]:
            neighbours.append((i, j + 1))
        if not neighbours:
            stack.pop()
            continue
        ni, nj = neighbours[int(rng.integers(len(neighbours)))]
        if ni != i:
            open_v[min(i, ni), j] = True
        else:
            open_h[i, min(j, nj)] = True
        visited[ni, nj] = True
        stack.append((ni, nj))

    half = t / 2.0
    obstacles: List[Obstacle] = []
    for i in range(cols - 1):
        x = (i + 1) * cell
        for j in range(rows):
            if not open_v[i, j]:
                # Extend by half a thickness so perpendicular joints seal.
                y0 = max(0.0, j * cell - half)
                y1 = min(length, (j + 1) * cell + half)
                obstacles.append(
                    Obstacle(AABB(x - half, y0, x + half, y1), name=f"maze-v{i}-{j}")
                )
    for i in range(cols):
        x0 = max(0.0, i * cell - half)
        x1 = min(width, (i + 1) * cell + half)
        for j in range(rows - 1):
            if not open_h[i, j]:
                y = (j + 1) * cell
                obstacles.append(
                    Obstacle(AABB(x0, y - half, x1, y + half), name=f"maze-h{i}-{j}")
                )
    return _DraftWorld(
        width=width,
        length=length,
        obstacles=obstacles,
        passage=cell - t,
        policy="wall-following",
        flight_time_s=300.0,
    )


def _build_random_apartment(
    params: Dict[str, float], rng: np.random.Generator
) -> _DraftWorld:
    """BSP floor plan: split walls with junction-aware doorways + furniture."""
    width = params["width"]
    length = params["length"]
    min_room = params["min_room"]
    door = params["door"]
    clutter = params["clutter"]
    t = GENERATOR_WALL_THICKNESS_M

    splits: List[Tuple[str, float, float, float]] = []  # (axis, pos, lo, hi)
    leaves: List[Tuple[float, float, float, float]] = []
    stack = [(0.0, 0.0, width, length)]
    while stack:
        x0, y0, x1, y1 = stack.pop()
        w = x1 - x0
        h = y1 - y0
        can_x = w >= 2.0 * min_room
        can_y = h >= 2.0 * min_room
        # Small rooms sometimes stay open-plan for variety.
        if not (can_x or can_y) or (
            max(w, h) < 3.0 * min_room and rng.uniform() < 0.25
        ):
            leaves.append((x0, y0, x1, y1))
            continue
        if can_x and (not can_y or w >= h):
            pos = x0 + rng.uniform(min_room, w - min_room)
            splits.append(("x", pos, y0, y1))
            stack.append((x0, y0, pos, y1))
            stack.append((pos, y0, x1, y1))
        else:
            pos = y0 + rng.uniform(min_room, h - min_room)
            splits.append(("y", pos, x0, x1))
            stack.append((x0, y0, x1, pos))
            stack.append((x0, pos, x1, y1))

    # Doors go in after all splits exist, avoiding the junctions where
    # perpendicular child walls end on this wall line -- a door flush
    # against such a junction would open straight into a wall face.
    obstacles: List[Obstacle] = []
    min_door = door
    clear = 0.25 + t
    for n, (axis, pos, lo, hi) in enumerate(splits):
        junctions = sorted(
            q
            for other_axis, q, a, b in splits
            if other_axis != axis and (a == pos or b == pos) and lo <= q <= hi
        )
        edges = [lo] + junctions + [hi]
        intervals = [
            (edges[k] + clear, edges[k + 1] - clear)
            for k in range(len(edges) - 1)
            if edges[k + 1] - edges[k] > 2.0 * clear
        ]
        fitting = [iv for iv in intervals if iv[1] - iv[0] >= door]
        if fitting:
            a, b = fitting[int(rng.integers(len(fitting)))]
            door_w = door
            door_start = rng.uniform(a, b - door_w)
        else:
            # Degrade gracefully: shrink the door into the widest clear
            # stretch, or drop the wall entirely (open plan keeps the
            # halves connected by construction).
            widest = max(intervals, key=lambda iv: iv[1] - iv[0], default=None)
            if widest is None or widest[1] - widest[0] < 0.7:
                continue
            a, b = widest
            door_w = min(door, b - a)
            door_start = rng.uniform(a, b - door_w) if b - a > door_w else a
        min_door = min(min_door, door_w)
        obstacles.extend(
            door_wall_obstacles(
                axis,
                pos,
                lo,
                hi,
                door_start,
                door_w,
                thickness=t,
                names=(f"wall{n}-a", f"wall{n}-b"),
                min_piece=0.05,
            )
        )

    # Furniture: boxes well clear of the leaf-room walls and each other.
    furniture_gap = 0.55
    for n, (x0, y0, x1, y1) in enumerate(leaves):
        placed: List[AABB] = []
        for k in range(int(rng.integers(0, 3))):
            if rng.uniform() >= clutter:
                continue
            hx = rng.uniform(0.15, 0.35)
            hy = rng.uniform(0.15, 0.35)
            lox, hix = x0 + furniture_gap + hx, x1 - furniture_gap - hx
            loy, hiy = y0 + furniture_gap + hy, y1 - furniture_gap - hy
            if hix <= lox or hiy <= loy:
                continue
            for _ in range(8):
                cx = rng.uniform(lox, hix)
                cy = rng.uniform(loy, hiy)
                box = AABB(cx - hx, cy - hy, cx + hx, cy + hy)
                ok = all(
                    box.xmin - other.xmax >= furniture_gap
                    or other.xmin - box.xmax >= furniture_gap
                    or box.ymin - other.ymax >= furniture_gap
                    or other.ymin - box.ymax >= furniture_gap
                    for other in placed
                )
                if ok:
                    placed.append(box)
                    obstacles.append(Obstacle(box, name=f"furniture{n}-{k}"))
                    break

    return _DraftWorld(
        width=width,
        length=length,
        obstacles=obstacles,
        passage=min(min_door, furniture_gap),
        flight_time_s=300.0,
    )


def _build_cluttered_warehouse(
    params: Dict[str, float], rng: np.random.Generator
) -> _DraftWorld:
    """Shelf rows separated by aisles; a perimeter aisle joins them all."""
    width = params["width"]
    length = params["length"]
    aisle = params["aisle"]
    depth = params["shelf_depth"]
    unit = params["unit_len"]
    density = params["density"]
    obstacles: List[Obstacle] = []
    y = aisle
    row = 0
    while y + depth <= length - aisle + 1e-9:
        x = aisle
        col = 0
        while x + unit <= width - aisle + 1e-9:
            if rng.uniform() < density:
                obstacles.append(
                    Obstacle(
                        AABB(x, y, x + unit, y + depth), name=f"shelf{row}-{col}"
                    )
                )
            x += unit
            col += 1
        y += depth + aisle
        row += 1
    if not obstacles:
        # Degenerate density draw on a tiny grid: keep one shelf so the
        # scenario still looks like a warehouse.
        obstacles.append(
            Obstacle(AABB(aisle, aisle, aisle + unit, aisle + depth), name="shelf0-0")
        )
    return _DraftWorld(
        width=width,
        length=length,
        obstacles=obstacles,
        passage=aisle,
        flight_time_s=300.0,
    )


def _build_scatter_field(
    params: Dict[str, float], rng: np.random.Generator
) -> _DraftWorld:
    """Poisson-disk cylinder/box clutter with flyable gaps everywhere."""
    width = params["width"]
    length = params["length"]
    n_items = int(params["n_items"])
    gap = params["min_gap"]
    max_size = params["max_size"]
    wall_clear = max(gap, 0.55)
    obstacles: List[Obstacle] = []
    centres: List[Tuple[float, float, float]] = []  # (x, y, circumradius)
    attempts = 0
    while len(obstacles) < n_items and attempts < 60 * n_items:
        attempts += 1
        is_cylinder = rng.uniform() < 0.5
        if is_cylinder:
            r = rng.uniform(0.1, max_size)
            circum = r
        else:
            hx = rng.uniform(0.1, max_size)
            hy = rng.uniform(0.1, max_size)
            circum = math.hypot(hx, hy)
        lo = wall_clear + circum
        if width - lo <= lo or length - lo <= lo:
            continue
        cx = rng.uniform(lo, width - lo)
        cy = rng.uniform(lo, length - lo)
        if any(
            math.hypot(cx - ox, cy - oy) < circum + oc + gap
            for ox, oy, oc in centres
        ):
            continue
        k = len(obstacles)
        if is_cylinder:
            obstacles.append(Obstacle(Circle(Vec2(cx, cy), r), name=f"drum-{k}"))
        else:
            obstacles.append(
                Obstacle(AABB(cx - hx, cy - hy, cx + hx, cy + hy), name=f"crate-{k}")
            )
        centres.append((cx, cy, circum))
    # Dart throwing may saturate below n_items in tight parameterizations;
    # the field stays valid (and deterministic), just less cluttered.
    return _DraftWorld(
        width=width,
        length=length,
        obstacles=obstacles,
        passage=gap,
        flight_time_s=240.0,
    )


def _register_builtin_families() -> None:
    register_family(
        ScenarioFamily(
            name="perfect-maze",
            description="recursive-backtracker corridor maze at a configurable cell pitch",
            params=(
                ParamSpec("cell_m", 1.2, 0.8, 2.0, "corridor pitch, m"),
                ParamSpec("cols", 10, 4, 24, "maze cells along x", integer=True),
                ParamSpec("rows", 8, 4, 18, "maze cells along y", integer=True),
                _objects_param(),
            ),
            builder=_build_perfect_maze,
        )
    )
    register_family(
        ScenarioFamily(
            name="random-apartment",
            description="BSP floor plan with doorways and furniture boxes",
            params=(
                ParamSpec("width", 10.0, 6.0, 16.0, "flat width, m"),
                ParamSpec("length", 8.0, 5.0, 12.0, "flat length, m"),
                ParamSpec("min_room", 2.5, 2.0, 4.0, "minimum room edge, m"),
                ParamSpec("door", 1.2, 0.9, 1.6, "doorway width, m"),
                ParamSpec("clutter", 0.4, 0.0, 1.0, "furniture density, 0..1"),
                _objects_param(),
            ),
            builder=_build_random_apartment,
        )
    )
    register_family(
        ScenarioFamily(
            name="cluttered-warehouse",
            description="aisle/shelf-row grid with density and aisle-width knobs",
            params=(
                ParamSpec("width", 24.0, 10.0, 40.0, "hall width, m"),
                ParamSpec("length", 16.0, 8.0, 30.0, "hall length, m"),
                ParamSpec("aisle", 2.0, 1.2, 3.0, "aisle width, m"),
                ParamSpec("shelf_depth", 0.8, 0.4, 1.2, "shelf row depth, m"),
                ParamSpec("unit_len", 2.0, 1.0, 3.0, "shelf unit length, m"),
                ParamSpec("density", 0.9, 0.5, 1.0, "shelf occupancy, 0..1"),
                _objects_param(),
            ),
            builder=_build_cluttered_warehouse,
        )
    )
    register_family(
        ScenarioFamily(
            name="scatter-field",
            description="Poisson-disk cylinder/box clutter with flyable gaps",
            params=(
                ParamSpec("width", 14.0, 6.0, 24.0, "field width, m"),
                ParamSpec("length", 10.0, 5.0, 18.0, "field length, m"),
                ParamSpec("n_items", 40, 5, 160, "target clutter count", integer=True),
                ParamSpec("min_gap", 0.6, 0.5, 1.5, "min boundary gap, m"),
                ParamSpec("max_size", 0.3, 0.15, 0.45, "max item radius/half-extent, m"),
                _objects_param(),
            ),
            builder=_build_scatter_field,
        )
    )


_register_builtin_families()
