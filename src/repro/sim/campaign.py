"""Campaigns: cartesian mission sweeps with independent seed streams.

A :class:`Campaign` expands ``scenario x ssd_width x policy x speed x
n_runs`` into a flat list of :class:`MissionSpec`, each carrying its own
:class:`numpy.random.SeedSequence` spawn key. The ``i``-th mission uses
``SeedSequence(campaign.seed, spawn_key=(i,))`` -- exactly the stream
``SeedSequence(campaign.seed).spawn(n)[i]`` would produce -- so every
mission draws from a provably independent RNG regardless of execution
order or process placement, and serial and pooled runs are bit-identical.

The campaign also serializes to a canonical dict whose SHA-256 digest
(:meth:`Campaign.campaign_hash`) keys persisted results: the same sweep
always lands in the same file.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import SimError
from repro.mission.detector_model import DetectorOperatingPoint, paper_operating_points
from repro.policies import POLICY_NAMES
from repro.sim.generators import GeneratedSpec
from repro.sim.scenario import Scenario

#: Mission kinds a campaign can sweep.
CAMPAIGN_KINDS = ("search", "explore")


@dataclass(frozen=True)
class OperatingPointSpec:
    """Declarative detector operating point, keyed by SSD width.

    Campaigns default to the paper's Table I/II operating points; an
    explicit spec overrides them (e.g. to close the loop on this
    library's own measured Table 1 numbers).
    """

    width: str
    name: str
    fps: float
    map_score: float

    def build(self) -> DetectorOperatingPoint:
        """Instantiate the live operating point."""
        return DetectorOperatingPoint(self.name, fps=self.fps, map_score=self.map_score)

    @classmethod
    def from_operating_point(
        cls, width: str, op: DetectorOperatingPoint
    ) -> "OperatingPointSpec":
        """Describe an existing operating point declaratively."""
        return cls(width=width, name=op.name, fps=op.fps, map_score=op.map_score)


def paper_operating_point_spec(width: str) -> OperatingPointSpec:
    """The paper's operating point for one SSD width key."""
    points = paper_operating_points()
    try:
        op = points[width]
    except KeyError:
        known = ", ".join(sorted(points))
        raise SimError(f"unknown SSD width {width!r}; known: {known}") from None
    return OperatingPointSpec.from_operating_point(width, op)


@dataclass(frozen=True)
class MissionSpec:
    """One fully-specified mission inside a campaign.

    Self-contained and picklable: a worker process rebuilds the world
    from the embedded scenario and derives its RNG streams from
    ``(seed_entropy, spawn_key)`` without any shared state. Missions
    expanded from a generated family additionally carry the
    ``(family, params, seed)`` reference they were realized from in
    ``generator`` -- the realized scenario is embedded too, so workers
    never need to re-run the generator.
    """

    index: int
    scenario: Scenario
    kind: str
    policy: str
    speed: float
    ssd_width: str
    flight_time_s: float
    run_idx: int
    seed_entropy: int
    spawn_key: Tuple[int, ...]
    op: Optional[OperatingPointSpec] = None
    generator: Optional[GeneratedSpec] = None

    def seed_sequence(self) -> np.random.SeedSequence:
        """The mission's independent root stream."""
        return np.random.SeedSequence(self.seed_entropy, spawn_key=self.spawn_key)

    def operating_point(self) -> DetectorOperatingPoint:
        """The detector operating point this mission flies."""
        spec = self.op or paper_operating_point_spec(self.ssd_width)
        return spec.build()

    def to_dict(self) -> dict:
        """Canonical plain-data form (JSON- and hash-friendly).

        This is the payload :func:`repro.sim.runner.mission_job` ships
        to the execution layer; :meth:`from_dict` rebuilds an equal
        spec in any process.
        """
        return {
            "index": self.index,
            "scenario": self.scenario.to_dict(),
            "kind": self.kind,
            "policy": self.policy,
            "speed": self.speed,
            "ssd_width": self.ssd_width,
            "flight_time_s": self.flight_time_s,
            "run_idx": self.run_idx,
            "seed_entropy": self.seed_entropy,
            "spawn_key": list(self.spawn_key),
            "op": None if self.op is None else asdict(self.op),
            "generator": None if self.generator is None else self.generator.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MissionSpec":
        """Inverse of :meth:`to_dict`."""
        op = data.get("op")
        generator = data.get("generator")
        return cls(
            index=int(data["index"]),
            scenario=Scenario.from_dict(data["scenario"]),
            kind=data["kind"],
            policy=data["policy"],
            speed=data["speed"],
            ssd_width=data["ssd_width"],
            flight_time_s=data["flight_time_s"],
            run_idx=int(data["run_idx"]),
            seed_entropy=int(data["seed_entropy"]),
            spawn_key=tuple(int(k) for k in data["spawn_key"]),
            op=None if op is None else OperatingPointSpec(**op),
            generator=None if generator is None else GeneratedSpec.from_dict(generator),
        )


@dataclass(frozen=True)
class Campaign:
    """A named cartesian sweep over scenarios and mission parameters.

    Empty axis tuples fall back to each scenario's own default, so
    ``Campaign(name="x", scenarios=(get_scenario("paper-room"),))``
    is already a valid 1-mission campaign.

    Besides fixed scenarios, a campaign can sweep *generated* worlds: a
    :class:`~repro.sim.generators.GeneratedSpec` references a scenario
    family by ``(family, params, seed)`` and is realized exactly once at
    campaign construction. The realized scenario is embedded in every
    :class:`MissionSpec` (keeping workers generator-free), while the
    campaign hash covers the compact reference triple.

    Attributes:
        name: label used in persisted result files.
        scenarios: fixed scenarios to fly.
        policies: policy names to sweep (empty = scenario default).
        speeds: cruise speeds to sweep, m/s (empty = scenario default).
        ssd_widths: SSD width keys to sweep (empty = scenario default).
        n_runs: independent flights per configuration.
        flight_time_s: override flight duration (``None`` = scenario default).
        kind: ``"search"`` (closed-loop detection) or ``"explore"``
            (coverage only; the ``ssd_widths`` axis is not expanded
            since exploration never touches the detector).
        seed: root entropy for every mission's seed stream.
        operating_points: detector overrides keyed by width.
        generated: ``(family, params, seed)`` scenario references swept
            alongside (or instead of) the fixed scenarios.

    Example:
        >>> from repro.sim import Campaign, GeneratedSpec, get_scenario
        >>> campaign = Campaign(
        ...     name="doc",
        ...     scenarios=(get_scenario("paper-room"),),
        ...     generated=(GeneratedSpec.create("perfect-maze", seed=1),),
        ...     n_runs=2,
        ... )
        >>> campaign.size()
        4
        >>> campaign.missions()[-1].generator.family
        'perfect-maze'
    """

    name: str
    scenarios: Tuple[Scenario, ...] = ()
    policies: Tuple[str, ...] = ()
    speeds: Tuple[float, ...] = ()
    ssd_widths: Tuple[str, ...] = ()
    n_runs: int = 1
    flight_time_s: Optional[float] = None
    kind: str = "search"
    seed: int = 0
    operating_points: Tuple[OperatingPointSpec, ...] = ()
    generated: Tuple[GeneratedSpec, ...] = ()

    def __post_init__(self) -> None:
        # Tolerate lists/generators at the call site.
        for name in (
            "scenarios",
            "policies",
            "speeds",
            "ssd_widths",
            "operating_points",
            "generated",
        ):
            object.__setattr__(self, name, tuple(getattr(self, name)))
        if not self.name:
            raise SimError("campaign needs a name")
        if not self.scenarios and not self.generated:
            raise SimError("campaign needs at least one scenario or generated spec")
        # Realize each generated reference once; missions embed the
        # realized scenario so pool workers never re-run a generator.
        object.__setattr__(
            self,
            "_generated_scenarios",
            tuple(spec.realize() for spec in self.generated),
        )
        if self.n_runs <= 0:
            raise SimError(f"n_runs must be positive, got {self.n_runs}")
        if self.kind not in CAMPAIGN_KINDS:
            raise SimError(f"unknown campaign kind {self.kind!r}; known: {CAMPAIGN_KINDS}")
        if self.flight_time_s is not None and self.flight_time_s <= 0.0:
            raise SimError("flight time must be positive")
        for policy in self.policies:
            if policy not in POLICY_NAMES:
                known = ", ".join(POLICY_NAMES)
                raise SimError(f"unknown policy {policy!r}; known: {known}")
        for speed in self.speeds:
            if speed <= 0.0:
                raise SimError(f"speeds must be positive, got {speed}")
        known_widths = set(paper_operating_points()) | {
            op.width for op in self.operating_points
        }
        for width in self.ssd_widths:
            if width not in known_widths:
                known = ", ".join(sorted(known_widths))
                raise SimError(f"unknown SSD width {width!r}; known: {known}")
        # Empty axes fall back to per-scenario defaults at expansion time;
        # validate those too, so a bad default fails at construction
        # instead of mid-campaign inside a worker process.
        for scenario in self.scenarios + self._generated_scenarios:
            if not self.policies and scenario.policy not in POLICY_NAMES:
                known = ", ".join(POLICY_NAMES)
                raise SimError(
                    f"scenario {scenario.name!r} default policy "
                    f"{scenario.policy!r} is unknown; known: {known}"
                )
            if (
                not self.ssd_widths
                and self.kind == "search"
                and scenario.ssd_width not in known_widths
            ):
                known = ", ".join(sorted(known_widths))
                raise SimError(
                    f"scenario {scenario.name!r} default SSD width "
                    f"{scenario.ssd_width!r} is unknown; known: {known}"
                )

    # -- expansion --------------------------------------------------------

    def _op_map(self) -> Dict[str, OperatingPointSpec]:
        return {spec.width: spec for spec in self.operating_points}

    def size(self) -> int:
        """Number of missions the campaign expands to."""
        return len(self.missions())

    def missions(self) -> Tuple[MissionSpec, ...]:
        """Expand the sweep into per-mission specs with spawned seeds.

        The ``i``-th spec gets spawn key ``(i,)``, matching
        ``SeedSequence(self.seed).spawn(total)[i]``.
        """
        ops = self._op_map()
        specs = []
        index = 0
        sources = [(s, None) for s in self.scenarios]
        sources += list(zip(self._generated_scenarios, self.generated))
        for scenario, generator in sources:
            # Exploration never touches the detector: expanding the
            # width axis would duplicate physically-identical missions
            # labelled as a sweep, so it collapses to one value.
            if self.kind == "explore":
                widths = (scenario.ssd_width,)
            else:
                widths = self.ssd_widths or (scenario.ssd_width,)
            policies = self.policies or (scenario.policy,)
            speeds = self.speeds or (scenario.cruise_speed,)
            flight_time = self.flight_time_s or scenario.flight_time_s
            for width in widths:
                for policy in policies:
                    for speed in speeds:
                        for run_idx in range(self.n_runs):
                            specs.append(
                                MissionSpec(
                                    index=index,
                                    scenario=scenario,
                                    kind=self.kind,
                                    policy=policy,
                                    speed=speed,
                                    ssd_width=width,
                                    flight_time_s=flight_time,
                                    run_idx=run_idx,
                                    seed_entropy=self.seed,
                                    spawn_key=(index,),
                                    op=ops.get(width),
                                    generator=generator,
                                )
                            )
                            index += 1
        return tuple(specs)

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical plain-data form (JSON- and hash-friendly).

        Generated references serialize as their compact
        ``(family, params, seed)`` triple -- realized worlds are fully
        determined by it. The key is omitted when no family is swept so
        that the hashes of existing preset-only campaigns (and their
        persisted result files) stay stable.
        """
        data = {
            "name": self.name,
            "kind": self.kind,
            "seed": self.seed,
            "n_runs": self.n_runs,
            "flight_time_s": self.flight_time_s,
            "policies": list(self.policies),
            "speeds": list(self.speeds),
            "ssd_widths": list(self.ssd_widths),
            "operating_points": [asdict(op) for op in self.operating_points],
            "scenarios": [s.to_dict() for s in self.scenarios],
        }
        if self.generated:
            data["generated"] = [spec.to_dict() for spec in self.generated]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Campaign":
        """Inverse of :meth:`to_dict`.

        Rebuilds a campaign from its persisted definition (e.g. the
        ``campaign`` block of a saved result file), re-expanding to the
        same missions and job hashes -- which is how the replay tooling
        maps a result file back to the traces behind it. Extra keys
        (such as a derived result's ``filter`` annotation) are ignored.
        """
        return cls(
            name=data["name"],
            scenarios=tuple(
                Scenario.from_dict(s) for s in data.get("scenarios", ())
            ),
            policies=tuple(data.get("policies", ())),
            speeds=tuple(data.get("speeds", ())),
            ssd_widths=tuple(data.get("ssd_widths", ())),
            n_runs=int(data.get("n_runs", 1)),
            flight_time_s=data.get("flight_time_s"),
            kind=data.get("kind", "search"),
            seed=int(data.get("seed", 0)),
            operating_points=tuple(
                OperatingPointSpec(**op) for op in data.get("operating_points", ())
            ),
            generated=tuple(
                GeneratedSpec.from_dict(g) for g in data.get("generated", ())
            ),
        )

    def campaign_hash(self) -> str:
        """Stable SHA-256 content hash of the campaign definition.

        Cosmetic fields (scenario descriptions) are excluded: fixing a
        typo in a preset's documentation must not re-key every persisted
        result file.
        """
        data = self.to_dict()
        for scenario in data["scenarios"]:
            scenario.pop("description", None)
        blob = json.dumps(data, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()
