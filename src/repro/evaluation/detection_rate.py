"""Detection-rate aggregation for the closed-loop evaluation (Table III)."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.mission.closed_loop import SearchResult


def aggregate_detection_rate(results: Sequence[SearchResult]) -> Tuple[float, float]:
    """Mean and standard deviation of the detection rate over runs.

    The paper reports the mean over 5 independent 3-minute runs.
    """
    if not results:
        raise ValueError("need at least one run")
    rates = np.array([r.detection_rate for r in results], dtype=np.float64)
    return float(rates.mean()), float(rates.std())
