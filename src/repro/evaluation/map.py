"""COCO-style mean average precision.

The paper reports mAP "as defined for the COCO dataset": AP averaged over
IoU thresholds 0.50:0.05:0.95, averaged over classes. This module
implements that metric with 101-point precision interpolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.vision.boxes import iou_matrix
from repro.vision.ssd import Detection

#: The COCO IoU threshold grid.
COCO_IOU_THRESHOLDS = tuple(np.arange(0.50, 0.96, 0.05).round(2))


@dataclass(frozen=True)
class MAPResult:
    """mAP evaluation output.

    Attributes:
        map_score: mAP@[.50:.95] averaged over classes.
        map_50: mAP at IoU 0.50 only.
        per_class: class id -> AP@[.50:.95].
    """

    map_score: float
    map_50: float
    per_class: Dict[int, float]


def average_precision(recalls: np.ndarray, precisions: np.ndarray) -> float:
    """COCO 101-point interpolated AP from a PR curve.

    Args:
        recalls: increasing recall values.
        precisions: precision at each recall point.
    """
    if recalls.shape != precisions.shape:
        raise ShapeError("recalls and precisions disagree")
    if recalls.size == 0:
        return 0.0
    # Precision envelope (monotonically non-increasing from the right).
    mprec = np.concatenate([[0.0], precisions, [0.0]])
    mrec = np.concatenate([[0.0], recalls, [1.0]])
    for i in range(mprec.size - 2, -1, -1):
        mprec[i] = max(mprec[i], mprec[i + 1])
    sample_points = np.linspace(0.0, 1.0, 101)
    idx = np.searchsorted(mrec, sample_points, side="left")
    idx = np.clip(idx, 0, mprec.size - 1)
    return float(mprec[idx].mean())


def _ap_single_class(
    detections: List[Tuple[int, float, np.ndarray]],
    gts: Dict[int, np.ndarray],
    iou_threshold: float,
) -> float:
    """AP of one class at one IoU threshold.

    Args:
        detections: list of ``(image_id, score, box)`` sorted by -score.
        gts: image id -> ``(G, 4)`` ground-truth corner boxes.
        iou_threshold: match threshold.
    """
    n_gt = sum(boxes.shape[0] for boxes in gts.values())
    if n_gt == 0:
        return 0.0
    matched = {img: np.zeros(boxes.shape[0], dtype=bool) for img, boxes in gts.items()}
    tp = np.zeros(len(detections))
    fp = np.zeros(len(detections))
    for i, (img, _score, box) in enumerate(detections):
        gt_boxes = gts.get(img)
        if gt_boxes is None or gt_boxes.shape[0] == 0:
            fp[i] = 1.0
            continue
        ious = iou_matrix(box[None, :], gt_boxes)[0]
        best = int(np.argmax(ious))
        if ious[best] >= iou_threshold and not matched[img][best]:
            matched[img][best] = True
            tp[i] = 1.0
        else:
            fp[i] = 1.0
    cum_tp = np.cumsum(tp)
    cum_fp = np.cumsum(fp)
    recalls = cum_tp / n_gt
    precisions = cum_tp / np.maximum(cum_tp + cum_fp, 1e-12)
    return average_precision(recalls, precisions)


def evaluate_map(
    predictions: Sequence[Sequence[Detection]],
    gt_boxes: Sequence[np.ndarray],
    gt_labels: Sequence[np.ndarray],
    num_classes: int = 2,
    iou_thresholds: Sequence[float] = COCO_IOU_THRESHOLDS,
) -> MAPResult:
    """Evaluate detections against ground truth over a whole dataset.

    Args:
        predictions: per-image detection lists (one entry per image).
        gt_boxes: per-image ``(G_i, 4)`` normalized corner boxes.
        gt_labels: per-image ``(G_i,)`` zero-based class ids.
        num_classes: number of foreground classes.
        iou_thresholds: thresholds to average over.
    """
    if not len(predictions) == len(gt_boxes) == len(gt_labels):
        raise ShapeError("predictions and ground truth counts disagree")
    per_class: Dict[int, float] = {}
    per_class_50: Dict[int, float] = {}
    for cls in range(num_classes):
        detections = []
        for img_id, dets in enumerate(predictions):
            for d in dets:
                if d.label == cls:
                    detections.append((img_id, d.score, np.asarray(d.box, dtype=np.float64)))
        detections.sort(key=lambda t: -t[1])
        gts = {}
        for img_id, (boxes, labels) in enumerate(zip(gt_boxes, gt_labels)):
            boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
            labels = np.asarray(labels, dtype=int).reshape(-1)
            gts[img_id] = boxes[labels == cls]
        aps = [_ap_single_class(detections, gts, thr) for thr in iou_thresholds]
        per_class[cls] = float(np.mean(aps)) if aps else 0.0
        per_class_50[cls] = _ap_single_class(detections, gts, 0.5)
    map_score = float(np.mean(list(per_class.values()))) if per_class else 0.0
    map_50 = float(np.mean(list(per_class_50.values()))) if per_class_50 else 0.0
    return MAPResult(map_score=map_score, map_50=map_50, per_class=per_class)
