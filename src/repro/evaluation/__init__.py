"""Evaluation metrics: COCO-style mAP and mission detection rate."""

from repro.evaluation.map import MAPResult, average_precision, evaluate_map
from repro.evaluation.detection_rate import aggregate_detection_rate

__all__ = [
    "MAPResult",
    "average_precision",
    "evaluate_map",
    "aggregate_detection_rate",
]
