"""Committed baseline of grandfathered findings.

A baseline lets the linter gate *new* violations while pre-existing
ones are burned down incrementally: findings whose fingerprint appears
in the committed file are reported as "grandfathered" and do not fail
the run. The contract is shrink-only -- a baseline entry whose finding
was fixed becomes *stale* and must be removed (``--check-baseline``
fails on stale entries; CI enforces it), so the file can only ever get
smaller. Fingerprints hash the rule code, module path, stripped source
line and an occurrence index, not line numbers (see
:mod:`repro.lint.findings`), so unrelated edits don't churn it.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro import schemas
from repro.lint.findings import Finding
from repro.lint.registry import LintError


@dataclass
class Baseline:
    """The committed set of grandfathered finding fingerprints.

    Attributes:
        entries: fingerprint -> descriptive entry (code/path/snippet,
            for humans reading the diff; matching uses the key only).
        path: file the baseline was loaded from, if any.
    """

    entries: Dict[str, Dict[str, object]] = field(default_factory=dict)
    path: str = ""

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline.

        Raises:
            LintError: on malformed content or a wrong schema token.
        """
        if not os.path.exists(path):
            return cls(path=path)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise LintError(f"unreadable baseline {path!r}: {exc}") from exc
        if not isinstance(data, dict) or data.get("schema") != schemas.LINT_BASELINE_SCHEMA:
            raise LintError(
                f"{path!r} is not a {schemas.LINT_BASELINE_SCHEMA} baseline"
            )
        entries: Dict[str, Dict[str, object]] = {}
        for entry in data.get("findings", []):
            fingerprint = str(entry.get("fingerprint", ""))
            if not fingerprint:
                raise LintError(f"{path!r}: baseline entry without fingerprint")
            entries[fingerprint] = dict(entry)
        return cls(entries=entries, path=path)

    def save(self, path: str, findings: Sequence[Finding]) -> None:
        """Write ``findings`` as the new baseline (atomic replace)."""
        doc = {
            "schema": schemas.LINT_BASELINE_SCHEMA,
            "findings": [
                {
                    "fingerprint": f.fingerprint,
                    "code": f.code,
                    "path": f.path,
                    "snippet": f.snippet,
                }
                for f in sorted(findings)
            ],
        }
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=1, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    def partition(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[str]]:
        """Split findings into ``(new, grandfathered)`` plus stale keys.

        Stale keys are baseline fingerprints no current finding
        matches: the violation was fixed, so the entry must go.
        """
        new: List[Finding] = []
        grandfathered: List[Finding] = []
        matched = set()
        for finding in findings:
            if finding.fingerprint in self.entries:
                grandfathered.append(finding)
                matched.add(finding.fingerprint)
            else:
                new.append(finding)
        stale = sorted(set(self.entries) - matched)
        return new, grandfathered, stale
