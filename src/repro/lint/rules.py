"""The determinism-contract rules (``RPR101`` .. ``RPR106``).

Each rule guards an invariant the repo's byte-identity guarantees rest
on; ``docs/linting.md`` is the user-facing catalog with examples and
suppression guidance. Rules are registered through
:func:`repro.lint.registry.rule` and discovered by the engine -- adding
a rule is adding a class here (or in any imported module).

Module-scoped rules key off the file's ``repro``-package-relative path
(:attr:`FileContext.module`): the *hash-path* set below names the
subsystems whose outputs feed content hashes, cache keys, or persisted
artifacts, where nondeterminism is corruption rather than noise.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.registry import FileContext, LintRule, rule

#: Modules whose outputs feed content hashes or persisted artifacts.
#: Directory prefixes cover a subsystem; file entries cover one module.
HASH_PATH_PREFIXES: Tuple[str, ...] = (
    "repro/exec/",
    "repro/sim/",
    "repro/obs/",
    "repro/experiments/jobs.py",
    "repro/seeding.py",
    "repro/schemas.py",
)

#: Hash-path modules allowed to read the wall clock: lease expiry and
#: cache eviction are *about* real time, and every call site takes a
#: ``now=`` override so tests stay deterministic.
WALL_CLOCK_ALLOWLIST: Tuple[str, ...] = (
    "repro/exec/queue.py",
    "repro/exec/cache.py",
    "repro/exec/worker.py",
)

#: The one module allowed to touch RNG construction primitives freely.
SEEDING_MODULE = "repro/seeding.py"

#: The schema-token registry module (the only legal home of tokens).
SCHEMAS_MODULE = "repro/schemas.py"

#: A ``repro.<family>/vN`` schema token appearing inside a string.
#: (Built so this pattern's own source text cannot match itself.)
TOKEN_LITERAL_RE = re.compile(r"repro\.[a-z0-9_.-]*[a-z0-9]/v[0-9]+")


def on_hash_path(module: Optional[str]) -> bool:
    """Whether ``module`` belongs to the hash-path set."""
    if module is None:
        return False
    return any(
        module == p or (p.endswith("/") and module.startswith(p))
        for p in HASH_PATH_PREFIXES
    )


def _wrapped_in_sorted(ctx: FileContext, node: ast.AST) -> bool:
    """Whether ``node`` is directly an argument of ``sorted(...)``."""
    parent = ctx.parent(node)
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id == "sorted"
        and node in parent.args
    )


@rule(
    "RPR101",
    "unseeded-rng",
    "RNG constructed without explicit, nameable seed provenance",
    "Every random stream must descend from a spawned SeedSequence (or a "
    "named seed constant) so a mission re-run in any process draws the "
    "same numbers; global or magic-literal seeding breaks replay.",
)
class UnseededRngRule(LintRule):
    """``np.random.default_rng()``/literal seeds, ``np.random.seed``, bare ``random``."""

    #: ``np.random.*`` members that construct or carry provenance and
    #: are therefore fine to call anywhere.
    _ALLOWED_NP_RANDOM = {"default_rng", "SeedSequence", "Generator", "PCG64"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module == SEEDING_MODULE:
            return
        yield from self._check_random_imports(ctx)
        for call in self.walk_calls(ctx.tree):
            name = self.dotted_name(call.func)
            short = name.split(".")[-1] if name else ""
            if short == "default_rng" and (
                name == "default_rng" or name.endswith("random.default_rng")
            ):
                yield from self._check_default_rng(ctx, call)
            elif (
                name.startswith(("np.random.", "numpy.random."))
                and short not in self._ALLOWED_NP_RANDOM
            ):
                yield Finding(
                    path=ctx.path,
                    line=call.lineno,
                    col=call.col_offset,
                    code=self.meta.code,
                    message=(
                        f"legacy global numpy RNG call {name}(); draw from a "
                        "Generator built on a spawned SeedSequence instead"
                    ),
                )

    def _check_default_rng(self, ctx: FileContext, call: ast.Call) -> Iterator[Finding]:
        if not call.args and not call.keywords:
            yield Finding(
                path=ctx.path,
                line=call.lineno,
                col=call.col_offset,
                code=self.meta.code,
                message=(
                    "default_rng() without a seed gathers OS entropy; pass a "
                    "spawned SeedSequence (repro.seeding.spawn_streams)"
                ),
            )
            return
        seed_arg: Optional[ast.expr] = call.args[0] if call.args else None
        if seed_arg is None and call.keywords:
            for kw in call.keywords:
                if kw.arg == "seed":
                    seed_arg = kw.value
        if isinstance(seed_arg, ast.Constant) and isinstance(
            seed_arg.value, int
        ):
            yield Finding(
                path=ctx.path,
                line=call.lineno,
                col=call.col_offset,
                code=self.meta.code,
                message=(
                    f"magic literal seed default_rng({seed_arg.value!r}); name "
                    "the constant (e.g. repro.seeding.DEFAULT_INIT_SEED) or "
                    "derive a spawned SeedSequence"
                ),
            )

    def _check_random_imports(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self._random_finding(ctx, node)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self._random_finding(ctx, node)

    def _random_finding(self, ctx: FileContext, node: ast.stmt) -> Finding:
        return Finding(
            path=ctx.path,
            line=node.lineno,
            col=node.col_offset,
            code=self.meta.code,
            message=(
                "stdlib random module is process-global state; use numpy "
                "Generators from spawned SeedSequences (repro.seeding)"
            ),
        )


@rule(
    "RPR102",
    "wall-clock-on-hash-path",
    "wall-clock read inside a hash-path module",
    "Anything feeding a content hash or persisted artifact must be a "
    "pure function of the job spec; wall-clock values make reruns "
    "diverge. Lease/eviction modules take now= overrides and are "
    "allowlisted.",
)
class WallClockRule(LintRule):
    """``time.time()``, ``datetime.now()`` and friends on hash paths."""

    _TIME_ATTRS = {"time", "time_ns"}
    _DATETIME_ATTRS = {"now", "utcnow", "today"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not on_hash_path(ctx.module) or ctx.module in WALL_CLOCK_ALLOWLIST:
            return
        for call in self.walk_calls(ctx.tree):
            name = self.dotted_name(call.func)
            if not name:
                continue
            parts = name.split(".")
            head, attr = parts[0], parts[-1]
            is_time = head == "time" and attr in self._TIME_ATTRS and len(parts) == 2
            is_dt = attr in self._DATETIME_ATTRS and any(
                p in ("datetime", "date") for p in parts[:-1]
            )
            if is_time or is_dt:
                yield Finding(
                    path=ctx.path,
                    line=call.lineno,
                    col=call.col_offset,
                    code=self.meta.code,
                    message=(
                        f"wall-clock call {name}() in hash-path module "
                        f"{ctx.module}; take a now= override or move the "
                        "timestamp outside the hashed payload"
                    ),
                )


@rule(
    "RPR103",
    "unsorted-fs-iteration",
    "filesystem iteration without sorted(...)",
    "Directory order is filesystem-dependent; campaign shards and cache "
    "scans must visit entries in one canonical order on every machine.",
)
class UnsortedFsIterationRule(LintRule):
    """``os.listdir``/``glob.glob``/``Path.iterdir``/``os.walk`` unwrapped."""

    _OS_ATTRS = {"listdir", "scandir", "walk"}
    _GLOB_ATTRS = {"glob", "iglob"}
    _ANY_RECEIVER_ATTRS = {"iterdir", "rglob"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imported = self._imported_names(ctx.tree)
        for call in self.walk_calls(ctx.tree):
            flagged = self._classify(call, imported)
            if flagged and not _wrapped_in_sorted(ctx, call):
                yield Finding(
                    path=ctx.path,
                    line=call.lineno,
                    col=call.col_offset,
                    code=self.meta.code,
                    message=(
                        f"{flagged} iterates the filesystem in arbitrary "
                        "order; wrap the call in sorted(...)"
                    ),
                )

    def _classify(self, call: ast.Call, imported: Dict[str, str]) -> str:
        func = call.func
        if isinstance(func, ast.Name):
            origin = imported.get(func.id)
            if origin in ("os", "glob"):
                return f"{origin}.{func.id}"
            return ""
        if not isinstance(func, ast.Attribute):
            return ""
        attr = func.attr
        base = self.dotted_name(func.value)
        if base == "os" and attr in self._OS_ATTRS:
            return f"os.{attr}"
        if base == "os.path":
            return ""
        if base == "glob" and attr in self._GLOB_ATTRS:
            return f"glob.{attr}"
        if attr in self._ANY_RECEIVER_ATTRS:
            return f".{attr}()"
        if attr == "glob" and base != "glob":
            return ".glob()"  # Path.glob
        return ""

    def _imported_names(self, tree: ast.AST) -> Dict[str, str]:
        """Bare names imported from os/glob, e.g. ``listdir`` -> ``os``."""
        names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module in ("os", "glob"):
                for alias in node.names:
                    if alias.name in self._OS_ATTRS | self._GLOB_ATTRS:
                        names[alias.asname or alias.name] = node.module
        return names


@rule(
    "RPR104",
    "unsorted-serialization",
    "json.dumps without sort_keys=True on a hash path, or a set feeding it",
    "Canonical JSON (sorted keys, no sets) is what makes serial, pooled "
    "and cached execution byte-identical; one unsorted dumps re-keys a "
    "cache or corrupts a pinned artifact.",
)
class UnsortedSerializationRule(LintRule):
    """Canonical-JSON discipline on hash paths; sets never serialize."""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in self.walk_calls(ctx.tree):
            name = self.dotted_name(call.func)
            if name not in ("json.dumps", "dumps"):
                continue
            if name == "dumps" and not self._dumps_imported(ctx.tree):
                continue
            if on_hash_path(ctx.module) and not self._has_sort_keys(call):
                yield Finding(
                    path=ctx.path,
                    line=call.lineno,
                    col=call.col_offset,
                    code=self.meta.code,
                    message=(
                        "json.dumps without sort_keys=True in hash-path "
                        f"module {ctx.module}; canonical serialization "
                        "must be key-order independent"
                    ),
                )
            for bad in self._set_arguments(call):
                yield Finding(
                    path=ctx.path,
                    line=bad.lineno,
                    col=bad.col_offset,
                    code=self.meta.code,
                    message=(
                        "set feeding json.dumps: iteration order is "
                        "arbitrary (and sets are not JSON); serialize "
                        "sorted(...) of it instead"
                    ),
                )

    @staticmethod
    def _has_sort_keys(call: ast.Call) -> bool:
        for kw in call.keywords:
            if kw.arg == "sort_keys":
                if isinstance(kw.value, ast.Constant):
                    return bool(kw.value.value)
                return True  # dynamic value: give it the benefit of the doubt
            if kw.arg is None:
                return True  # **kwargs splat: cannot see inside
        return False

    @staticmethod
    def _set_arguments(call: ast.Call) -> Iterator[ast.expr]:
        roots: List[ast.expr] = list(call.args) + [
            kw.value for kw in call.keywords if kw.arg != "sort_keys"
        ]
        for root in roots:
            for node in ast.walk(root):
                if isinstance(node, ast.Set) or (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in ("set", "frozenset")
                ):
                    yield node

    @staticmethod
    def _dumps_imported(tree: ast.AST) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "json":
                if any(a.name == "dumps" for a in node.names):
                    return True
        return False


@rule(
    "RPR105",
    "schema-token-discipline",
    "schema token used as a string literal outside repro/schemas.py",
    "Versioned tokens are frozen on-disk history; they live in the "
    "repro.schemas registry, which enforces uniqueness and gives "
    "version bumps a single home. A literal copy can silently drift.",
)
class SchemaTokenRule(LintRule):
    """Literal ``repro.*/vN`` strings, and duplicate registrations."""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module == SCHEMAS_MODULE:
            yield from self._check_registry_module(ctx)
            return
        docstrings = {id(d) for d in ctx.docstrings}
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and id(node) not in docstrings
                and TOKEN_LITERAL_RE.search(node.value)
            ):
                token = TOKEN_LITERAL_RE.search(node.value)
                assert token is not None
                yield Finding(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    code=self.meta.code,
                    message=(
                        f"literal schema token {token.group(0)!r}; import "
                        "the constant from repro.schemas instead"
                    ),
                )

    def _check_registry_module(self, ctx: FileContext) -> Iterator[Finding]:
        docstrings = {id(d) for d in ctx.docstrings}
        seen: Dict[str, int] = {}
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "register"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                name = node.args[0].value
                if name in seen:
                    yield Finding(
                        path=ctx.path,
                        line=node.lineno,
                        col=node.col_offset,
                        code=self.meta.code,
                        message=(
                            f"schema family {name!r} registered twice "
                            f"(first at line {seen[name]})"
                        ),
                    )
                else:
                    seen[name] = node.lineno
            elif (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and id(node) not in docstrings
                and TOKEN_LITERAL_RE.search(node.value)
            ):
                yield Finding(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    code=self.meta.code,
                    message=(
                        "full token literal inside the registry; construct "
                        "tokens via register(family, version) only"
                    ),
                )


@rule(
    "RPR106",
    "unresolvable-job-callable",
    "JobSpec fn does not statically resolve to a module-level callable",
    "A dotted ref that imports on the submitting host but not in a "
    "worker process fails at execution time, inside a lease; the "
    "import-graph walk catches the typo at review time instead.",
)
class JobCallableRule(LintRule):
    """``JobSpec(fn="pkg.mod:attr")`` refs must resolve without executing code."""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in self.walk_calls(ctx.tree):
            name = self.dotted_name(call.func)
            if name.split(".")[-1] != "JobSpec":
                continue
            fn_arg = self._fn_argument(call)
            if not (
                isinstance(fn_arg, ast.Constant) and isinstance(fn_arg.value, str)
            ):
                continue  # dynamic ref: runtime's problem
            problem = self._resolve(ctx, fn_arg.value)
            if problem:
                yield Finding(
                    path=ctx.path,
                    line=fn_arg.lineno,
                    col=fn_arg.col_offset,
                    code=self.meta.code,
                    message=f"JobSpec fn {fn_arg.value!r}: {problem}",
                )

    @staticmethod
    def _fn_argument(call: ast.Call) -> Optional[ast.expr]:
        for kw in call.keywords:
            if kw.arg == "fn":
                return kw.value
        return call.args[0] if call.args else None

    def _resolve(self, ctx: FileContext, ref: str) -> str:
        module_name, sep, attr = ref.partition(":")
        if not sep:
            module_name, _, attr = ref.rpartition(".")
        if not module_name or not attr:
            return "not of the form 'package.module:function'"
        root_pkg = module_name.split(".")[0]
        if root_pkg != "repro":
            return ""  # outside the repo's import graph: not checked
        if ctx.src_root is None or ctx.resolver is None:
            return ""  # no package root known (ad-hoc snippet)
        tree = ctx.resolver.module_ast(ctx.src_root, module_name)
        if tree is None:
            return f"module {module_name!r} not found under the source tree"
        first = attr.split(".")[0]
        binding = self._toplevel_binding(tree, first)
        if binding is None:
            return f"module {module_name!r} has no module-level {first!r}"
        if isinstance(binding, ast.Assign) and isinstance(
            binding.value, ast.Constant
        ):
            return f"{module_name}:{first} is a constant, not callable"
        return ""

    @staticmethod
    def _toplevel_binding(tree: ast.Module, name: str) -> Optional[ast.stmt]:
        def scan(stmts: List[ast.stmt]) -> Optional[ast.stmt]:
            for stmt in stmts:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    if stmt.name == name:
                        return stmt
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name) and target.id == name:
                            return stmt
                elif isinstance(stmt, ast.AnnAssign):
                    if (
                        isinstance(stmt.target, ast.Name)
                        and stmt.target.id == name
                    ):
                        return stmt
                elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                    for alias in stmt.names:
                        bound = alias.asname or alias.name.split(".")[0]
                        if bound == name:
                            return stmt
                elif isinstance(stmt, (ast.If, ast.Try)):
                    bodies = [stmt.body]
                    if isinstance(stmt, ast.If):
                        bodies.append(stmt.orelse)
                    else:
                        bodies.extend([stmt.orelse, stmt.finalbody])
                        bodies.extend(h.body for h in stmt.handlers)
                    for body in bodies:
                        found = scan(body)
                        if found is not None:
                            return found
            return None

        return scan(tree.body)
