"""Rule plugin registry and the per-file context rules run against.

A rule is a class deriving :class:`LintRule`, decorated with
:func:`rule` to claim a unique ``RPRxxx`` code. The engine instantiates
every registered rule once per run and calls :meth:`LintRule.check`
with a parsed :class:`FileContext`; rules yield
:class:`~repro.lint.findings.Finding` records and never mutate the
context. Registration at import time means dropping a new module with a
decorated class into :mod:`repro.lint.rules` is the whole plugin story.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Type

from repro.errors import ReproError
from repro.lint.findings import Finding


class LintError(ReproError):
    """Configuration errors inside the linter itself (not findings)."""


_CODE_RE = re.compile(r"^RPR\d{3}$")


@dataclass(frozen=True)
class RuleMeta:
    """Catalog entry for one rule (drives ``--list-rules`` and docs).

    Attributes:
        code: unique ``RPRxxx`` identifier.
        name: short kebab-case slug, e.g. ``"unseeded-rng"``.
        summary: one-line description of what the rule flags.
        rationale: which repo contract the rule protects.
    """

    code: str
    name: str
    summary: str
    rationale: str = ""


@dataclass
class FileContext:
    """Everything a rule may look at for one source file.

    Attributes:
        path: display path (module-relative under a ``repro`` package).
        module: posix path rooted at the ``repro`` package, e.g.
            ``"repro/exec/cache.py"``; ``None`` for files outside one
            (fixtures, tools). Module-scoped rules key off this.
        source: raw file text.
        lines: ``source.splitlines()``.
        tree: parsed AST.
        parents: child node -> parent node, for wrapping checks.
        docstrings: the ``ast.Constant`` nodes that are docstrings
            (skipped by literal-scanning rules).
        src_root: absolute directory containing the top-level ``repro``
            package, when known -- the import-graph walk of ``RPR106``
            resolves ``repro.*`` modules against it.
        resolver: shared cross-file module-AST cache (one per run).
    """

    path: str
    module: Optional[str]
    source: str
    lines: List[str]
    tree: ast.AST
    parents: Dict[int, ast.AST] = field(default_factory=dict)
    docstrings: Tuple[ast.Constant, ...] = ()
    src_root: Optional[str] = None
    resolver: Optional["ModuleResolver"] = None

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node``, or ``None`` at the root."""
        return self.parents.get(id(node))


class ModuleResolver:
    """Parses sibling modules on demand, without executing them.

    ``RPR106`` needs to know whether ``"repro.sim.runner:run_mission_payload"``
    names a real module-level binding. Importing the module would run
    arbitrary code; instead the resolver maps the dotted module to a
    file under ``src_root`` and parses it, caching one AST per module
    for the whole lint run.
    """

    def __init__(self) -> None:
        self._cache: Dict[str, Optional[ast.Module]] = {}

    def module_ast(self, src_root: str, dotted: str) -> Optional[ast.Module]:
        """The parsed AST of ``dotted`` under ``src_root``, or ``None``.

        ``None`` means the module file does not exist (or failed to
        parse, which a scan of that file reports separately).
        """
        key = f"{src_root}::{dotted}"
        if key not in self._cache:
            self._cache[key] = self._load(src_root, dotted)
        return self._cache[key]

    @staticmethod
    def _load(src_root: str, dotted: str) -> Optional[ast.Module]:
        base = os.path.join(src_root, *dotted.split("."))
        for candidate in (base + ".py", os.path.join(base, "__init__.py")):
            if os.path.isfile(candidate):
                try:
                    with open(candidate, "r", encoding="utf-8") as fh:
                        return ast.parse(fh.read(), filename=candidate)
                except (OSError, SyntaxError):
                    return None
        return None


class LintRule:
    """Base class for rules; subclasses set ``meta`` via :func:`rule`."""

    meta: RuleMeta

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for ``ctx``; subclasses must implement."""
        raise NotImplementedError

    # -- shared AST helpers (used by several rules) -----------------------

    @staticmethod
    def dotted_name(node: ast.AST) -> str:
        """``"np.random.default_rng"`` for a Name/Attribute chain, else ``""``."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return ""

    @staticmethod
    def walk_calls(tree: ast.AST) -> Iterator[ast.Call]:
        """All ``ast.Call`` nodes in ``tree``."""
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                yield node


#: code -> rule class. One instance per engine run.
_RULES: Dict[str, Type[LintRule]] = {}


def rule(
    code: str, name: str, summary: str, rationale: str = ""
) -> Callable[[Type[LintRule]], Type[LintRule]]:
    """Class decorator registering a :class:`LintRule` under ``code``.

    Raises:
        LintError: for a malformed code or a code claimed twice.
    """

    def decorate(cls: Type[LintRule]) -> Type[LintRule]:
        if not _CODE_RE.match(code):
            raise LintError(f"rule code must match RPRxxx, got {code!r}")
        if code in _RULES:
            raise LintError(f"rule code {code} registered twice")
        cls.meta = RuleMeta(code=code, name=name, summary=summary, rationale=rationale)
        _RULES[code] = cls
        return cls

    return decorate


def all_rules() -> List[LintRule]:
    """Fresh instances of every registered rule, sorted by code."""
    return [_RULES[code]() for code in sorted(_RULES)]


def rule_catalog() -> List[RuleMeta]:
    """Metadata of every registered rule, sorted by code."""
    return [_RULES[code].meta for code in sorted(_RULES)]


def build_parents(tree: ast.AST) -> Dict[int, ast.AST]:
    """Child-id -> parent map over ``tree``."""
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def collect_docstrings(tree: ast.AST) -> Tuple[ast.Constant, ...]:
    """The Constant nodes serving as module/class/function docstrings."""
    out: List[ast.Constant] = []
    nodes: Iterable[ast.AST] = ast.walk(tree)
    for node in nodes:
        if isinstance(
            node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                out.append(body[0].value)
    return tuple(out)
