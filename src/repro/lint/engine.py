"""The lint engine: file discovery, rule dispatch, report assembly.

One :func:`lint_paths` call scans files in deterministic (sorted)
order, runs every registered rule per file, applies inline
suppressions, fingerprints what is left, and partitions it against the
committed baseline. The result is a :class:`LintReport` the CLI
renders as text or as a ``repro.lint.report/v1`` JSON document.

Example:
    >>> from repro.lint.engine import lint_source
    >>> bad = "import numpy as np\\nrng = np.random.default_rng()\\n"
    >>> [f.code for f in lint_source(bad, path="repro/sim/snippet.py")]
    ['RPR101']
    >>> good = "import os\\nnames = sorted(os.listdir('.'))\\n"
    >>> lint_source(good, path="repro/sim/snippet.py")
    []
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import schemas
from repro.lint import rules as _rules  # noqa: F401  (registers the rules)
from repro.lint import suppress
from repro.lint.baseline import Baseline
from repro.lint.findings import Finding, attach_fingerprints
from repro.lint.registry import (
    FileContext,
    ModuleResolver,
    all_rules,
    build_parents,
    collect_docstrings,
)


def split_repro_path(path: str) -> Tuple[Optional[str], Optional[str]]:
    """``(module, src_root)`` for a file under a ``repro`` package.

    The module path is rooted at the *last* path component named
    ``repro`` (``.../src/repro/exec/cache.py`` ->
    ``"repro/exec/cache.py"``); ``src_root`` is the absolute directory
    containing that package. Files outside any ``repro`` tree return
    ``(None, None)`` and are still linted, just without module-scoped
    rules.
    """
    absolute = os.path.abspath(path)
    parts = absolute.replace(os.sep, "/").split("/")
    for idx in range(len(parts) - 1, -1, -1):
        if parts[idx] == "repro":
            module = "/".join(parts[idx:])
            src_root = "/".join(parts[:idx]) or "/"
            return module, src_root
    return None, None


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under ``paths``, deterministically ordered."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for dirpath, _dirnames, filenames in sorted(os.walk(path)):
            if "__pycache__" in dirpath:
                continue
            for name in sorted(filenames):
                if name.endswith(".py"):
                    out.append(os.path.join(dirpath, name))
    return out


def lint_source(
    source: str,
    path: str = "<string>",
    src_root: Optional[str] = None,
    resolver: Optional[ModuleResolver] = None,
) -> List[Finding]:
    """Lint one source text; the core primitive everything else wraps.

    Args:
        source: Python source code.
        path: display path; when it contains a ``repro`` component the
            module-scoped rules activate for the corresponding module.
        src_root: package root for cross-module resolution (derived
            from ``path`` when omitted).
        resolver: shared :class:`ModuleResolver` (one per run).

    Returns:
        Fingerprinted findings, sorted by location, suppressions and
        meta-diagnostics applied -- but *not* baseline-filtered.
    """
    module, derived_root = split_repro_path(path) if path != "<string>" else (None, None)
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        finding = Finding(
            path=path,
            line=getattr(exc, "lineno", 1) or 1,
            col=(getattr(exc, "offset", 1) or 1) - 1,
            code=suppress.PARSE_ERROR,
            message=f"file does not parse: {exc}",
        )
        return attach_fingerprints([finding], lines)
    ctx = FileContext(
        path=module or path,
        module=module,
        source=source,
        lines=lines,
        tree=tree,
        parents=build_parents(tree),
        docstrings=collect_docstrings(tree),
        src_root=src_root or derived_root,
        resolver=resolver or ModuleResolver(),
    )
    raw: List[Finding] = []
    for lint_rule in all_rules():
        raw.extend(lint_rule.check(ctx))
    kept, _silenced = suppress.apply(ctx.path, raw, suppress.scan(source))
    return attach_fingerprints(kept, lines)


@dataclass
class LintReport:
    """Aggregate outcome of one lint run.

    Attributes:
        files_scanned: number of files visited.
        findings: new findings (not in the baseline), sorted.
        grandfathered: findings matched by baseline entries.
        stale_baseline: baseline fingerprints with no matching finding.
    """

    files_scanned: int = 0
    findings: List[Finding] = field(default_factory=list)
    grandfathered: List[Finding] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """0 when clean (ignoring grandfathered findings), else 1."""
        return 1 if self.findings else 0

    def to_dict(self) -> Dict[str, object]:
        """The ``repro.lint.report/v1`` JSON document."""
        return {
            "schema": schemas.LINT_REPORT_SCHEMA,
            "files_scanned": self.files_scanned,
            "findings": [f.to_dict() for f in self.findings],
            "grandfathered": [f.to_dict() for f in self.grandfathered],
            "stale_baseline": list(self.stale_baseline),
            "summary": {
                "new": len(self.findings),
                "grandfathered": len(self.grandfathered),
                "stale_baseline": len(self.stale_baseline),
            },
        }


def lint_paths(
    paths: Sequence[str], baseline: Optional[Baseline] = None
) -> LintReport:
    """Lint every Python file under ``paths`` against ``baseline``."""
    resolver = ModuleResolver()
    all_findings: List[Finding] = []
    files = iter_python_files(paths)
    for file_path in files:
        with open(file_path, "r", encoding="utf-8") as fh:
            source = fh.read()
        all_findings.extend(
            lint_source(source, path=file_path, resolver=resolver)
        )
    all_findings.sort()
    if baseline is None:
        baseline = Baseline()
    new, grandfathered, stale = baseline.partition(all_findings)
    return LintReport(
        files_scanned=len(files),
        findings=new,
        grandfathered=grandfathered,
        stale_baseline=stale,
    )
