"""``repro.lint`` -- the determinism-contract static analyzer.

The byte-identity guarantees this repo makes (serial == pooled ==
cached execution, replayable flight traces, content-hashed job
identity) rest on source-level invariants: spawned-SeedSequence-only
randomness, no wall clock on hashed paths, sorted filesystem
iteration, canonical JSON, registered schema tokens, statically
resolvable job callables. ``repro.lint`` machine-checks them at review
time:

    python -m repro.lint src                # text findings, exit 1 if any
    python -m repro.lint src --format json  # machine-readable report
    python -m repro.lint --list-rules       # the rule catalog

Rules are AST-based plugins (see :mod:`repro.lint.registry`), findings
can be suppressed inline with ``# repro: noqa[RPRxxx] reason`` (reason
mandatory) or grandfathered in a shrink-only committed baseline
(:mod:`repro.lint.baseline`). ``docs/linting.md`` is the rule catalog.
"""

from repro.lint.baseline import Baseline
from repro.lint.engine import LintReport, iter_python_files, lint_paths, lint_source
from repro.lint.findings import Finding
from repro.lint.registry import (
    FileContext,
    LintError,
    LintRule,
    RuleMeta,
    all_rules,
    rule,
    rule_catalog,
)

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "LintError",
    "LintReport",
    "LintRule",
    "RuleMeta",
    "all_rules",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "rule",
    "rule_catalog",
]
