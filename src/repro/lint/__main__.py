"""CLI entry point: ``python -m repro.lint [paths] [options]``.

Exit codes: ``0`` clean, ``1`` new findings (or stale baseline entries
under ``--check-baseline``), ``2`` usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.engine import LintReport, lint_paths
from repro.lint.registry import LintError, rule_catalog


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (separate for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Determinism-contract static analyzer (rules RPR1xx).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="committed baseline of grandfathered findings",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite --baseline with the current findings and exit 0",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="also fail when the baseline holds stale (fixed) entries",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _render_text(report: LintReport) -> str:
    lines: List[str] = []
    for finding in report.findings:
        lines.append(f"{finding.location()}: {finding.code} {finding.message}")
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    for key in report.stale_baseline:
        lines.append(f"baseline: stale entry {key} (finding fixed; remove it)")
    summary = (
        f"{report.files_scanned} files scanned: "
        f"{len(report.findings)} new finding(s), "
        f"{len(report.grandfathered)} grandfathered, "
        f"{len(report.stale_baseline)} stale baseline entr(y/ies)"
    )
    lines.append(summary)
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for meta in rule_catalog():
            print(f"{meta.code} {meta.name}: {meta.summary}")
        return 0

    baseline: Optional[Baseline] = None
    if args.baseline is not None:
        try:
            baseline = Baseline.load(args.baseline)
        except LintError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    report = lint_paths(args.paths, baseline=baseline)

    if args.write_baseline:
        if args.baseline is None:
            print("error: --write-baseline requires --baseline", file=sys.stderr)
            return 2
        assert baseline is not None
        baseline.save(args.baseline, report.findings + report.grandfathered)
        total = len(report.findings) + len(report.grandfathered)
        print(f"baseline written: {total} entr(y/ies) -> {args.baseline}")
        return 0

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
    else:
        print(_render_text(report))

    code = report.exit_code
    if args.check_baseline and report.stale_baseline:
        code = 1
    return code


if __name__ == "__main__":
    sys.exit(main())
