"""The :class:`Finding` record every lint rule produces.

A finding is plain data -- code, location, message -- plus a
*fingerprint* that identifies the finding across unrelated edits: the
hash covers the rule code, the module-relative path, the stripped
source line, and an occurrence index, but **not** the line number, so
inserting code above a grandfathered finding does not turn it into a
"new" one. Fingerprints are what the committed baseline file stores.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: display path of the file (module-relative when the file
            lives under a ``repro/`` package, as given otherwise).
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        code: rule code, e.g. ``"RPR103"``.
        message: human-readable description of the violation.
        snippet: the stripped source line, for fingerprinting and text
            output; attached by the engine.
        fingerprint: stable identity used by the baseline; attached by
            the engine via :func:`attach_fingerprints`.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    snippet: str = ""
    fingerprint: str = ""

    def location(self) -> str:
        """``path:line:col`` prefix used by the text formatter."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form for the JSON report (sorted-key friendly)."""
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }


def _fingerprint(code: str, path: str, snippet: str, occurrence: int) -> str:
    blob = "\x00".join((code, path, snippet, str(occurrence)))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]


def attach_fingerprints(
    findings: Sequence[Finding], lines: Sequence[str]
) -> List[Finding]:
    """Fill ``snippet`` and ``fingerprint`` on raw rule output.

    Occurrence indices disambiguate identical snippets tripping the
    same rule twice in one file (each occurrence gets its own baseline
    entry instead of one entry silently covering all of them).

    Args:
        findings: raw findings for one file, any order.
        lines: that file's source lines (1-based ``finding.line``).
    """
    seen: Dict[Tuple[str, str, str], int] = {}
    out = []
    for finding in sorted(findings):
        snippet = ""
        if 1 <= finding.line <= len(lines):
            snippet = lines[finding.line - 1].strip()
        key = (finding.code, finding.path, snippet)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        out.append(
            replace(
                finding,
                snippet=snippet,
                fingerprint=_fingerprint(
                    finding.code, finding.path, snippet, occurrence
                ),
            )
        )
    return out
