"""Inline suppressions: ``# repro: noqa[RPRxxx] reason``.

A suppression silences named rule codes on its own physical line, and
**must carry a reason** -- an unexplained suppression is itself a
finding (``RPR001``), because "trust me" is exactly the review posture
the determinism contracts exist to eliminate. Suppressions that never
match a finding are reported too (``RPR002``): stale noqa comments
otherwise accumulate and hide future regressions on the same line.

Blanket suppressions (no code list) are deliberately unsupported.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.lint.findings import Finding

#: Meta-code: malformed suppression (missing reason / bad code list).
BAD_SUPPRESSION = "RPR001"

#: Meta-code: suppression that silenced nothing.
UNUSED_SUPPRESSION = "RPR002"

#: Meta-code: file that does not parse at all.
PARSE_ERROR = "RPR000"

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\s*(\[([^\]]*)\])?\s*(.*)$")
_CODE_RE = re.compile(r"^RPR\d{3}$")


@dataclass
class Suppression:
    """One parsed ``# repro: noqa[...]`` comment.

    Attributes:
        line: 1-based physical line the comment sits on.
        codes: rule codes it silences.
        reason: free-text justification (required).
        valid: whether the comment is well-formed; invalid suppressions
            silence nothing.
        used: set by the engine when a finding was actually silenced.
    """

    line: int
    codes: Tuple[str, ...]
    reason: str
    valid: bool
    used: bool = False


def scan(source: str) -> List[Suppression]:
    """All suppression comments in ``source`` (valid or not).

    Only genuine ``COMMENT`` tokens count: a docstring or string
    literal *describing* the noqa syntax never suppresses (or trips
    the malformed-suppression check).
    """
    out: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return out  # unparseable files are reported as RPR000 elsewhere
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        idx = tok.start[0]
        match = _NOQA_RE.search(tok.string)
        if match is None:
            continue
        bracket, code_list, reason = match.groups()
        reason = reason.strip()
        codes: Tuple[str, ...] = ()
        valid = True
        if bracket is None:
            valid = False  # blanket noqa: must name codes
        else:
            parsed = tuple(c.strip() for c in code_list.split(",") if c.strip())
            if not parsed or not all(_CODE_RE.match(c) for c in parsed):
                valid = False
            codes = parsed
        if not reason:
            valid = False
        out.append(Suppression(line=idx, codes=codes, reason=reason, valid=valid))
    return out


def apply(
    path: str, findings: Sequence[Finding], suppressions: Sequence[Suppression]
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (kept, silenced) and add meta-findings.

    Meta-findings (``RPR001`` for malformed, ``RPR002`` for unused
    suppressions) are appended to the *kept* list: they are real
    problems in the file being linted.

    Args:
        path: display path used for the meta-findings.
        findings: raw rule output for one file.
        suppressions: result of :func:`scan` over the same file.
    """
    by_line: Dict[int, Suppression] = {s.line: s for s in suppressions if s.valid}
    kept: List[Finding] = []
    silenced: List[Finding] = []
    for finding in findings:
        sup = by_line.get(finding.line)
        if sup is not None and finding.code in sup.codes:
            sup.used = True
            silenced.append(finding)
        else:
            kept.append(finding)
    for sup in suppressions:
        if not sup.valid:
            kept.append(
                Finding(
                    path=path,
                    line=sup.line,
                    col=0,
                    code=BAD_SUPPRESSION,
                    message=(
                        "malformed suppression: use "
                        "'# repro: noqa[RPRxxx] <reason>' with explicit "
                        "codes and a non-empty reason"
                    ),
                )
            )
        elif not sup.used:
            codes = ",".join(sup.codes)
            kept.append(
                Finding(
                    path=path,
                    line=sup.line,
                    col=0,
                    code=UNUSED_SUPPRESSION,
                    message=f"unused suppression for [{codes}]: nothing to silence here",
                )
            )
    return kept, silenced
