"""Rendered-frame detection channel: the faithful closed-loop path.

Where :class:`~repro.mission.detector_model.CalibratedDetectorModel`
samples detections from a calibrated probability, this channel actually
*renders* what the Himax camera would see at the drone's pose (objects
projected by the camera model, drawn by the dataset renderer, degraded by
the onboard-camera model) and runs a trained numpy SSD on the frame. It
is slower, so the Table III benchmark uses the calibrated model, but this
path validates that model and powers the end-to-end example.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.datasets.himax_like import himax_degrade
from repro.datasets.shapes import draw_background, draw_bottle, draw_can
from repro.drone.dynamics import DroneState
from repro.mission.detector_model import DetectionChannel
from repro.sensors.camera import HIMAX_INTRINSICS, ObjectObservation
from repro.vision.boxes import iou_matrix
from repro.vision.ssd import SSDDetector
from repro.world.objects import ObjectClass


class RenderedDetectorChannel(DetectionChannel):
    """Runs a real detector on rendered camera frames.

    The tiny experiment detectors run at 64x48 -- 5x below the QVGA
    sensor -- so an object that spans 25 px on the real sensor would span
    5 px here, below anything the reduced model (or its anchors) can
    represent. The channel therefore renders a *zoomed centre crop*:
    physically, the low-resolution sensor is paired with a narrower-FOV
    lens so that the apparent object sizes match the training
    distribution. The same transform is applied to the ground-truth boxes
    used for match scoring, keeping the geometry consistent.

    Args:
        detector: a trained (typically tiny-spec) SSD.
        score_threshold: detection confidence cutoff.
        iou_threshold: IoU between a predicted box and an object's
            projected box for the detection to count.
        zoom: centre-crop magnification compensating the resolution
            reduction (1.0 = full QVGA FOV).
        render_seed: seed of the background renderer (the scene background
            is not tracked by the simulator, so it is procedurally
            generated per frame).
    """

    def __init__(
        self,
        detector: SSDDetector,
        score_threshold: float = 0.3,
        iou_threshold: float = 0.3,
        zoom: float = 2.5,
        render_seed: int = 0,
    ):
        if zoom <= 0.0:
            raise ValueError("zoom must be positive")
        self.detector = detector
        self.score_threshold = score_threshold
        self.iou_threshold = iou_threshold
        self.zoom = zoom
        self._render_rng = np.random.default_rng(render_seed)

    def _zoomed_bbox(self, bbox):
        """Scale a QVGA-pixel bbox about the image centre by ``zoom``."""
        cx = HIMAX_INTRINSICS.width_px / 2.0
        cy = HIMAX_INTRINSICS.height_px / 2.0
        xmin, ymin, xmax, ymax = bbox
        return (
            cx + (xmin - cx) * self.zoom,
            cy + (ymin - cy) * self.zoom,
            cx + (xmax - cx) * self.zoom,
            cy + (ymax - cy) * self.zoom,
        )

    def render_scene(
        self,
        observations: Sequence[ObjectObservation],
        state: Optional[DroneState] = None,
    ):
        """Render the degraded frame plus the drawn ground-truth boxes.

        The zoomed projection can push a floor-standing object's base
        below the frame; the renderer clamps the base back into view
        (physically: the camera is pitched slightly down), and the
        ground truth returned here is the *drawn* geometry, so matching
        stays consistent with the pixels.

        Returns:
            ``(frame, gt_boxes, indices)``: the ``(3, H, W)`` image,
            normalized corner boxes of the drawn objects, and the index
            of the source observation for each box.
        """
        h, w = self.detector.spec.input_hw
        img = np.zeros((h, w, 3), dtype=np.float64)
        draw_background(img, self._render_rng)
        sx = w / HIMAX_INTRINSICS.width_px
        sy = h / HIMAX_INTRINSICS.height_px
        boxes = []
        indices = []
        order = sorted(
            range(len(observations)), key=lambda i: -observations[i].distance_m
        )
        # Draw far objects first so near ones occlude them.
        for i in order:
            obs = observations[i]
            xmin, ymin, xmax, ymax = self._zoomed_bbox(obs.bbox)
            cx = (xmin + xmax) / 2.0 * sx
            height = (ymax - ymin) * sy
            base_y = min(ymax * sy, 0.97 * h)
            if obs.obj.object_class is ObjectClass.BOTTLE:
                drawn = draw_bottle(img, cx, base_y, height, self._render_rng)
            else:
                drawn = draw_can(img, cx, base_y, height, self._render_rng)
            if drawn is not None:
                bx0, by0, bx1, by1 = drawn
                boxes.append([bx0 / w, by0 / h, bx1 / w, by1 / h])
                indices.append(i)
        chw = np.ascontiguousarray(img.transpose(2, 0, 1))
        # Motion blur grows with the apparent motion during the exposure.
        speed = state.speed() if state is not None else 0.0
        blur = 1 + min(3, int(speed * 2.0 + abs(state.yaw_rate if state else 0.0)))
        frame = himax_degrade(chw, self._render_rng, blur_passes=blur)
        return frame, np.array(boxes).reshape(-1, 4), indices

    def render_frame(
        self,
        observations: Sequence[ObjectObservation],
        state: Optional[DroneState] = None,
    ) -> np.ndarray:
        """Render only the degraded camera frame (see :meth:`render_scene`)."""
        frame, _boxes, _indices = self.render_scene(observations, state)
        return frame

    def detect(
        self,
        observations: Sequence[ObjectObservation],
        state: DroneState,
        rng: np.random.Generator,
    ) -> List[ObjectObservation]:
        if not observations:
            return []
        frame, gt_boxes, indices = self.render_scene(observations, state)
        if gt_boxes.shape[0] == 0:
            return []
        predictions = self.detector.predict(
            frame[None], score_threshold=self.score_threshold
        )[0]
        if not predictions:
            return []
        detected: List[ObjectObservation] = []
        pred_boxes = np.array([p.box for p in predictions]).reshape(-1, 4)
        ious = iou_matrix(gt_boxes, pred_boxes)
        for row, obs_index in enumerate(indices):
            obs = observations[obs_index]
            for j, pred in enumerate(predictions):
                if (
                    ious[row, j] >= self.iou_threshold
                    and pred.label == obs.obj.object_class.label_id
                ):
                    detected.append(obs)
                    break
        return detected
