"""Training loop for the SSD detectors (paper Sec. IV-A).

The paper trains on OpenImages with RMSProp, lr 8e-4 decayed by 0.95
every 24 epochs, batch 24, photometric augmentations with p = 0.5; it
then fine-tunes (optionally with QAT) on the Himax dataset at lr 1e-4
decayed by 0.95 every 10 epochs. :class:`TrainingConfig` encodes those
hyperparameters, scaled to whatever dataset size the caller provides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.datasets.base import DetectionDataset, LabeledImage
from repro.datasets.augment import photometric_augment
from repro.nn.optim import ExponentialDecay, RMSProp
from repro.vision.ssd import SSDDetector


@dataclass
class TrainingConfig:
    """Hyperparameters of one training phase.

    Attributes:
        epochs: passes over the dataset.
        batch_size: minibatch size (24 in the paper; smaller for the
            laptop-scale models).
        learning_rate: initial learning rate.
        decay_rate: exponential decay factor (0.95 in the paper).
        decay_epochs: epochs between decays (24 pre-train / 10 fine-tune).
        augment_prob: per-transform augmentation probability.
        seed: shuffling/augmentation seed.
    """

    epochs: int = 10
    batch_size: int = 8
    learning_rate: float = 8e-4
    decay_rate: float = 0.95
    decay_epochs: int = 24
    augment_prob: float = 0.5
    seed: Optional[int] = 0


def paper_pretrain_config(epochs: int = 10, batch_size: int = 8) -> TrainingConfig:
    """The OpenImages training recipe (lr 8e-4, decay every 24 epochs)."""
    return TrainingConfig(
        epochs=epochs,
        batch_size=batch_size,
        learning_rate=8e-4,
        decay_rate=0.95,
        decay_epochs=24,
    )


def paper_finetune_config(epochs: int = 5, batch_size: int = 8) -> TrainingConfig:
    """The Himax fine-tuning recipe (lr 1e-4, decay every 10 epochs)."""
    return TrainingConfig(
        epochs=epochs,
        batch_size=batch_size,
        learning_rate=1e-4,
        decay_rate=0.95,
        decay_epochs=10,
    )


@dataclass
class TrainingLog:
    """Per-epoch mean losses."""

    epoch_losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


class Trainer:
    """Trains an :class:`~repro.vision.ssd.SSDDetector` on a dataset.

    Args:
        detector: the model to train (modified in place).
        config: training hyperparameters.
        qat: optional weight fake-quantizer
            (:class:`repro.quantization.qat.QATWeightQuantizer`); when
            given, every step trains through quantized weights.
    """

    def __init__(
        self,
        detector: SSDDetector,
        config: Optional[TrainingConfig] = None,
        qat=None,
    ):
        self.detector = detector
        self.config = config or TrainingConfig()
        self.qat = qat
        self._rng = np.random.default_rng(self.config.seed)

    def fit(self, dataset: DetectionDataset) -> TrainingLog:
        """Run the configured number of epochs; returns the loss log."""
        cfg = self.config
        steps_per_epoch = max(1, (len(dataset) + cfg.batch_size - 1) // cfg.batch_size)
        schedule = ExponentialDecay(
            cfg.learning_rate,
            decay_rate=cfg.decay_rate,
            decay_steps=cfg.decay_epochs * steps_per_epoch,
        )
        optimizer = RMSProp(self.detector.parameters(), schedule)
        log = TrainingLog()
        self.detector.train(True)
        for _epoch in range(cfg.epochs):
            losses = []
            for images, boxes, labels in dataset.batches(cfg.batch_size, self._rng):
                if cfg.augment_prob > 0.0:
                    augmented = [
                        photometric_augment(
                            LabeledImage(images[i], boxes[i], labels[i]),
                            self._rng,
                            p=cfg.augment_prob,
                        )
                        for i in range(images.shape[0])
                    ]
                    images = np.stack([a.image for a in augmented])
                    boxes = [a.boxes for a in augmented]
                    labels = [a.labels for a in augmented]
                losses.append(self._step(optimizer, images, boxes, labels))
            log.epoch_losses.append(float(np.mean(losses)))
        self.detector.train(False)
        return log

    def _step(self, optimizer, images, boxes, labels) -> float:
        if self.qat is None:
            return self.detector.train_step(optimizer, images, boxes, labels)
        with self.qat.quantized_weights(self.detector):
            self.detector.zero_grad()
            loss, grads = self.detector.compute_loss(images, boxes, labels)
            self.detector.backward(grads)
        optimizer.step()
        return loss
