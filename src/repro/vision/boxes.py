"""Bounding-box representations and IoU.

Boxes are numpy arrays of shape ``(N, 4)``. Two layouts are used:

- *corner*: ``[xmin, ymin, xmax, ymax]``, normalized to ``[0, 1]``;
- *center*: ``[cx, cy, w, h]``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def _check_boxes(boxes: np.ndarray) -> np.ndarray:
    boxes = np.asarray(boxes, dtype=np.float64)
    if boxes.ndim != 2 or boxes.shape[1] != 4:
        raise ShapeError(f"boxes must be (N, 4), got {boxes.shape}")
    return boxes


def corner_to_center(boxes: np.ndarray) -> np.ndarray:
    """Convert corner boxes to center boxes."""
    boxes = _check_boxes(boxes)
    out = np.empty_like(boxes)
    out[:, 0] = (boxes[:, 0] + boxes[:, 2]) / 2.0
    out[:, 1] = (boxes[:, 1] + boxes[:, 3]) / 2.0
    out[:, 2] = boxes[:, 2] - boxes[:, 0]
    out[:, 3] = boxes[:, 3] - boxes[:, 1]
    return out


def center_to_corner(boxes: np.ndarray) -> np.ndarray:
    """Convert center boxes to corner boxes."""
    boxes = _check_boxes(boxes)
    out = np.empty_like(boxes)
    out[:, 0] = boxes[:, 0] - boxes[:, 2] / 2.0
    out[:, 1] = boxes[:, 1] - boxes[:, 3] / 2.0
    out[:, 2] = boxes[:, 0] + boxes[:, 2] / 2.0
    out[:, 3] = boxes[:, 1] + boxes[:, 3] / 2.0
    return out


def box_area(boxes: np.ndarray) -> np.ndarray:
    """Areas of corner boxes; degenerate boxes have area 0."""
    boxes = _check_boxes(boxes)
    w = np.clip(boxes[:, 2] - boxes[:, 0], 0.0, None)
    h = np.clip(boxes[:, 3] - boxes[:, 1], 0.0, None)
    return w * h


def iou_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise IoU between corner boxes ``a`` (N, 4) and ``b`` (M, 4)."""
    a = _check_boxes(a)
    b = _check_boxes(b)
    lt = np.maximum(a[:, None, :2], b[None, :, :2])
    rb = np.minimum(a[:, None, 2:], b[None, :, 2:])
    wh = np.clip(rb - lt, 0.0, None)
    inter = wh[..., 0] * wh[..., 1]
    union = box_area(a)[:, None] + box_area(b)[None, :] - inter
    with np.errstate(divide="ignore", invalid="ignore"):
        iou = np.where(union > 0.0, inter / union, 0.0)
    return iou
