"""The SSD-MobileNetV2 detector.

``SSDDetector`` ties together the backbone, optional extra downsampling
feature blocks, per-level prediction heads, anchor generation, target
matching with hard-negative mining, and post-processing (score threshold
+ NMS). Two ready-made specifications are provided:

- :func:`full_scale_spec` -- the paper's 320x240 deployment architecture
  (extra feature levels + dense 3x3 heads), used for the cost analysis of
  Table II;
- :func:`tiny_spec` -- a reduced-resolution sibling with SSDLite
  (depthwise-separable) heads that trains in minutes on a laptop, used
  for the accuracy experiments of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.nn.act import ReLU6
from repro.nn.conv import Conv2d, DepthwiseConv2d
from repro.nn.functional import conv_output_size
from repro.nn.loss import smooth_l1_loss, softmax, softmax_cross_entropy
from repro.nn.module import Module, Sequential
from repro.seeding import DEFAULT_INIT_SEED
from repro.nn.norm import BatchNorm2d
from repro.vision.anchors import AnchorLevel, generate_anchors
from repro.vision.boxcodec import BoxCodec
from repro.vision.boxes import center_to_corner
from repro.vision.matching import hard_negative_mask, match_anchors
from repro.vision.mobilenetv2 import (
    MOBILENETV2_CONFIG,
    TINY_CONFIG,
    MobileNetV2Backbone,
    make_divisible,
)
from repro.vision.nms import non_max_suppression


@dataclass(frozen=True)
class SSDSpec:
    """Architecture specification of one SSD variant.

    Attributes:
        input_hw: input image ``(height, width)`` in pixels.
        num_classes: foreground classes (2: bottle, tin can).
        width_mult: MobileNetV2 alpha.
        backbone_config: stage table passed to the backbone.
        stem_channels: unscaled stem width.
        last_channels: unscaled final-conv width.
        extras: ``(mid_channels, out_channels)`` of each extra stride-2
            feature block appended after the backbone (unscaled; scaled by
            alpha like everything else).
        head_type: ``"dense"`` (standard SSD 3x3 heads) or ``"ssdlite"``
            (depthwise-separable heads).
        anchor_scales: one scale per detection head (backbone taps first,
            then extras).
        aspect_ratios: shared anchor aspect ratios.
        name: human-readable variant name.
    """

    input_hw: Tuple[int, int]
    num_classes: int = 2
    width_mult: float = 1.0
    backbone_config: Tuple[Tuple[int, int, int, int], ...] = MOBILENETV2_CONFIG
    stem_channels: int = 32
    last_channels: int = 1280
    extras: Tuple[Tuple[int, int], ...] = ()
    head_type: str = "ssdlite"
    anchor_scales: Tuple[float, ...] = (0.25, 0.55)
    aspect_ratios: Tuple[float, ...] = (1.0, 0.5, 2.0)
    name: str = "SSD-MbV2"

    def __post_init__(self) -> None:
        if self.head_type not in ("dense", "ssdlite"):
            raise ShapeError(f"unknown head type {self.head_type!r}")


def full_scale_spec(width_mult: float = 1.0, num_classes: int = 2) -> SSDSpec:
    """The paper's deployed architecture at QVGA resolution."""
    return SSDSpec(
        input_hw=(240, 320),
        num_classes=num_classes,
        width_mult=width_mult,
        backbone_config=MOBILENETV2_CONFIG,
        stem_channels=32,
        last_channels=1280,
        extras=((256, 512), (128, 256)),
        head_type="dense",
        anchor_scales=(0.2, 0.45, 0.7, 0.9),
        name=f"SSD-MbV2-{width_mult:g}",
    )


def tiny_spec(width_mult: float = 1.0, num_classes: int = 2) -> SSDSpec:
    """Laptop-scale sibling used for the training experiments (Table I)."""
    return SSDSpec(
        input_hw=(48, 64),
        num_classes=num_classes,
        width_mult=width_mult,
        backbone_config=TINY_CONFIG,
        stem_channels=16,
        last_channels=64,
        extras=(),
        head_type="ssdlite",
        anchor_scales=(0.3, 0.65),
        name=f"SSD-MbV2-tiny-{width_mult:g}",
    )


@dataclass(frozen=True)
class Detection:
    """One detected object in one image.

    Attributes:
        box: ``(xmin, ymin, xmax, ymax)`` in normalized [0, 1] coordinates.
        label: zero-based class id.
        score: confidence in [0, 1].
    """

    box: Tuple[float, float, float, float]
    label: int
    score: float


def _extra_block(in_c: int, mid_c: int, out_c: int, rng: np.random.Generator) -> Sequential:
    """SSDLite-style extra feature block: pw -> dw(s2) -> pw, all BN+ReLU6."""
    return Sequential(
        Conv2d(in_c, mid_c, 1, bias=False, rng=rng),
        BatchNorm2d(mid_c),
        ReLU6(),
        DepthwiseConv2d(mid_c, 3, stride=2, padding=1, bias=False, rng=rng),
        BatchNorm2d(mid_c),
        ReLU6(),
        Conv2d(mid_c, out_c, 1, bias=False, rng=rng),
        BatchNorm2d(out_c),
        ReLU6(),
    )


class _PredictionHead(Module):
    """Per-level predictor emitting ``(N, cells * A, outputs)``.

    ``head_type="dense"`` is a single 3x3 convolution (classic SSD);
    ``"ssdlite"`` is a depthwise-separable stack.
    """

    def __init__(
        self,
        in_channels: int,
        anchors_per_cell: int,
        outputs_per_anchor: int,
        head_type: str,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.outputs_per_anchor = outputs_per_anchor
        self.anchors_per_cell = anchors_per_cell
        out_c = anchors_per_cell * outputs_per_anchor
        if head_type == "dense":
            self.net = Sequential(
                Conv2d(in_channels, out_c, 3, padding=1, bias=True, rng=rng)
            )
        else:
            self.net = Sequential(
                DepthwiseConv2d(in_channels, 3, stride=1, padding=1, bias=False, rng=rng),
                BatchNorm2d(in_channels),
                ReLU6(),
                Conv2d(in_channels, out_c, 1, bias=True, rng=rng),
            )
        self._feat_shape: Optional[Tuple[int, ...]] = None

    def forward(self, feat: np.ndarray) -> np.ndarray:
        out = self.net(feat)
        n, _, fh, fw = out.shape
        self._feat_shape = (n, fh, fw)
        out = out.reshape(n, self.anchors_per_cell, self.outputs_per_anchor, fh, fw)
        # -> (N, fh, fw, A, O): cells row-major, anchors interleaved per cell
        # to match the anchor generator's layout.
        out = out.transpose(0, 3, 4, 1, 2)
        return out.reshape(n, fh * fw * self.anchors_per_cell, self.outputs_per_anchor)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._feat_shape is None:
            raise ShapeError("backward called before forward")
        n, fh, fw = self._feat_shape
        g = grad_out.reshape(n, fh, fw, self.anchors_per_cell, self.outputs_per_anchor)
        g = g.transpose(0, 3, 4, 1, 2).reshape(
            n, self.anchors_per_cell * self.outputs_per_anchor, fh, fw
        )
        return self.net.backward(g)


class SSDDetector(Module):
    """Full detector: backbone + extras + heads + codec + post-processing.

    Args:
        spec: architecture specification.
        rng: weight-initializer RNG.
    """

    def __init__(self, spec: SSDSpec, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(DEFAULT_INIT_SEED)
        self.spec = spec
        self.codec = BoxCodec()
        self.backbone = MobileNetV2Backbone(
            width_mult=spec.width_mult,
            in_channels=3,
            config=spec.backbone_config,
            stem_channels=spec.stem_channels,
            last_channels=spec.last_channels,
            rng=rng,
        )
        level_channels = self.backbone.tap_channels()
        self._extra_names: List[str] = []
        c_in = level_channels[-1]
        for i, (mid, out) in enumerate(spec.extras):
            mid_c = make_divisible(mid * min(spec.width_mult, 1.0) if spec.width_mult < 1.0 else mid)
            out_c = make_divisible(out * min(spec.width_mult, 1.0) if spec.width_mult < 1.0 else out)
            block = _extra_block(c_in, mid_c, out_c, rng)
            name = f"extra{i}"
            self.register_child(name, block)
            self._extra_names.append(name)
            level_channels.append(out_c)
            c_in = out_c
        self.level_channels = level_channels

        if len(spec.anchor_scales) != len(level_channels):
            raise ShapeError(
                f"{len(spec.anchor_scales)} anchor scales for "
                f"{len(level_channels)} feature levels"
            )
        self.feature_shapes = self._trace_feature_shapes()
        self.anchor_levels = tuple(
            AnchorLevel(
                feature_shape=shape,
                scale=scale,
                aspect_ratios=spec.aspect_ratios,
            )
            for shape, scale in zip(self.feature_shapes, spec.anchor_scales)
        )
        self.anchors_center = generate_anchors(self.anchor_levels)
        self.anchors_corner = center_to_corner(self.anchors_center)
        a_per_cell = len(spec.aspect_ratios)
        self._head_names_conf: List[str] = []
        self._head_names_loc: List[str] = []
        for i, ch in enumerate(level_channels):
            conf = _PredictionHead(ch, a_per_cell, spec.num_classes + 1, spec.head_type, rng)
            loc = _PredictionHead(ch, a_per_cell, 4, spec.head_type, rng)
            self.register_child(f"conf_head{i}", conf)
            self.register_child(f"loc_head{i}", loc)
            self._head_names_conf.append(f"conf_head{i}")
            self._head_names_loc.append(f"loc_head{i}")

    # -- shape tracing -----------------------------------------------------

    def _trace_feature_shapes(self) -> List[Tuple[int, int]]:
        """Each feature level's (fh, fw), computed without running data."""
        h, w = self.spec.input_hw
        h = conv_output_size(h, 3, 2, 1)  # stem
        w = conv_output_size(w, 3, 2, 1)
        shapes = []
        block_idx = 0
        for t, c, n, s in self.spec.backbone_config:
            for i in range(n):
                stride = s if i == 0 else 1
                if stride == 2:
                    h = conv_output_size(h, 3, 2, 1)
                    w = conv_output_size(w, 3, 2, 1)
                if block_idx in self.backbone.tap_indices:
                    shapes.append((h, w))
                block_idx += 1
        shapes.append((h, w))  # final backbone conv keeps the spatial size
        for _ in self.spec.extras:
            h = conv_output_size(h, 3, 2, 1)
            w = conv_output_size(w, 3, 2, 1)
            shapes.append((h, w))
        return shapes

    @property
    def num_anchors(self) -> int:
        return self.anchors_center.shape[0]

    def forward_features(self, images: np.ndarray) -> List[np.ndarray]:
        """All head-attached feature maps (backbone taps, then extras)."""
        feats = self.backbone.forward_features(images)
        out = feats[-1]
        for name in self._extra_names:
            out = self._children[name](out)
            feats.append(out)
        return feats

    # -- forward / backward --------------------------------------------------

    def forward(self, images: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Raw predictions.

        Args:
            images: ``(N, 3, H, W)`` batch matching ``spec.input_hw``.

        Returns:
            ``(conf_logits, loc_offsets)`` with shapes
            ``(N, A, num_classes + 1)`` and ``(N, A, 4)``.
        """
        n, c, h, w = images.shape
        if (h, w) != self.spec.input_hw or c != 3:
            raise ShapeError(
                f"expected (N, 3, {self.spec.input_hw[0]}, {self.spec.input_hw[1]}), "
                f"got {images.shape}"
            )
        feats = self.forward_features(images)
        confs, locs = [], []
        for i, feat in enumerate(feats):
            confs.append(self._children[self._head_names_conf[i]](feat))
            locs.append(self._children[self._head_names_loc[i]](feat))
        return np.concatenate(confs, axis=1), np.concatenate(locs, axis=1)

    def backward(self, grads: Tuple[np.ndarray, np.ndarray]) -> np.ndarray:
        """Backward from gradients on (conf_logits, loc_offsets)."""
        grad_conf, grad_loc = grads
        level_sizes = [lvl.num_anchors for lvl in self.anchor_levels]
        feat_grads = []
        start = 0
        for i, size in enumerate(level_sizes):
            gc = grad_conf[:, start : start + size]
            gl = grad_loc[:, start : start + size]
            g_feat = self._children[self._head_names_conf[i]].backward(gc)
            g_feat = g_feat + self._children[self._head_names_loc[i]].backward(gl)
            feat_grads.append(g_feat)
            start += size
        # Extras backward-chain into the last backbone feature gradient.
        n_backbone = len(self.backbone.tap_indices) + 1
        grad = None
        for i in range(len(self._extra_names) - 1, -1, -1):
            g = feat_grads[n_backbone + i]
            if grad is not None:
                g = g + grad
            grad = self._children[self._extra_names[i]].backward(g)
        backbone_grads = feat_grads[:n_backbone]
        if grad is not None:
            backbone_grads[-1] = backbone_grads[-1] + grad
        return self.backbone.backward_features(backbone_grads)

    # -- training ---------------------------------------------------------------

    def compute_loss(
        self,
        images: np.ndarray,
        gt_boxes: Sequence[np.ndarray],
        gt_labels: Sequence[np.ndarray],
        neg_pos_ratio: float = 3.0,
        loc_weight: float = 1.0,
    ) -> Tuple[float, Tuple[np.ndarray, np.ndarray]]:
        """SSD multibox loss and its gradient w.r.t. the raw predictions.

        Args:
            images: input batch.
            gt_boxes: per-image ``(G_i, 4)`` normalized corner boxes.
            gt_labels: per-image ``(G_i,)`` zero-based class ids.
            neg_pos_ratio: hard-negative mining ratio.
            loc_weight: weight of the localization term.

        Returns:
            ``(loss, (grad_conf, grad_loc))`` ready for :meth:`backward`.
        """
        conf, loc = self.forward(images)
        n = images.shape[0]
        if len(gt_boxes) != n or len(gt_labels) != n:
            raise ShapeError("batch size mismatch between images and targets")
        total = 0.0
        grad_conf = np.zeros_like(conf)
        grad_loc = np.zeros_like(loc)
        for i in range(n):
            match = match_anchors(self.anchors_corner, gt_boxes[i], gt_labels[i])
            labels = match.labels
            n_pos = max(match.num_positives, 1)

            probs = softmax(conf[i])
            background_loss = -np.log(np.clip(probs[:, 0], 1e-12, None))
            cls_mask = hard_negative_mask(labels, background_loss, neg_pos_ratio)
            weights = cls_mask.astype(np.float64)
            weights[labels < 0] = 0.0
            ce_labels = np.clip(labels, 0, None)
            loss_c, g_c = softmax_cross_entropy(
                conf[i], ce_labels, weights=weights, normalizer=float(n_pos)
            )
            pos = match.positive_mask
            loc_targets = self.codec.encode(match.matched_boxes, self.anchors_center)
            loc_w = np.repeat(pos.astype(np.float64)[:, None], 4, axis=1)
            loss_l, g_l = smooth_l1_loss(
                loc[i], loc_targets, weights=loc_w, normalizer=float(n_pos)
            )
            total += loss_c + loc_weight * loss_l
            grad_conf[i] = g_c
            grad_loc[i] = loc_weight * g_l
        total /= n
        grad_conf /= n
        grad_loc /= n
        return total, (grad_conf, grad_loc)

    def train_step(
        self,
        optimizer,
        images: np.ndarray,
        gt_boxes: Sequence[np.ndarray],
        gt_labels: Sequence[np.ndarray],
    ) -> float:
        """One optimization step; returns the batch loss."""
        self.zero_grad()
        loss, grads = self.compute_loss(images, gt_boxes, gt_labels)
        self.backward(grads)
        optimizer.step()
        return loss

    # -- inference ---------------------------------------------------------------

    def predict(
        self,
        images: np.ndarray,
        score_threshold: float = 0.4,
        nms_iou: float = 0.5,
        max_detections: int = 20,
    ) -> List[List[Detection]]:
        """Detections per image after score filtering and per-class NMS."""
        conf, loc = self.forward(images)
        return self.postprocess(
            conf, loc, score_threshold=score_threshold, nms_iou=nms_iou,
            max_detections=max_detections,
        )

    def postprocess(
        self,
        conf: np.ndarray,
        loc: np.ndarray,
        score_threshold: float = 0.4,
        nms_iou: float = 0.5,
        max_detections: int = 20,
    ) -> List[List[Detection]]:
        """Turn raw predictions into final detections."""
        results: List[List[Detection]] = []
        for i in range(conf.shape[0]):
            probs = softmax(conf[i])
            boxes = self.codec.decode(loc[i], self.anchors_center)
            detections: List[Detection] = []
            for cls in range(self.spec.num_classes):
                scores = probs[:, cls + 1]
                keep = scores >= score_threshold
                if not np.any(keep):
                    continue
                cls_boxes = boxes[keep]
                cls_scores = scores[keep]
                chosen = non_max_suppression(
                    cls_boxes, cls_scores, iou_threshold=nms_iou,
                    max_outputs=max_detections,
                )
                for idx in chosen:
                    detections.append(
                        Detection(
                            box=tuple(float(v) for v in cls_boxes[idx]),
                            label=cls,
                            score=float(cls_scores[idx]),
                        )
                    )
            detections.sort(key=lambda d: -d.score)
            results.append(detections[:max_detections])
        return results
