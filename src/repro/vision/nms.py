"""Greedy non-maximum suppression."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.vision.boxes import iou_matrix


def non_max_suppression(
    boxes: np.ndarray,
    scores: np.ndarray,
    iou_threshold: float = 0.5,
    max_outputs: int = 100,
) -> np.ndarray:
    """Indices of the boxes kept by greedy NMS, in descending score order.

    Args:
        boxes: ``(N, 4)`` corner boxes.
        scores: ``(N,)`` confidence scores.
        iou_threshold: boxes overlapping a kept box above this are dropped.
        max_outputs: cap on the number of kept boxes.
    """
    boxes = np.asarray(boxes, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    if boxes.ndim != 2 or boxes.shape[1] != 4 or scores.shape != (boxes.shape[0],):
        raise ShapeError(f"bad NMS inputs {boxes.shape} / {scores.shape}")
    if not 0.0 <= iou_threshold <= 1.0:
        raise ValueError("iou_threshold must be in [0, 1]")
    if boxes.shape[0] == 0:
        return np.empty(0, dtype=int)
    order = np.argsort(-scores)
    iou = iou_matrix(boxes, boxes)
    keep = []
    suppressed = np.zeros(boxes.shape[0], dtype=bool)
    for idx in order:
        if suppressed[idx]:
            continue
        keep.append(int(idx))
        if len(keep) >= max_outputs:
            break
        suppressed |= iou[idx] > iou_threshold
    return np.array(keep, dtype=int)
