"""SSD anchor (prior box) generation.

Each detection head attaches to one feature map; every cell of that map
carries a small set of anchors at one scale and several aspect ratios.
Anchors are expressed in normalized image coordinates so the same code
serves the full-resolution and the reduced-scale detectors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ShapeError


@dataclass(frozen=True)
class AnchorLevel:
    """Anchor configuration of one detection head.

    Attributes:
        feature_shape: ``(fh, fw)`` cells of the attached feature map.
        scale: anchor edge relative to the image's shorter side.
        aspect_ratios: width/height ratios (tall objects like bottles
            match ratios < 1).
    """

    feature_shape: Tuple[int, int]
    scale: float
    aspect_ratios: Tuple[float, ...] = (1.0, 0.5, 2.0)

    @property
    def anchors_per_cell(self) -> int:
        return len(self.aspect_ratios)

    @property
    def num_anchors(self) -> int:
        fh, fw = self.feature_shape
        return fh * fw * self.anchors_per_cell


def generate_anchors(levels: Sequence[AnchorLevel]) -> np.ndarray:
    """All anchors of a detector, in center form ``(A, 4)``.

    Anchors are laid out level by level, row-major over cells, then by
    aspect ratio -- the same order the heads emit predictions in.
    """
    if not levels:
        raise ShapeError("need at least one anchor level")
    all_anchors: List[np.ndarray] = []
    for level in levels:
        fh, fw = level.feature_shape
        if fh <= 0 or fw <= 0:
            raise ShapeError(f"bad feature shape {level.feature_shape}")
        ys = (np.arange(fh) + 0.5) / fh
        xs = (np.arange(fw) + 0.5) / fw
        cy, cx = np.meshgrid(ys, xs, indexing="ij")
        cells = np.stack([cx.ravel(), cy.ravel()], axis=1)  # (fh*fw, 2)
        boxes = []
        for ratio in level.aspect_ratios:
            w = level.scale * math.sqrt(ratio)
            h = level.scale / math.sqrt(ratio)
            wh = np.full((cells.shape[0], 2), (w, h))
            boxes.append(np.concatenate([cells, wh], axis=1))
        # Interleave per cell: cell0-ratio0, cell0-ratio1, ... matches the
        # head reshape (N, A*(C), fh, fw) -> (N, fh*fw*A, C).
        per_cell = np.stack(boxes, axis=1).reshape(-1, 4)
        all_anchors.append(per_cell)
    return np.concatenate(all_anchors, axis=0)
