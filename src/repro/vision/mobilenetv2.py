"""MobileNetV2 backbone with a width multiplier (alpha).

Implements the inverted-residual bottleneck of Sandler et al. and the
standard MobileNetV2 stage configuration. The width multiplier scales
every channel count (rounded to multiples of 8, like the reference
implementation), producing the paper's SSD-MbV2-{0.5, 0.75, 1.0} family.

The backbone exposes *tapped* intermediate feature maps for the SSD
heads and supports backward through multiple taps.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.nn.act import ReLU6
from repro.nn.conv import Conv2d, DepthwiseConv2d
from repro.nn.module import Module, Sequential
from repro.nn.norm import BatchNorm2d
from repro.seeding import DEFAULT_INIT_SEED

#: The standard MobileNetV2 stage table: (expansion t, channels c,
#: repeats n, first stride s).
MOBILENETV2_CONFIG: Tuple[Tuple[int, int, int, int], ...] = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)

#: Reduced stage table used by the laptop-scale experiment models.
TINY_CONFIG: Tuple[Tuple[int, int, int, int], ...] = (
    (1, 8, 1, 1),
    (6, 16, 2, 2),
    (6, 24, 2, 2),
    (6, 32, 2, 2),
)


def make_divisible(value: float, divisor: int = 8, min_value: Optional[int] = None) -> int:
    """Round a scaled channel count the way the reference MobileNet does.

    Guarantees the result is a multiple of ``divisor`` and never drops
    more than 10% below ``value``.
    """
    if min_value is None:
        min_value = divisor
    new_value = max(min_value, int(value + divisor / 2) // divisor * divisor)
    if new_value < 0.9 * value:
        new_value += divisor
    return new_value


def _conv_bn_relu(
    in_c: int, out_c: int, kernel: int, stride: int, rng: np.random.Generator
) -> Sequential:
    """Conv + BN + ReLU6 block."""
    return Sequential(
        Conv2d(in_c, out_c, kernel, stride=stride, padding=kernel // 2, bias=False, rng=rng),
        BatchNorm2d(out_c),
        ReLU6(),
    )


class InvertedResidual(Module):
    """MobileNetV2 bottleneck: expand (1x1) -> depthwise (3x3) -> project (1x1).

    A residual connection is added when the spatial stride is 1 and the
    input/output channel counts match.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int,
        expand_ratio: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if stride not in (1, 2):
            raise ShapeError("stride must be 1 or 2")
        rng = rng or np.random.default_rng(DEFAULT_INIT_SEED)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride
        self.expand_ratio = expand_ratio
        self.use_residual = stride == 1 and in_channels == out_channels
        hidden = in_channels * expand_ratio
        self.hidden_channels = hidden
        if expand_ratio != 1:
            self.expand = _conv_bn_relu(in_channels, hidden, 1, 1, rng)
        else:
            self.expand = None
        self.depthwise = Sequential(
            DepthwiseConv2d(hidden, 3, stride=stride, padding=1, bias=False, rng=rng),
            BatchNorm2d(hidden),
            ReLU6(),
        )
        self.project = Sequential(
            Conv2d(hidden, out_channels, 1, bias=False, rng=rng),
            BatchNorm2d(out_channels),
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        if self.expand is not None:
            out = self.expand(out)
        out = self.depthwise(out)
        out = self.project(out)
        if self.use_residual:
            out = out + x
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.project.backward(grad_out)
        grad = self.depthwise.backward(grad)
        if self.expand is not None:
            grad = self.expand.backward(grad)
        if self.use_residual:
            grad = grad + grad_out
        return grad


class MobileNetV2Backbone(Module):
    """The feature extractor, tappable at arbitrary block outputs.

    Args:
        width_mult: the paper's alpha; scales all channel counts.
        in_channels: input image channels (3 for the paper's pipeline).
        config: stage table ``(t, c, n, s)``; defaults to the full
            MobileNetV2 table.
        stem_channels: unscaled stem width (32 in MobileNetV2).
        last_channels: unscaled width of the final 1x1 conv (1280); per
            the reference implementation it is scaled only for alpha > 1,
            so it stays 1280 for the paper's three variants.
        tap_indices: block indices (into the flattened block list) whose
            outputs are returned by :meth:`forward_features`, in addition
            to the final feature map which is always the last tap.
        rng: weight-initializer RNG.
    """

    def __init__(
        self,
        width_mult: float = 1.0,
        in_channels: int = 3,
        config: Sequence[Tuple[int, int, int, int]] = MOBILENETV2_CONFIG,
        stem_channels: int = 32,
        last_channels: int = 1280,
        tap_indices: Optional[Sequence[int]] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if width_mult <= 0.0:
            raise ShapeError("width multiplier must be positive")
        rng = rng or np.random.default_rng(DEFAULT_INIT_SEED)
        self.width_mult = width_mult
        self.config = tuple(config)

        stem_out = make_divisible(stem_channels * width_mult)
        self.stem = _conv_bn_relu(in_channels, stem_out, 3, 2, rng)

        blocks: List[InvertedResidual] = []
        c_in = stem_out
        for t, c, n, s in self.config:
            c_out = make_divisible(c * width_mult)
            for i in range(n):
                stride = s if i == 0 else 1
                blocks.append(InvertedResidual(c_in, c_out, stride, t, rng=rng))
                c_in = c_out
        self._block_names: List[str] = []
        for i, blk in enumerate(blocks):
            name = f"block{i}"
            self.register_child(name, blk)
            self._block_names.append(name)

        self.last_channels = (
            make_divisible(last_channels * width_mult) if width_mult > 1.0 else last_channels
        )
        self.head_conv = _conv_bn_relu(c_in, self.last_channels, 1, 1, rng)

        if tap_indices is None:
            tap_indices = self._default_taps()
        self.tap_indices = tuple(sorted(tap_indices))
        for tap in self.tap_indices:
            if not 0 <= tap < len(blocks):
                raise ShapeError(f"tap index {tap} out of range")

    def _default_taps(self) -> Tuple[int, ...]:
        """Last block of the second-to-last stride level (SSD's C4 tap)."""
        # Count blocks until the stage before the final stride-2 stage.
        counts = [n for _, _, n, _ in self.config]
        strides = [s for _, _, _, s in self.config]
        s2_stages = [i for i, s in enumerate(strides) if s == 2]
        if not s2_stages:
            return (0,)  # single-resolution config: tap the first block
        tap = sum(counts[: s2_stages[-1]]) - 1
        return (max(tap, 0),)

    @property
    def num_blocks(self) -> int:
        return len(self._block_names)

    def tap_channels(self) -> List[int]:
        """Channel counts of each tapped feature map (final map last)."""
        blocks = [self._children[n] for n in self._block_names]
        channels = [blocks[i].out_channels for i in self.tap_indices]
        channels.append(self.last_channels)
        return channels

    def forward_features(self, x: np.ndarray) -> List[np.ndarray]:
        """Feature maps at every tap plus the final head-conv output."""
        feats: List[np.ndarray] = []
        out = self.stem(x)
        for i, name in enumerate(self._block_names):
            out = self._children[name](out)
            if i in self.tap_indices:
                feats.append(out)
        feats.append(self.head_conv(out))
        return feats

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Final feature map only (use :meth:`forward_features` for SSD)."""
        return self.forward_features(x)[-1]

    def backward_features(self, grads: List[np.ndarray]) -> np.ndarray:
        """Backward given one gradient per tapped feature map.

        Args:
            grads: gradients in the same order :meth:`forward_features`
                returned the features (taps first, final map last).

        Returns:
            Gradient w.r.t. the input image batch.
        """
        if len(grads) != len(self.tap_indices) + 1:
            raise ShapeError(
                f"expected {len(self.tap_indices) + 1} gradients, got {len(grads)}"
            )
        grad = self.head_conv.backward(grads[-1])
        tap_grads = dict(zip(self.tap_indices, grads[:-1]))
        for i in range(len(self._block_names) - 1, -1, -1):
            if i in tap_grads:
                grad = grad + tap_grads[i]
            grad = self._children[self._block_names[i]].backward(grad)
        return self.stem.backward(grad)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError(
            "use backward_features(); the backbone has multiple outputs"
        )
