"""Encoding of ground-truth boxes as anchor offsets (and back).

Standard SSD parameterization with variances:

    t_cx = (cx - a_cx) / a_w / var_center
    t_cy = (cy - a_cy) / a_h / var_center
    t_w  = log(w / a_w) / var_size
    t_h  = log(h / a_h) / var_size
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.vision.boxes import center_to_corner, corner_to_center


@dataclass(frozen=True)
class BoxCodec:
    """Encoder/decoder between corner boxes and anchor-relative offsets.

    Attributes:
        variance_center: scaling of the center offsets (0.1 in SSD).
        variance_size: scaling of the log-size offsets (0.2 in SSD).
    """

    variance_center: float = 0.1
    variance_size: float = 0.2

    def encode(self, boxes_corner: np.ndarray, anchors_center: np.ndarray) -> np.ndarray:
        """Encode corner boxes w.r.t. center-form anchors.

        Args:
            boxes_corner: ``(A, 4)`` corner boxes, one per anchor.
            anchors_center: ``(A, 4)`` anchors in center form.
        """
        if boxes_corner.shape != anchors_center.shape:
            raise ShapeError(
                f"boxes {boxes_corner.shape} vs anchors {anchors_center.shape}"
            )
        boxes = corner_to_center(boxes_corner)
        eps = 1e-9
        t = np.empty_like(boxes)
        t[:, 0] = (boxes[:, 0] - anchors_center[:, 0]) / np.maximum(
            anchors_center[:, 2], eps
        ) / self.variance_center
        t[:, 1] = (boxes[:, 1] - anchors_center[:, 1]) / np.maximum(
            anchors_center[:, 3], eps
        ) / self.variance_center
        t[:, 2] = np.log(np.maximum(boxes[:, 2], eps) / np.maximum(anchors_center[:, 2], eps)) / self.variance_size
        t[:, 3] = np.log(np.maximum(boxes[:, 3], eps) / np.maximum(anchors_center[:, 3], eps)) / self.variance_size
        return t

    def decode(self, offsets: np.ndarray, anchors_center: np.ndarray) -> np.ndarray:
        """Decode predicted offsets back into corner boxes clipped to [0, 1]."""
        if offsets.shape != anchors_center.shape:
            raise ShapeError(
                f"offsets {offsets.shape} vs anchors {anchors_center.shape}"
            )
        boxes = np.empty_like(offsets)
        boxes[:, 0] = (
            offsets[:, 0] * self.variance_center * anchors_center[:, 2]
            + anchors_center[:, 0]
        )
        boxes[:, 1] = (
            offsets[:, 1] * self.variance_center * anchors_center[:, 3]
            + anchors_center[:, 1]
        )
        # Clip the log-size before exp so garbage predictions cannot overflow.
        boxes[:, 2] = np.exp(np.clip(offsets[:, 2] * self.variance_size, -10.0, 6.0)) * anchors_center[:, 2]
        boxes[:, 3] = np.exp(np.clip(offsets[:, 3] * self.variance_size, -10.0, 6.0)) * anchors_center[:, 3]
        return np.clip(center_to_corner(boxes), 0.0, 1.0)
