"""Anchor-to-ground-truth matching for SSD training.

Standard SSD assignment: every ground-truth box claims its best-IoU
anchor; additionally every anchor with IoU >= ``pos_threshold`` against
some ground truth becomes positive. Anchors with best IoU in the
``[neg_threshold, pos_threshold)`` band are *ignored* (contribute no
loss); the rest are negatives, from which hard-negative mining (in the
loss) picks the 3:1 hardest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.vision.boxes import iou_matrix


@dataclass(frozen=True)
class MatchResult:
    """Per-anchor assignment for one image.

    Attributes:
        labels: ``(A,)`` int array; 0 = background, ``1 + class_id`` for
            positives, -1 = ignored.
        matched_boxes: ``(A, 4)`` corner box assigned to each anchor
            (arbitrary for non-positives).
    """

    labels: np.ndarray
    matched_boxes: np.ndarray

    @property
    def positive_mask(self) -> np.ndarray:
        return self.labels > 0

    @property
    def num_positives(self) -> int:
        return int(self.positive_mask.sum())


def match_anchors(
    anchors_corner: np.ndarray,
    gt_boxes: np.ndarray,
    gt_labels: np.ndarray,
    pos_threshold: float = 0.5,
    neg_threshold: float = 0.4,
) -> MatchResult:
    """Assign ground-truth boxes to anchors.

    Args:
        anchors_corner: ``(A, 4)`` anchors in corner form.
        gt_boxes: ``(G, 4)`` ground-truth corner boxes (may be empty).
        gt_labels: ``(G,)`` zero-based class ids.
        pos_threshold: IoU above which an anchor is positive.
        neg_threshold: IoU below which an anchor is negative.
    """
    if not 0.0 <= neg_threshold <= pos_threshold <= 1.0:
        raise ValueError("need 0 <= neg_threshold <= pos_threshold <= 1")
    n_anchors = anchors_corner.shape[0]
    gt_boxes = np.asarray(gt_boxes, dtype=np.float64).reshape(-1, 4)
    gt_labels = np.asarray(gt_labels, dtype=int).reshape(-1)
    if gt_boxes.shape[0] != gt_labels.shape[0]:
        raise ShapeError("gt_boxes and gt_labels disagree")
    labels = np.zeros(n_anchors, dtype=int)
    matched = np.zeros((n_anchors, 4), dtype=np.float64)
    if gt_boxes.shape[0] == 0:
        return MatchResult(labels=labels, matched_boxes=matched)

    iou = iou_matrix(anchors_corner, gt_boxes)  # (A, G)
    best_gt = iou.argmax(axis=1)
    best_iou = iou[np.arange(n_anchors), best_gt]

    labels[best_iou >= pos_threshold] = gt_labels[best_gt[best_iou >= pos_threshold]] + 1
    ignore = (best_iou >= neg_threshold) & (best_iou < pos_threshold)
    labels[ignore] = -1

    # Force-match the best anchor of every ground truth so no object is
    # unrepresented even when all IoUs are low.
    best_anchor = iou.argmax(axis=0)
    for g, a in enumerate(best_anchor):
        best_gt[a] = g
        labels[a] = gt_labels[g] + 1

    matched = gt_boxes[best_gt]
    return MatchResult(labels=labels, matched_boxes=matched)


def hard_negative_mask(
    labels: np.ndarray, background_loss: np.ndarray, neg_pos_ratio: float = 3.0
) -> np.ndarray:
    """Select negatives with the highest loss, at ``neg_pos_ratio`` : 1.

    Args:
        labels: ``(A,)`` per-anchor labels from :func:`match_anchors`.
        background_loss: ``(A,)`` per-anchor classification loss against
            the background class.
        neg_pos_ratio: negatives kept per positive (3 in SSD).

    Returns:
        Boolean mask of anchors contributing to the classification loss
        (all positives plus the mined negatives). With zero positives one
        negative is still kept so the loss is defined.
    """
    pos = labels > 0
    neg_candidates = labels == 0
    n_neg = max(1, int(neg_pos_ratio * pos.sum()))
    loss = np.where(neg_candidates, background_loss, -np.inf)
    n_neg = min(n_neg, int(neg_candidates.sum()))
    mask = pos.copy()
    if n_neg > 0:
        chosen = np.argsort(-loss)[:n_neg]
        mask[chosen] = True
    return mask
