"""SSD-MobileNetV2 object detection (the paper's vision pipeline)."""

from repro.vision.boxes import (
    center_to_corner,
    corner_to_center,
    iou_matrix,
)
from repro.vision.anchors import AnchorLevel, generate_anchors
from repro.vision.boxcodec import BoxCodec
from repro.vision.nms import non_max_suppression
from repro.vision.matching import match_anchors
from repro.vision.mobilenetv2 import (
    InvertedResidual,
    MobileNetV2Backbone,
    make_divisible,
)
from repro.vision.ssd import (
    Detection,
    SSDDetector,
    SSDSpec,
    full_scale_spec,
    tiny_spec,
)

__all__ = [
    "center_to_corner",
    "corner_to_center",
    "iou_matrix",
    "AnchorLevel",
    "generate_anchors",
    "BoxCodec",
    "non_max_suppression",
    "match_anchors",
    "InvertedResidual",
    "MobileNetV2Backbone",
    "make_divisible",
    "Detection",
    "SSDDetector",
    "SSDSpec",
    "full_scale_spec",
    "tiny_spec",
]
