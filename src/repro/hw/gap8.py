"""GAP8 SoC performance model (Table II).

GAP8 runs the CNN on an 8-core RISC-V cluster. The paper's operating
point is 1.2 V, 160 MHz cluster clock, 250 MHz fabric/peripheral clock,
and reports overall efficiencies of 5.3-5.9 MAC/cycle. The model here
assigns each layer kind a peak efficiency (8-way parallelism times the
per-core SIMD MACs, derated by the kernel's memory behaviour) plus a
fixed per-layer overhead for tiling/DMA setup, and derives throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ReproError
from repro.hw.cost import CostReport

#: Paper operating point.
DEFAULT_CLUSTER_FREQ_HZ = 160e6
DEFAULT_FABRIC_FREQ_HZ = 250e6
DEFAULT_VOLTAGE_V = 1.2

#: Peak MAC/cycle per layer kind on the 8-core cluster. Pointwise (1x1)
#: convolutions vectorize best; depthwise kernels are memory bound.
DEFAULT_EFFICIENCY: Dict[str, float] = {
    "conv": 6.4,
    "pointwise": 6.6,
    "depthwise": 2.1,
    "norm": 1.0,  # folded away at deployment; zero MACs anyway
}

#: Cluster-cycle overhead per layer: DMA programming, tile loop setup,
#: and the residual/concat glue the autotiler emits.
DEFAULT_LAYER_OVERHEAD_CYCLES = 30_000


@dataclass(frozen=True)
class GAP8Config:
    """Clock/voltage configuration of the SoC."""

    cluster_freq_hz: float = DEFAULT_CLUSTER_FREQ_HZ
    fabric_freq_hz: float = DEFAULT_FABRIC_FREQ_HZ
    voltage_v: float = DEFAULT_VOLTAGE_V
    n_cores: int = 8

    def __post_init__(self) -> None:
        if self.cluster_freq_hz <= 0 or self.fabric_freq_hz <= 0:
            raise ReproError("clock frequencies must be positive")


@dataclass(frozen=True)
class PerformanceEstimate:
    """Estimated on-device execution of one network.

    Attributes:
        name: network name.
        macs: total multiply-accumulates per frame.
        cycles: estimated cluster cycles per frame.
        efficiency_mac_per_cycle: overall MAC/cycle (the paper's metric).
        latency_s: seconds per frame.
        fps: frames per second.
    """

    name: str
    macs: int
    cycles: float
    efficiency_mac_per_cycle: float
    latency_s: float
    fps: float


class GAP8PerformanceModel:
    """Maps a :class:`~repro.hw.cost.CostReport` to cycles and FPS.

    Args:
        config: SoC clocks.
        efficiency: peak MAC/cycle per layer kind.
        layer_overhead_cycles: fixed cost per compute layer.
    """

    def __init__(
        self,
        config: GAP8Config = GAP8Config(),
        efficiency: Dict[str, float] = None,
        layer_overhead_cycles: int = DEFAULT_LAYER_OVERHEAD_CYCLES,
    ):
        self.config = config
        self.efficiency = dict(DEFAULT_EFFICIENCY if efficiency is None else efficiency)
        self.layer_overhead_cycles = layer_overhead_cycles

    def layer_cycles(self, kind: str, macs: int) -> float:
        """Cycles for one layer of the given kind."""
        if macs == 0:
            return 0.0
        try:
            eff = self.efficiency[kind]
        except KeyError:
            raise ReproError(f"no efficiency entry for layer kind {kind!r}") from None
        return macs / eff + self.layer_overhead_cycles

    def estimate(self, report: CostReport) -> PerformanceEstimate:
        """Whole-network estimate from a per-layer cost report."""
        cycles = sum(self.layer_cycles(l.kind, l.macs) for l in report.layers)
        macs = report.total_macs
        latency = cycles / self.config.cluster_freq_hz
        return PerformanceEstimate(
            name=report.name,
            macs=macs,
            cycles=cycles,
            efficiency_mac_per_cycle=macs / cycles if cycles else 0.0,
            latency_s=latency,
            fps=1.0 / latency if latency else float("inf"),
        )
