"""Memory-hierarchy analysis of a deployed network.

GAP8's memory system (Sec. III-A): 64 kB of shared L1 scratchpad,
512 kB of on-chip L2, plus the AI-deck's 8 MB HyperRAM and 64 MB
HyperFlash. The paper constrains the GAPflow-generated code to a 250 kB
L2 activation buffer. This module checks where weights live and whether
every layer's activations can be tiled through the L2 buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import DeploymentError
from repro.hw.cost import CostReport, LayerCost

L1_BYTES = 64 * 1024
L2_BYTES = 512 * 1024
HYPERRAM_BYTES = 8 * 1024 * 1024
HYPERFLASH_BYTES = 64 * 1024 * 1024

#: The GAPflow L2 activation-buffer budget used by the paper.
DEFAULT_L2_BUFFER_BYTES = 250 * 1024


@dataclass(frozen=True)
class LayerTiling:
    """How one layer's activations stream through the L2 buffer.

    Attributes:
        name: layer name.
        working_set_bytes: int8 bytes of input + output for a full frame.
        n_tiles: horizontal stripes needed to fit the L2 buffer.
    """

    name: str
    working_set_bytes: int
    n_tiles: int


@dataclass
class MemoryReport:
    """Deployment memory picture of one network."""

    name: str
    weight_bytes: int
    weights_location: str  #: "L2", "HyperRAM" or "HyperFlash"
    peak_activation_bytes: int
    tilings: List[LayerTiling]

    @property
    def max_tiles(self) -> int:
        return max((t.n_tiles for t in self.tilings), default=1)


def _tile_layer(layer: LayerCost, l2_buffer: int) -> LayerTiling:
    working = layer.in_bytes_int8 + layer.out_bytes_int8
    if working <= l2_buffer:
        return LayerTiling(layer.name, working, 1)
    # Tile over output rows; every tile needs its input rows (plus halo,
    # ignored at this granularity) and output rows resident.
    _, h_out, _ = layer.out_shape
    per_row = working / max(h_out, 1)
    rows_per_tile = max(1, int(l2_buffer / per_row))
    n_tiles = (h_out + rows_per_tile - 1) // rows_per_tile
    if per_row > l2_buffer:
        raise DeploymentError(
            f"{layer.name}: a single activation row ({per_row:.0f} B) exceeds "
            f"the {l2_buffer} B L2 buffer"
        )
    return LayerTiling(layer.name, working, n_tiles)


def analyze_memory(
    report: CostReport, l2_buffer_bytes: int = DEFAULT_L2_BUFFER_BYTES
) -> MemoryReport:
    """Check an int8 deployment of ``report`` against the GAP8 memories.

    Raises:
        DeploymentError: when a layer cannot be tiled or weights exceed
            the HyperFlash.
    """
    weight_bytes = sum(l.weight_bytes_int8 for l in report.layers)
    if weight_bytes <= L2_BYTES - l2_buffer_bytes:
        location = "L2"
    elif weight_bytes <= HYPERRAM_BYTES:
        location = "HyperRAM"
    elif weight_bytes <= HYPERFLASH_BYTES:
        location = "HyperFlash"
    else:
        raise DeploymentError(
            f"{report.name}: {weight_bytes} B of weights exceed the 64 MB HyperFlash"
        )
    tilings = [_tile_layer(l, l2_buffer_bytes) for l in report.layers if l.macs > 0]
    peak = max((t.working_set_bytes for t in tilings), default=0)
    return MemoryReport(
        name=report.name,
        weight_bytes=weight_bytes,
        weights_location=location,
        peak_activation_bytes=peak,
        tilings=tilings,
    )
