"""Battery and mission-endurance model.

The Crazyflie 2.1 ships a 250 mAh / 3.7 V LiPo; with the paper's 8.02 W
platform draw (Table IV) that yields the familiar ~6-7 minute flight
time, which is why every evaluation run lasts 3 minutes -- one flight per
battery with margin. This model makes that arithmetic explicit and lets
missions check feasibility.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

#: Stock Crazyflie 2.1 battery.
CRAZYFLIE_BATTERY_WH = 0.250 * 3.7  # 250 mAh at 3.7 V nominal


@dataclass(frozen=True)
class Battery:
    """A LiPo battery with a usable-energy fraction.

    Attributes:
        capacity_wh: nameplate energy.
        usable_fraction: fraction extractable before the low-voltage
            cutoff (LiPos under high discharge deliver ~85%).
    """

    capacity_wh: float = CRAZYFLIE_BATTERY_WH
    usable_fraction: float = 0.85

    def __post_init__(self) -> None:
        if self.capacity_wh <= 0.0:
            raise ReproError("battery capacity must be positive")
        if not 0.0 < self.usable_fraction <= 1.0:
            raise ReproError("usable fraction must be in (0, 1]")

    @property
    def usable_wh(self) -> float:
        return self.capacity_wh * self.usable_fraction

    def endurance_s(self, platform_power_w: float) -> float:
        """Flight time at a constant platform draw, seconds."""
        if platform_power_w <= 0.0:
            raise ReproError("platform power must be positive")
        return self.usable_wh * 3600.0 / platform_power_w

    def supports_mission(
        self, platform_power_w: float, mission_time_s: float, reserve: float = 0.2
    ) -> bool:
        """True if the mission fits with a ``reserve`` fraction left over."""
        if not 0.0 <= reserve < 1.0:
            raise ReproError("reserve must be in [0, 1)")
        return mission_time_s <= self.endurance_s(platform_power_w) * (1.0 - reserve)
