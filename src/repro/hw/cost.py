"""Per-layer MAC and parameter accounting for the SSD detectors.

Walks the actual module tree of an :class:`~repro.vision.ssd.SSDDetector`
propagating activation shapes analytically (no data is run), producing
the numbers behind Table II: parameters, multiply-accumulate operations,
and the per-layer breakdown the cycle and memory models consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ShapeError
from repro.nn.act import ReLU, ReLU6
from repro.nn.conv import Conv2d, DepthwiseConv2d
from repro.nn.functional import conv_output_size
from repro.nn.module import Module, Sequential
from repro.nn.norm import BatchNorm2d
from repro.vision.mobilenetv2 import InvertedResidual
from repro.vision.ssd import SSDDetector

Shape = Tuple[int, int, int]  # (C, H, W)


@dataclass(frozen=True)
class LayerCost:
    """Cost of one compute layer.

    Attributes:
        name: dotted path inside the detector.
        kind: ``"conv"`` (dense kxk, k>1), ``"pointwise"`` (1x1) or
            ``"depthwise"``.
        macs: multiply-accumulates for one input image.
        params: weight + bias scalar count.
        in_shape: ``(C, H, W)`` input activation shape.
        out_shape: ``(C, H, W)`` output activation shape.
    """

    name: str
    kind: str
    macs: int
    params: int
    in_shape: Shape
    out_shape: Shape

    @property
    def in_bytes_int8(self) -> int:
        c, h, w = self.in_shape
        return c * h * w

    @property
    def out_bytes_int8(self) -> int:
        c, h, w = self.out_shape
        return c * h * w

    @property
    def weight_bytes_int8(self) -> int:
        return self.params


@dataclass
class CostReport:
    """Aggregate cost of a detector."""

    name: str
    input_hw: Tuple[int, int]
    layers: List[LayerCost]

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_params(self) -> int:
        return sum(layer.params for layer in self.layers)

    def macs_by_kind(self) -> dict:
        """MAC totals keyed by layer kind."""
        out: dict = {}
        for layer in self.layers:
            out[layer.kind] = out.get(layer.kind, 0) + layer.macs
        return out


def _conv_cost(name: str, conv: Conv2d, in_shape: Shape) -> Tuple[LayerCost, Shape]:
    c, h, w = in_shape
    if c != conv.in_channels:
        raise ShapeError(f"{name}: expected {conv.in_channels} channels, got {c}")
    out_h = conv_output_size(h, conv.kernel_size, conv.stride, conv.padding)
    out_w = conv_output_size(w, conv.kernel_size, conv.stride, conv.padding)
    macs = conv.macs(out_h, out_w)
    params = conv.weight.size + (conv.bias.size if conv.bias is not None else 0)
    kind = "pointwise" if conv.kernel_size == 1 else "conv"
    out_shape = (conv.out_channels, out_h, out_w)
    return LayerCost(name, kind, macs, params, in_shape, out_shape), out_shape


def _dw_cost(
    name: str, conv: DepthwiseConv2d, in_shape: Shape
) -> Tuple[LayerCost, Shape]:
    c, h, w = in_shape
    if c != conv.channels:
        raise ShapeError(f"{name}: expected {conv.channels} channels, got {c}")
    out_h = conv_output_size(h, conv.kernel_size, conv.stride, conv.padding)
    out_w = conv_output_size(w, conv.kernel_size, conv.stride, conv.padding)
    macs = conv.macs(out_h, out_w)
    params = conv.weight.size + (conv.bias.size if conv.bias is not None else 0)
    out_shape = (c, out_h, out_w)
    return LayerCost(name, "depthwise", macs, params, in_shape, out_shape), out_shape


def _trace_module(name: str, module: Module, in_shape: Shape, out: List[LayerCost]) -> Shape:
    """Recursively trace shapes and costs; returns the output shape."""
    if isinstance(module, Conv2d):
        cost, shape = _conv_cost(name, module, in_shape)
        out.append(cost)
        return shape
    if isinstance(module, DepthwiseConv2d):
        cost, shape = _dw_cost(name, module, in_shape)
        out.append(cost)
        return shape
    if isinstance(module, BatchNorm2d):
        # BN parameters fold into the conv at deployment; count them so
        # float param totals match the built model, with zero MACs.
        out.append(
            LayerCost(name, "norm", 0, module.gamma.size + module.beta.size, in_shape, in_shape)
        )
        return in_shape
    if isinstance(module, (ReLU, ReLU6)):
        return in_shape
    if isinstance(module, Sequential):
        shape = in_shape
        for i in range(len(module)):
            shape = _trace_module(f"{name}.{i}", module[i], shape, out)
        return shape
    if isinstance(module, InvertedResidual):
        shape = in_shape
        if module.expand is not None:
            shape = _trace_module(f"{name}.expand", module.expand, shape, out)
        shape = _trace_module(f"{name}.depthwise", module.depthwise, shape, out)
        shape = _trace_module(f"{name}.project", module.project, shape, out)
        return shape
    raise ShapeError(f"{name}: cannot trace module type {type(module).__name__}")


def trace_detector(detector: SSDDetector) -> CostReport:
    """Full per-layer cost report of a detector at its spec resolution."""
    spec = detector.spec
    layers: List[LayerCost] = []
    shape: Shape = (3, spec.input_hw[0], spec.input_hw[1])
    backbone = detector.backbone
    shape = _trace_module("backbone.stem", backbone.stem, shape, layers)
    feature_shapes: List[Shape] = []
    for i, bname in enumerate(backbone._block_names):
        shape = _trace_module(
            f"backbone.{bname}", backbone._children[bname], shape, layers
        )
        if i in backbone.tap_indices:
            feature_shapes.append(shape)
    shape = _trace_module("backbone.head_conv", backbone.head_conv, shape, layers)
    feature_shapes.append(shape)
    for ename in detector._extra_names:
        shape = _trace_module(ename, detector._children[ename], shape, layers)
        feature_shapes.append(shape)
    for i, feat_shape in enumerate(feature_shapes):
        for head_name in (f"conf_head{i}", f"loc_head{i}"):
            head = detector._children[head_name]
            _trace_module(f"{head_name}", head.net, feat_shape, layers)
    return CostReport(name=spec.name, input_hw=spec.input_hw, layers=layers)
