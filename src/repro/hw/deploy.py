"""GAPflow-like deployment planner.

The paper uses GreenWaves' GAPflow toolset to generate the C code of the
detector, "constraining the L2 buffer size to 250 kB". This module plays
that role for the simulated platform: given a detector it produces a
:class:`DeploymentPlan` (cost report + memory layout + performance
estimate) or raises :class:`~repro.errors.DeploymentError` when the
network cannot be deployed under the constraints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.cost import CostReport, trace_detector
from repro.hw.gap8 import GAP8Config, GAP8PerformanceModel, PerformanceEstimate
from repro.hw.memory import DEFAULT_L2_BUFFER_BYTES, MemoryReport, analyze_memory
from repro.vision.ssd import SSDDetector


@dataclass
class DeploymentPlan:
    """Everything needed to judge an onboard deployment."""

    cost: CostReport
    memory: MemoryReport
    performance: PerformanceEstimate

    def summary(self) -> str:
        """Human-readable one-network summary."""
        c, m, p = self.cost, self.memory, self.performance
        return (
            f"{c.name}: {c.total_params / 1e6:.2f} M params, "
            f"{c.total_macs / 1e6:.0f} MMAC, "
            f"{p.efficiency_mac_per_cycle:.1f} MAC/cyc, {p.fps:.1f} FPS, "
            f"weights in {m.weights_location} ({m.weight_bytes / 1e6:.2f} MB), "
            f"max {m.max_tiles} tiles/layer"
        )


class GAPFlowDeployer:
    """Plans int8 deployments onto the GAP8.

    Args:
        config: SoC clocks.
        l2_buffer_bytes: activation-buffer budget (250 kB in the paper).
    """

    def __init__(
        self,
        config: GAP8Config = GAP8Config(),
        l2_buffer_bytes: int = DEFAULT_L2_BUFFER_BYTES,
    ):
        self.config = config
        self.l2_buffer_bytes = l2_buffer_bytes
        self._performance_model = GAP8PerformanceModel(config)

    def plan(self, detector: SSDDetector) -> DeploymentPlan:
        """Produce a deployment plan or raise ``DeploymentError``."""
        cost = trace_detector(detector)
        memory = analyze_memory(cost, self.l2_buffer_bytes)
        performance = self._performance_model.estimate(cost)
        return DeploymentPlan(cost=cost, memory=memory, performance=performance)
