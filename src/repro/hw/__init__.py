"""Hardware cost, memory, and power models of the paper's platform.

- :mod:`repro.hw.cost` -- per-layer MAC/parameter accounting of a detector.
- :mod:`repro.hw.gap8` -- GAP8 SoC cycle/throughput model (Table II).
- :mod:`repro.hw.memory` -- L1/L2/HyperRAM tiling checker.
- :mod:`repro.hw.deploy` -- GAPflow-like deployment planner (250 kB L2 rule).
- :mod:`repro.hw.power` -- AI-deck and whole-platform power (Table IV).
- :mod:`repro.hw.stm32` -- host-MCU load model for the policies.
"""

from repro.hw.cost import CostReport, LayerCost, trace_detector
from repro.hw.gap8 import GAP8Config, GAP8PerformanceModel, PerformanceEstimate
from repro.hw.memory import MemoryReport, analyze_memory
from repro.hw.deploy import DeploymentPlan, GAPFlowDeployer
from repro.hw.power import (
    AIDeckPowerModel,
    PlatformPowerBreakdown,
    platform_power_breakdown,
)
from repro.hw.stm32 import STM32LoadModel

__all__ = [
    "CostReport",
    "LayerCost",
    "trace_detector",
    "GAP8Config",
    "GAP8PerformanceModel",
    "PerformanceEstimate",
    "MemoryReport",
    "analyze_memory",
    "DeploymentPlan",
    "GAPFlowDeployer",
    "AIDeckPowerModel",
    "PlatformPowerBreakdown",
    "platform_power_breakdown",
    "STM32LoadModel",
]
