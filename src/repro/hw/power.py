"""Power models: the AI-deck and the whole-platform breakdown (Table IV).

The paper measures 134.5 mW for the AI-deck running SSD-MbV2-1.0 and a
peak of 143.5 mW for the 0.75x model (whose kernels utilize memory
bandwidth and compute logic best), and the Table IV breakdown: motors
7.32 W (91.31%), Crazyflie electronics 0.277 W, AI-deck 0.134 W,
Multi-ranger 0.286 W -- 8.02 W total.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.errors import ReproError
from repro.hw.gap8 import DEFAULT_EFFICIENCY, PerformanceEstimate

#: Crazyflie 2.1 airframe mass, kg (27 g).
CRAZYFLIE_MASS_KG = 0.027

#: Measured constants of the paper's platform, watts.
CF_ELECTRONICS_W = 0.277
MULTIRANGER_W = 0.286

#: Rotor geometry of the Crazyflie (four 46 mm propellers).
ROTOR_RADIUS_M = 0.023
N_ROTORS = 4
AIR_DENSITY = 1.225
GRAVITY = 9.81


@dataclass
class AIDeckPowerModel:
    """AI-deck power as a function of cluster utilization.

    Power splits into a constant part (camera, SoC fabric, HyperRAM
    refresh) and an activity part proportional to how hard the kernels
    drive the cluster's compute and memory (approximated by the achieved
    MAC/cycle relative to the peak).

    Attributes:
        idle_w: constant part.
        active_w: additional power at 100% utilization.
        peak_efficiency: MAC/cycle at which utilization is 1.
    """

    idle_w: float = 0.040
    active_w: float = 0.115
    peak_efficiency: float = max(DEFAULT_EFFICIENCY.values())

    def utilization(self, estimate: PerformanceEstimate) -> float:
        """Cluster utilization implied by the achieved efficiency."""
        return min(1.0, estimate.efficiency_mac_per_cycle / self.peak_efficiency)

    def power_w(self, estimate: PerformanceEstimate) -> float:
        """Total AI-deck power while running the given network."""
        return self.idle_w + self.active_w * self.utilization(estimate)

    def energy_per_frame_j(self, estimate: PerformanceEstimate) -> float:
        """Energy per processed frame."""
        return self.power_w(estimate) * estimate.latency_s


def hover_motor_power_w(
    total_mass_kg: float,
    figure_of_merit: float = 0.146,
) -> float:
    """Hover power from actuator-disk theory.

    ``P = T^1.5 / sqrt(2 rho A) / FoM`` with the thrust equal to the
    weight. The default figure of merit is calibrated so a 27 g
    Crazyflie draws the paper's measured 7.32 W; tiny propellers really
    are this inefficient.

    Args:
        total_mass_kg: all-up mass.
        figure_of_merit: rotor efficiency in (0, 1].
    """
    if total_mass_kg <= 0.0:
        raise ReproError("mass must be positive")
    if not 0.0 < figure_of_merit <= 1.0:
        raise ReproError("figure of merit must be in (0, 1]")
    thrust = total_mass_kg * GRAVITY
    disk_area = N_ROTORS * math.pi * ROTOR_RADIUS_M**2
    ideal = thrust**1.5 / math.sqrt(2.0 * AIR_DENSITY * disk_area)
    return ideal / figure_of_merit


@dataclass(frozen=True)
class PlatformPowerBreakdown:
    """Table IV: power per component and its share of the total."""

    components_w: Dict[str, float]

    @property
    def total_w(self) -> float:
        return sum(self.components_w.values())

    def percentages(self) -> Dict[str, float]:
        """Share of the total per component, in percent."""
        total = self.total_w
        return {k: 100.0 * v / total for k, v in self.components_w.items()}


def platform_power_breakdown(
    ai_deck_w: float,
    total_mass_kg: float = CRAZYFLIE_MASS_KG,
    cf_electronics_w: float = CF_ELECTRONICS_W,
    multiranger_w: float = MULTIRANGER_W,
) -> PlatformPowerBreakdown:
    """The paper's Table IV for a given AI-deck draw.

    Args:
        ai_deck_w: AI-deck power (from :class:`AIDeckPowerModel`).
        total_mass_kg: all-up mass for the hover-power model.
        cf_electronics_w: Crazyflie MCU + sensors power.
        multiranger_w: ToF deck power.
    """
    return PlatformPowerBreakdown(
        components_w={
            "Motors": hover_motor_power_w(total_mass_kg),
            "CF electronics": cf_electronics_w,
            "AI-deck": ai_deck_w,
            "Multi-ranger": multiranger_w,
        }
    )
