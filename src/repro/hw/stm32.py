"""STM32F405 host-MCU load model.

The paper maps the flight controller and the exploration policy onto the
single-core STM32F405 (<100 MMAC/s class, 168 MHz). The policies are
state machines over three ToF ranges, so their compute cost is trivially
small -- which is exactly the design point the paper argues for. This
model quantifies that: even the heaviest policy leaves >99% of the MCU
for the flight stack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

STM32_FREQ_HZ = 168e6

#: Estimated cycles per policy update (comparisons, a little trig, and
#: the set-point arithmetic). The rotate-and-measure scan bookkeeping is
#: the heaviest.
POLICY_CYCLES_PER_TICK = {
    "pseudo-random": 900,
    "wall-following": 1_100,
    "spiral": 1_400,
    "rotate-and-measure": 1_700,
}

#: Cycles per 50 Hz flight-controller iteration (state estimation + PID
#: cascade), a typical figure for the Crazyflie firmware.
FLIGHT_STACK_CYCLES_PER_TICK = 220_000


@dataclass(frozen=True)
class STM32LoadModel:
    """CPU-load accounting of the host MCU.

    Attributes:
        control_rate_hz: flight-stack iteration rate.
        policy_rate_hz: policy update rate (the ToF rate, 20 Hz).
    """

    control_rate_hz: float = 50.0
    policy_rate_hz: float = 20.0

    def policy_load(self, policy_name: str) -> float:
        """Fraction of the MCU consumed by the exploration policy."""
        try:
            cycles = POLICY_CYCLES_PER_TICK[policy_name]
        except KeyError:
            raise ReproError(f"unknown policy {policy_name!r}") from None
        return cycles * self.policy_rate_hz / STM32_FREQ_HZ

    def flight_stack_load(self) -> float:
        """Fraction of the MCU consumed by the flight controller."""
        return FLIGHT_STACK_CYCLES_PER_TICK * self.control_rate_hz / STM32_FREQ_HZ

    def total_load(self, policy_name: str) -> float:
        """Combined utilization; must stay below 1 with ample margin."""
        return self.policy_load(policy_name) + self.flight_stack_load()

    def headroom(self, policy_name: str) -> float:
        """Unused fraction of the MCU."""
        return 1.0 - self.total_load(policy_name)
