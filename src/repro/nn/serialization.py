"""Save/load model state as compressed ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.nn.module import Module

PathLike = Union[str, "os.PathLike[str]"]


def save_state(module: Module, path: PathLike) -> None:
    """Write ``module.state_dict()`` to ``path`` as a compressed npz."""
    state = module.state_dict()
    np.savez_compressed(path, **state)


def load_state(module: Module, path: PathLike) -> None:
    """Load a state dict previously written by :func:`save_state`."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
