"""Pooling layers."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.module import Module


class GlobalAvgPool2d(Module):
    """Average over the spatial dimensions, keeping them as 1x1."""

    def __init__(self):
        super().__init__()
        self._in_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"expected NCHW input, got {x.shape}")
        self._in_shape = x.shape
        return x.mean(axis=(2, 3), keepdims=True)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise ShapeError("backward called before forward")
        n, c, h, w = self._in_shape
        return np.broadcast_to(grad_out / (h * w), self._in_shape).copy()
