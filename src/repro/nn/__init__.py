"""A from-scratch numpy neural-network stack with backpropagation.

This replaces the TensorFlow Object Detection API used by the paper.
It provides exactly the pieces an SSD-MobileNetV2 needs: standard and
depthwise convolutions, batch normalization, ReLU6, losses, and the
RMSProp optimizer with exponential learning-rate decay that the paper
trains with.

Layout convention: activations are NCHW float64 arrays.
"""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.conv import Conv2d, DepthwiseConv2d
from repro.nn.norm import BatchNorm2d
from repro.nn.act import ReLU, ReLU6
from repro.nn.pool import GlobalAvgPool2d
from repro.nn.linear import Linear
from repro.nn.loss import smooth_l1_loss, softmax, softmax_cross_entropy
from repro.nn.optim import ExponentialDecay, RMSProp, SGD
from repro.nn.serialization import load_state, save_state

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Conv2d",
    "DepthwiseConv2d",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "GlobalAvgPool2d",
    "Linear",
    "smooth_l1_loss",
    "softmax",
    "softmax_cross_entropy",
    "ExponentialDecay",
    "RMSProp",
    "SGD",
    "load_state",
    "save_state",
]
