"""Optimizers and learning-rate schedules.

The paper trains with RMSProp, learning rate 8e-4 with an exponential
decay of 0.95 every 24 epochs (Sec. IV-A); fine-tuning uses 1e-4 decayed
by 0.95 every 10 epochs. :class:`ExponentialDecay` reproduces that
schedule and :class:`RMSProp` the optimizer; :class:`SGD` is provided for
the ablations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.module import Parameter


class ExponentialDecay:
    """Step-wise exponential learning-rate schedule.

    Args:
        initial_lr: learning rate at step 0.
        decay_rate: multiplicative factor applied every ``decay_steps``.
        decay_steps: interval between decays, in optimizer steps (use the
            number of steps per epoch times the paper's epoch interval).
        staircase: if True the decay happens in discrete jumps (the
            TensorFlow default the paper uses); otherwise it's continuous.
    """

    def __init__(
        self,
        initial_lr: float,
        decay_rate: float = 0.95,
        decay_steps: int = 1000,
        staircase: bool = True,
    ):
        if initial_lr <= 0.0 or not 0.0 < decay_rate <= 1.0 or decay_steps <= 0:
            raise ValueError("invalid schedule parameters")
        self.initial_lr = initial_lr
        self.decay_rate = decay_rate
        self.decay_steps = decay_steps
        self.staircase = staircase

    def lr_at(self, step: int) -> float:
        """Learning rate at the given optimizer step."""
        exponent = step / self.decay_steps
        if self.staircase:
            exponent = np.floor(exponent)
        return float(self.initial_lr * self.decay_rate**exponent)


class _Optimizer:
    """Shared bookkeeping: parameter list, step counter, schedule."""

    def __init__(self, parameters: Iterable[Parameter], schedule: ExponentialDecay):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.schedule = schedule
        self.step_count = 0

    @property
    def lr(self) -> float:
        """Current learning rate."""
        return self.schedule.lr_at(self.step_count)

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for p in self.parameters:
            p.zero_grad()


class SGD(_Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        schedule: ExponentialDecay,
        momentum: float = 0.9,
    ):
        super().__init__(parameters, schedule)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        lr = self.lr
        for i, p in enumerate(self.parameters):
            v = self._velocity.get(i)
            if v is None:
                v = np.zeros_like(p.data)
            v = self.momentum * v - lr * p.grad
            self._velocity[i] = v
            p.data += v
        self.step_count += 1


class RMSProp(_Optimizer):
    """RMSProp, the optimizer the paper trains the SSDs with.

    Args:
        parameters: parameters to update.
        schedule: learning-rate schedule.
        rho: decay of the squared-gradient accumulator.
        eps: numerical stabilizer.
        momentum: optional heavy-ball momentum on the scaled gradient.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        schedule: ExponentialDecay,
        rho: float = 0.9,
        eps: float = 1e-8,
        momentum: float = 0.9,
    ):
        super().__init__(parameters, schedule)
        if not 0.0 < rho < 1.0:
            raise ValueError("rho must be in (0, 1)")
        self.rho = rho
        self.eps = eps
        self.momentum = momentum
        self._mean_sq: Dict[int, np.ndarray] = {}
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        lr = self.lr
        for i, p in enumerate(self.parameters):
            ms = self._mean_sq.get(i)
            if ms is None:
                ms = np.zeros_like(p.data)
            ms = self.rho * ms + (1.0 - self.rho) * p.grad * p.grad
            self._mean_sq[i] = ms
            update = lr * p.grad / (np.sqrt(ms) + self.eps)
            if self.momentum > 0.0:
                v = self._velocity.get(i)
                if v is None:
                    v = np.zeros_like(p.data)
                v = self.momentum * v + update
                self._velocity[i] = v
                update = v
            p.data -= update
        self.step_count += 1
