"""Standard and depthwise 2-D convolutions with backprop.

MobileNetV2 only needs these two flavours: dense convolutions (the stem
and every 1x1 pointwise conv) and 3x3 depthwise convolutions. Both use
im2col so the inner loop is a single matmul.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.nn.functional import col2im, im2col
from repro.seeding import DEFAULT_INIT_SEED
from repro.nn.module import Module, Parameter


def _he_init(shape, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He-normal initialization, appropriate for ReLU-family activations."""
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


class Conv2d(Module):
    """Dense 2-D convolution over NCHW inputs.

    Args:
        in_channels: input channel count.
        out_channels: output channel count.
        kernel_size: square kernel edge.
        stride: spatial stride.
        padding: symmetric zero padding.
        bias: add a per-channel bias (disabled when a BatchNorm follows).
        rng: initializer RNG; defaults to a fixed seed for reproducibility.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if in_channels <= 0 or out_channels <= 0 or kernel_size <= 0:
            raise ShapeError("conv dimensions must be positive")
        rng = rng or np.random.default_rng(DEFAULT_INIT_SEED)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            _he_init((out_channels, in_channels, kernel_size, kernel_size), fan_in, rng)
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        self._cache = None

    def macs(self, out_h: int, out_w: int) -> int:
        """Multiply-accumulate count for one image at this output size."""
        k = self.kernel_size
        return self.out_channels * self.in_channels * k * k * out_h * out_w

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ShapeError(
                f"Conv2d expects (N, {self.in_channels}, H, W), got {x.shape}"
            )
        k, s, p = self.kernel_size, self.stride, self.padding
        cols, out_h, out_w = im2col(x, k, k, s, p)
        n = x.shape[0]
        flat = cols.reshape(n, self.in_channels * k * k, out_h * out_w)
        w2d = self.weight.data.reshape(self.out_channels, -1)
        out = np.einsum("oc,ncl->nol", w2d, flat, optimize=True)
        if self.bias is not None:
            out += self.bias.data[None, :, None]
        self._cache = (x.shape, flat)
        return out.reshape(n, self.out_channels, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("backward called before forward")
        x_shape, flat = self._cache
        n, _, out_h, out_w = grad_out.shape
        g = grad_out.reshape(n, self.out_channels, out_h * out_w)
        w2d = self.weight.data.reshape(self.out_channels, -1)
        self.weight.grad += np.einsum("nol,ncl->oc", g, flat, optimize=True).reshape(
            self.weight.data.shape
        )
        if self.bias is not None:
            self.bias.grad += g.sum(axis=(0, 2))
        grad_cols = np.einsum("oc,nol->ncl", w2d, g, optimize=True)
        k = self.kernel_size
        grad_cols = grad_cols.reshape(
            n, self.in_channels, k, k, out_h, out_w
        )
        return col2im(grad_cols, x_shape, k, k, self.stride, self.padding)


class DepthwiseConv2d(Module):
    """Depthwise 3x3 (or kxk) convolution: one filter per channel.

    Args:
        channels: input = output channel count.
        kernel_size: square kernel edge.
        stride: spatial stride.
        padding: symmetric zero padding.
        bias: add a per-channel bias.
        rng: initializer RNG.
    """

    def __init__(
        self,
        channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 1,
        bias: bool = False,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if channels <= 0 or kernel_size <= 0:
            raise ShapeError("conv dimensions must be positive")
        rng = rng or np.random.default_rng(DEFAULT_INIT_SEED)
        self.channels = channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = kernel_size * kernel_size
        self.weight = Parameter(
            _he_init((channels, kernel_size, kernel_size), fan_in, rng)
        )
        self.bias = Parameter(np.zeros(channels)) if bias else None
        self._cache = None

    def macs(self, out_h: int, out_w: int) -> int:
        """Multiply-accumulate count for one image at this output size."""
        k = self.kernel_size
        return self.channels * k * k * out_h * out_w

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.channels:
            raise ShapeError(
                f"DepthwiseConv2d expects (N, {self.channels}, H, W), got {x.shape}"
            )
        k, s, p = self.kernel_size, self.stride, self.padding
        cols, out_h, out_w = im2col(x, k, k, s, p)
        # cols: (N, C, k, k, out_h, out_w); weight: (C, k, k)
        flat = cols.reshape(x.shape[0], self.channels, k * k, out_h * out_w)
        wflat = self.weight.data.reshape(self.channels, k * k)
        out = np.einsum("nckl,ck->ncl", flat, wflat, optimize=True)
        if self.bias is not None:
            out += self.bias.data[None, :, None]
        self._cache = (x.shape, flat)
        return out.reshape(x.shape[0], self.channels, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("backward called before forward")
        x_shape, flat = self._cache
        n, _, out_h, out_w = grad_out.shape
        k = self.kernel_size
        g = grad_out.reshape(n, self.channels, out_h * out_w)
        wflat = self.weight.data.reshape(self.channels, k * k)
        self.weight.grad += np.einsum("nckl,ncl->ck", flat, g, optimize=True).reshape(
            self.weight.data.shape
        )
        if self.bias is not None:
            self.bias.grad += g.sum(axis=(0, 2))
        grad_cols = np.einsum("ck,ncl->nckl", wflat, g, optimize=True)
        grad_cols = grad_cols.reshape(n, self.channels, k, k, out_h, out_w)
        return col2im(grad_cols, x_shape, k, k, self.stride, self.padding)
