"""Activation functions.

MobileNetV2 uses ReLU6 everywhere (its bounded range is also what makes
8-bit quantization of activations well-behaved).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self):
        super().__init__()
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0.0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ShapeError("backward called before forward")
        return grad_out * self._mask


class ReLU6(Module):
    """ReLU clipped at 6, the MobileNet activation."""

    def __init__(self):
        super().__init__()
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = (x > 0.0) & (x < 6.0)
        return np.clip(x, 0.0, 6.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ShapeError("backward called before forward")
        return grad_out * self._mask
