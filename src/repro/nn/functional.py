"""im2col/col2im and related low-level kernels.

These power both the float training path and the integer inference path
of the quantization package, so they accept any numeric dtype.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeError


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution along one axis."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"convolution collapses dimension: size={size} kernel={kernel} "
            f"stride={stride} pad={pad}"
        )
    return out


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold ``x`` (N, C, H, W) into columns.

    Returns:
        ``(cols, out_h, out_w)`` where ``cols`` has shape
        ``(N, C, kh, kw, out_h, out_w)``.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kh, stride, pad)
    out_w = conv_output_size(w, kw, stride, pad)
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        i_end = i + stride * out_h
        for j in range(kw):
            j_end = j + stride * out_w
            cols[:, :, i, j] = x[:, :, i:i_end:stride, j:j_end:stride]
    return cols, out_h, out_w


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold columns back into an image, accumulating overlaps.

    Inverse (adjoint) of :func:`im2col` used in the convolution backward
    pass.
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kh, stride, pad)
    out_w = conv_output_size(w, kw, stride, pad)
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + stride * out_h
        for j in range(kw):
            j_end = j + stride * out_w
            padded[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j]
    if pad > 0:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded
