"""Fully-connected layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.nn.module import Module, Parameter
from repro.seeding import DEFAULT_INIT_SEED


class Linear(Module):
    """Affine map ``y = x W^T + b`` over ``(N, in_features)`` inputs."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ShapeError("linear dimensions must be positive")
        rng = rng or np.random.default_rng(DEFAULT_INIT_SEED)
        std = np.sqrt(2.0 / in_features)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(rng.normal(0.0, std, size=(out_features, in_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(f"Linear expects (N, {self.in_features}), got {x.shape}")
        self._cache = x
        out = x @ self.weight.data.T
        if self.bias is not None:
            out += self.bias.data
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("backward called before forward")
        x = self._cache
        self.weight.grad += grad_out.T @ x
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.data
