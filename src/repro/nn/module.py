"""Module and Parameter base classes for the numpy NN stack.

A :class:`Module` owns named :class:`Parameter` objects and/or child
modules, implements ``forward`` (caching whatever ``backward`` will need)
and ``backward`` (accumulating parameter gradients and returning the
gradient w.r.t. its input). The design intentionally mirrors the small
subset of torch.nn semantics the detector needs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import ShapeError


class Parameter:
    """A learnable tensor with its gradient accumulator."""

    def __init__(self, data: np.ndarray):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        """Number of scalar elements."""
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the gradient accumulator."""
        self.grad.fill(0.0)


class Module:
    """Base class for layers and models."""

    def __init__(self):
        self._parameters: Dict[str, Parameter] = {}
        self._children: Dict[str, "Module"] = {}
        self.training = True

    # -- registration ------------------------------------------------------

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_children", {})[name] = value
        object.__setattr__(self, name, value)

    def register_child(self, name: str, module: "Module") -> None:
        """Register a child that is not stored as a plain attribute."""
        self._children[name] = module

    # -- traversal ----------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """All parameters of this module and its descendants."""
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for cname, child in self._children.items():
            yield from child.named_parameters(prefix=f"{prefix}{cname}.")

    def parameters(self) -> List[Parameter]:
        """Flat list of all parameters."""
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar weights."""
        return sum(p.size for p in self.parameters())

    def children(self) -> List["Module"]:
        """Direct child modules."""
        return list(self._children.values())

    def zero_grad(self) -> None:
        """Reset every parameter gradient in the tree."""
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects BatchNorm and QAT)."""
        self.training = mode
        for child in self._children.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        """Shortcut for ``train(False)``."""
        return self.train(False)

    # -- compute -------------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- state ----------------------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter plus persistent buffers."""
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, buf in self.named_buffers():
            state[name] = buf.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters and buffers saved by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        for name, value in state.items():
            if name in params:
                if params[name].data.shape != value.shape:
                    raise ShapeError(
                        f"{name}: expected {params[name].data.shape}, got {value.shape}"
                    )
                params[name].data = value.copy()
            elif name in buffers:
                self._assign_buffer(name, value)
            else:
                raise KeyError(f"unexpected state entry {name!r}")
        missing = set(params) - set(state)
        if missing:
            raise KeyError(f"missing parameters in state: {sorted(missing)}")

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Persistent non-learnable state (e.g. BatchNorm running stats)."""
        for name, buf in getattr(self, "_buffers", {}).items():
            yield (f"{prefix}{name}", buf)
        for cname, child in self._children.items():
            yield from child.named_buffers(prefix=f"{prefix}{cname}.")

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a persistent buffer (saved in ``state_dict``)."""
        self.__dict__.setdefault("_buffers", {})[name] = value
        object.__setattr__(self, name, value)

    def _assign_buffer(self, dotted: str, value: np.ndarray) -> None:
        parts = dotted.split(".")
        module: Module = self
        for part in parts[:-1]:
            module = module._children[part]
        module._buffers[parts[-1]] = value.copy()
        object.__setattr__(module, parts[-1], module._buffers[parts[-1]])


class Sequential(Module):
    """Runs child modules in order; backward runs them in reverse."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: List[str] = []
        for i, m in enumerate(modules):
            name = f"layer{i}"
            self.register_child(name, m)
            self._order.append(name)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._children[self._order[index]]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for name in self._order:
            x = self._children[name](x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for name in reversed(self._order):
            grad_out = self._children[name].backward(grad_out)
        return grad_out
