"""Loss functions for SSD training: softmax cross-entropy and smooth L1.

Each function returns ``(loss_value, gradient_wrt_input)`` so the caller
can feed the gradient straight into the model's ``backward``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ShapeError


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray,
    labels: np.ndarray,
    weights: Optional[np.ndarray] = None,
    normalizer: Optional[float] = None,
) -> Tuple[float, np.ndarray]:
    """Softmax cross-entropy over the last axis.

    Args:
        logits: ``(..., n_classes)`` raw scores.
        labels: integer class indices, shape ``logits.shape[:-1]``.
        weights: optional per-element weights of the same shape as
            ``labels``; elements with weight 0 contribute nothing (used to
            select positives and hard negatives in the SSD loss).
        normalizer: divisor of the total loss (defaults to the sum of
            weights, or the element count without weights).

    Returns:
        ``(mean_loss, grad_wrt_logits)``.
    """
    if labels.shape != logits.shape[:-1]:
        raise ShapeError(f"labels {labels.shape} vs logits {logits.shape}")
    probs = softmax(logits)
    flat_probs = probs.reshape(-1, logits.shape[-1])
    flat_labels = labels.reshape(-1).astype(int)
    picked = flat_probs[np.arange(flat_labels.size), flat_labels]
    losses = -np.log(np.clip(picked, 1e-12, None)).reshape(labels.shape)
    if weights is None:
        weights = np.ones_like(losses)
    if normalizer is None:
        normalizer = max(float(weights.sum()), 1.0)
    loss = float((losses * weights).sum() / normalizer)
    one_hot = np.zeros_like(flat_probs)
    one_hot[np.arange(flat_labels.size), flat_labels] = 1.0
    grad = (flat_probs - one_hot).reshape(logits.shape)
    grad *= (weights / normalizer)[..., None]
    return loss, grad


def smooth_l1_loss(
    pred: np.ndarray,
    target: np.ndarray,
    weights: Optional[np.ndarray] = None,
    beta: float = 1.0,
    normalizer: Optional[float] = None,
) -> Tuple[float, np.ndarray]:
    """Huber / smooth-L1 loss, elementwise, summed then normalized.

    Args:
        pred: predictions, any shape.
        target: same shape as ``pred``.
        weights: optional broadcastable weights (0 masks an element).
        beta: the quadratic/linear transition point.
        normalizer: divisor; defaults to the number of weighted elements.

    Returns:
        ``(loss, grad_wrt_pred)``.
    """
    if pred.shape != target.shape:
        raise ShapeError(f"pred {pred.shape} vs target {target.shape}")
    if beta <= 0.0:
        raise ValueError("beta must be positive")
    diff = pred - target
    abs_diff = np.abs(diff)
    quadratic = abs_diff < beta
    losses = np.where(
        quadratic, 0.5 * diff * diff / beta, abs_diff - 0.5 * beta
    )
    if weights is None:
        weights = np.ones_like(losses)
    weighted = losses * weights
    if normalizer is None:
        normalizer = max(float(np.count_nonzero(weights)), 1.0)
    loss = float(weighted.sum() / normalizer)
    grad = np.where(quadratic, diff / beta, np.sign(diff)) * weights / normalizer
    return loss, grad
