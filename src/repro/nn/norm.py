"""Batch normalization with running statistics and a folding helper.

Folding BN into the preceding convolution is required before int8
quantization (the GAP8 kernels run conv+BN as one fused integer op).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeError
from repro.nn.module import Module, Parameter


class BatchNorm2d(Module):
    """Per-channel batch normalization over NCHW activations.

    Args:
        channels: number of channels.
        eps: numerical stabilizer.
        momentum: running-statistics update rate.
    """

    def __init__(self, channels: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        if channels <= 0:
            raise ShapeError("channels must be positive")
        self.channels = channels
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(channels))
        self.beta = Parameter(np.zeros(channels))
        self.register_buffer("running_mean", np.zeros(channels))
        self.register_buffer("running_var", np.ones(channels))
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.channels:
            raise ShapeError(
                f"BatchNorm2d expects (N, {self.channels}, H, W), got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean += self.momentum * (mean - self.running_mean)
            self.running_var += self.momentum * (var - self.running_var)
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = (
            self.gamma.data[None, :, None, None] * x_hat
            + self.beta.data[None, :, None, None]
        )
        self._cache = (x_hat, inv_std)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("backward called before forward")
        x_hat, inv_std = self._cache
        n, _, h, w = grad_out.shape
        m = n * h * w
        self.gamma.grad += (grad_out * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad_out.sum(axis=(0, 2, 3))
        g = grad_out * self.gamma.data[None, :, None, None]
        if not self.training:
            return g * inv_std[None, :, None, None]
        sum_g = g.sum(axis=(0, 2, 3), keepdims=True)
        sum_gx = (g * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        return (
            inv_std[None, :, None, None] * (g - sum_g / m - x_hat * sum_gx / m)
        )

    def fold_scale_shift(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(scale, shift)`` such that ``y = scale * x + shift`` in eval mode.

        Used to fold the BN into the preceding convolution's weights and
        bias before quantization.
        """
        inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
        scale = self.gamma.data * inv_std
        shift = self.beta.data - self.running_mean * scale
        return scale, shift
