"""Occupancy mapping and coverage metrics (paper Sec. III-C / IV-B)."""

from repro.mapping.occupancy import CELL_SIZE_M, OccupancyGrid
from repro.mapping.mocap import MotionCaptureTracker, TrackedSample
from repro.mapping.coverage import CoverageSeries

__all__ = [
    "CELL_SIZE_M",
    "OccupancyGrid",
    "MotionCaptureTracker",
    "TrackedSample",
    "CoverageSeries",
]
