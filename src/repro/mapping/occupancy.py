"""Occupancy grid over the room, as used for Fig. 3 and Fig. 5.

The paper discretizes the 6.5 m x 5.5 m room into 0.5 m x 0.5 m cells
(143 cells), marks a cell *visited* when the drone's centre of mass falls
into it, and plots the occupancy *time* per cell as a heatmap capped at
18 s.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.errors import WorldError
from repro.geometry.vec import Vec2
from repro.world.room import Room

#: Cell edge length used throughout the paper, metres.
CELL_SIZE_M = 0.5


class OccupancyGrid:
    """Visit counts and occupancy time on a regular grid.

    Args:
        room: the room to discretize.
        cell_size: cell edge length in metres.
    """

    def __init__(self, room: Room, cell_size: float = CELL_SIZE_M):
        if cell_size <= 0.0:
            raise WorldError("cell size must be positive")
        self.room = room
        self.cell_size = cell_size
        self.nx = int(math.ceil(room.width / cell_size))
        self.ny = int(math.ceil(room.length / cell_size))
        # Flat Python lists: `record` runs at the mocap rate (every
        # control tick) and scalar list updates are ~3x cheaper than
        # numpy item assignment; the array views are built on demand.
        self._time = [0.0] * (self.nx * self.ny)
        self._visited = [False] * (self.nx * self.ny)
        self._visited_count = 0

    @property
    def n_cells(self) -> int:
        """Total number of cells (143 for the paper room at 0.5 m)."""
        return self.nx * self.ny

    def cell_of(self, p: Vec2) -> Tuple[int, int]:
        """Grid indices ``(ix, iy)`` of the cell containing ``p``.

        Positions on the far walls are clamped into the last cell so the
        drone touching a wall still counts inside the room.
        """
        ix = min(self.nx - 1, max(0, int(p.x / self.cell_size)))
        iy = min(self.ny - 1, max(0, int(p.y / self.cell_size)))
        return ix, iy

    def record(self, p: Vec2, dt: float) -> None:
        """Account a dwell of ``dt`` seconds at position ``p``."""
        ix, iy = self.cell_of(p)
        idx = iy * self.nx + ix
        self._time[idx] += dt
        if not self._visited[idx]:
            self._visited[idx] = True
            self._visited_count += 1

    @property
    def visited_mask(self) -> np.ndarray:
        """Boolean ``(ny, nx)`` array of visited cells (copy)."""
        return np.array(self._visited, dtype=bool).reshape(self.ny, self.nx)

    @property
    def occupancy_time(self) -> np.ndarray:
        """Seconds spent per cell, ``(ny, nx)`` (copy)."""
        return np.array(self._time, dtype=np.float64).reshape(self.ny, self.nx)

    def visited_count(self) -> int:
        """Number of visited cells (tracked incrementally, O(1))."""
        return self._visited_count

    def coverage(self) -> float:
        """Fraction of cells visited, in ``[0, 1]``."""
        return self.visited_count() / self.n_cells

    def heatmap(self, cap_seconds: float = 18.0) -> np.ndarray:
        """Occupancy time clipped to ``cap_seconds`` (the paper's Fig. 3 cap)."""
        return np.clip(self.occupancy_time, 0.0, cap_seconds)

    def render_ascii(self, cap_seconds: float = 18.0) -> str:
        """ASCII rendition of the heatmap (black = never visited).

        Rows are printed north-up (largest y first), matching the usual
        plot orientation.
        """
        ramp = " .:-=+*#%@"
        capped = self.heatmap(cap_seconds)
        lines = []
        for iy in range(self.ny - 1, -1, -1):
            row = []
            for ix in range(self.nx):
                if not self._visited[iy * self.nx + ix]:
                    row.append(".")
                else:
                    level = capped[iy, ix] / cap_seconds
                    idx = min(len(ramp) - 1, 1 + int(level * (len(ramp) - 2)))
                    row.append(ramp[idx])
            lines.append("".join(row))
        return "\n".join(lines)
