"""Occupancy grid over the room, as used for Fig. 3 and Fig. 5.

The paper discretizes the 6.5 m x 5.5 m room into 0.5 m x 0.5 m cells
(143 cells), marks a cell *visited* when the drone's centre of mass falls
into it, and plots the occupancy *time* per cell as a heatmap capped at
18 s.

In the paper's empty mocap room every cell is flyable, so dividing the
visited count by ``nx * ny`` is the right normalization. On worlds with
obstacles (the synthetic presets and every generated maze/warehouse)
that denominator counts cells inside shelves, walls and sealed pockets
against the drone, so :meth:`OccupancyGrid.coverage` normalizes by the
cells *reachable from the start pose* instead -- computed once per grid
from the free-space raster + flood fill of
:mod:`repro.world.freespace` -- while :meth:`OccupancyGrid.coverage_raw`
keeps the historical visited-over-all-cells fraction.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.errors import WorldError
from repro.geometry.vec import Vec2
from repro.world.freespace import reachable_cell_mask
from repro.world.room import Room

#: Cell edge length used throughout the paper, metres.
CELL_SIZE_M = 0.5


class OccupancyGrid:
    """Visit counts and occupancy time on a regular grid.

    Args:
        room: the room to discretize.
        cell_size: cell edge length in metres.
        start: the drone's start pose. When given, the cells reachable
            from it (through free space, with the standard validation
            margin) are computed once and :meth:`coverage` normalizes by
            their count. When ``None`` every cell counts as reachable
            and :meth:`coverage` equals :meth:`coverage_raw`.
    """

    def __init__(
        self,
        room: Room,
        cell_size: float = CELL_SIZE_M,
        start: Optional[Vec2] = None,
    ):
        if cell_size <= 0.0:
            raise WorldError("cell size must be positive")
        self.room = room
        self.cell_size = cell_size
        self.nx = int(math.ceil(room.width / cell_size))
        self.ny = int(math.ceil(room.length / cell_size))
        # Flat Python lists: `record` runs at the mocap rate (every
        # control tick) and scalar list updates are ~3x cheaper than
        # numpy item assignment; the array views are built on demand.
        self._time = [0.0] * (self.nx * self.ny)
        self._visited = [False] * (self.nx * self.ny)
        self._visited_count = 0
        self._visited_reachable_count = 0
        self._out_of_room_time = 0.0
        self._out_of_room_count = 0
        if start is None:
            self._reachable = None
            self.reachable_cells = self.nx * self.ny
        else:
            mask = reachable_cell_mask(
                room, start, cell_size, (self.ny, self.nx)
            )
            self._reachable = mask.ravel().tolist()
            self.reachable_cells = int(mask.sum())

    @classmethod
    def from_occupancy(
        cls,
        room: Room,
        occupancy_time: np.ndarray,
        visited: np.ndarray,
        cell_size: float = CELL_SIZE_M,
        start: Optional[Vec2] = None,
    ) -> "OccupancyGrid":
        """Rebuild a grid from persisted :attr:`occupancy_time`/:attr:`visited_mask`.

        The deserialization path of the execution layer: a cached or
        pooled exploration job ships its grid as two plain arrays, and
        this reconstructs an equivalent grid (rendering, coverage and
        visit counts all agree with the original).

        Args:
            room: the room the arrays were recorded in.
            occupancy_time: ``(ny, nx)`` seconds-per-cell array.
            visited: ``(ny, nx)`` boolean visited mask.
            cell_size: cell edge length the arrays were built with.
            start: optional start pose for reachable-cell bookkeeping
                (as in the constructor); ``None`` treats every cell as
                reachable.

        Raises:
            WorldError: when the array shapes do not match the grid the
                room/cell size imply.
        """
        grid = cls(room, cell_size, start=start)
        time_arr = np.asarray(occupancy_time, dtype=np.float64)
        visited_arr = np.asarray(visited, dtype=bool)
        expected = (grid.ny, grid.nx)
        if time_arr.shape != expected or visited_arr.shape != expected:
            raise WorldError(
                f"occupancy arrays {time_arr.shape}/{visited_arr.shape} do not "
                f"match the {expected} grid of a "
                f"{room.width:g} x {room.length:g} m room at {cell_size:g} m"
            )
        grid._time = [float(t) for t in time_arr.ravel()]
        grid._visited = [bool(v) for v in visited_arr.ravel()]
        grid._visited_count = int(visited_arr.sum())
        if grid._reachable is None:
            grid._visited_reachable_count = grid._visited_count
        else:
            reachable = np.array(grid._reachable, dtype=bool)
            grid._visited_reachable_count = int(
                (visited_arr.ravel() & reachable).sum()
            )
        return grid

    @property
    def n_cells(self) -> int:
        """Total number of cells (143 for the paper room at 0.5 m)."""
        return self.nx * self.ny

    @property
    def reachable_mask(self) -> np.ndarray:
        """Boolean ``(ny, nx)`` array of reachable cells (copy).

        All-``True`` when the grid was built without a start pose.
        """
        if self._reachable is None:
            return np.ones((self.ny, self.nx), dtype=bool)
        return np.array(self._reachable, dtype=bool).reshape(self.ny, self.nx)

    def cell_of(self, p: Vec2) -> Tuple[int, int]:
        """Grid indices ``(ix, iy)`` of the cell containing ``p``.

        Positions on the walls are clamped into the nearest cell so the
        drone touching a wall still counts inside the room.

        Raises:
            WorldError: when ``p`` has a non-finite coordinate or lies
                outside the room entirely (negative, or past the far
                walls) -- silently clamping such poses into edge cells
                used to accrue coverage the drone never earned.
        """
        if not (math.isfinite(p.x) and math.isfinite(p.y)):
            raise WorldError(f"non-finite position ({p.x}, {p.y})")
        if not self._in_room(p):
            raise WorldError(
                f"position ({p.x:.3f}, {p.y:.3f}) outside the "
                f"{self.room.width:g} x {self.room.length:g} m room"
            )
        return self._clamped_cell(p)

    def _in_room(self, p: Vec2) -> bool:
        return 0.0 <= p.x <= self.room.width and 0.0 <= p.y <= self.room.length

    def _clamped_cell(self, p: Vec2) -> Tuple[int, int]:
        ix = min(self.nx - 1, max(0, int(p.x / self.cell_size)))
        iy = min(self.ny - 1, max(0, int(p.y / self.cell_size)))
        return ix, iy

    def record(self, p: Vec2, dt: float) -> None:
        """Account a dwell of ``dt`` seconds at position ``p``.

        Out-of-room positions (a tracker fed poses beyond the walls) do
        not touch any cell; their dwell accumulates separately in
        :attr:`out_of_room_time` / :attr:`out_of_room_count`.

        Raises:
            WorldError: on a non-finite position.
        """
        if not (math.isfinite(p.x) and math.isfinite(p.y)):
            raise WorldError(f"non-finite position ({p.x}, {p.y})")
        if not self._in_room(p):
            self._out_of_room_time += dt
            self._out_of_room_count += 1
            return
        ix, iy = self._clamped_cell(p)
        idx = iy * self.nx + ix
        self._time[idx] += dt
        if not self._visited[idx]:
            self._visited[idx] = True
            self._visited_count += 1
            if self._reachable is None or self._reachable[idx]:
                self._visited_reachable_count += 1

    @property
    def out_of_room_time(self) -> float:
        """Dwell seconds recorded at positions outside the room."""
        return self._out_of_room_time

    @property
    def out_of_room_count(self) -> int:
        """Number of out-of-room positions offered to :meth:`record`."""
        return self._out_of_room_count

    @property
    def visited_mask(self) -> np.ndarray:
        """Boolean ``(ny, nx)`` array of visited cells (copy)."""
        return np.array(self._visited, dtype=bool).reshape(self.ny, self.nx)

    @property
    def occupancy_time(self) -> np.ndarray:
        """Seconds spent per cell, ``(ny, nx)`` (copy)."""
        return np.array(self._time, dtype=np.float64).reshape(self.ny, self.nx)

    def visited_count(self) -> int:
        """Number of visited cells (tracked incrementally, O(1))."""
        return self._visited_count

    def visited_reachable_count(self) -> int:
        """Number of visited *reachable* cells (tracked incrementally, O(1))."""
        return self._visited_reachable_count

    def coverage(self) -> float:
        """Fraction of reachable free-space cells visited, in ``[0, 1]``.

        Visited reachable cells over :attr:`reachable_cells`. On a grid
        whose cells are all reachable (the paper room, or any grid built
        without a start pose) this equals :meth:`coverage_raw` exactly.
        """
        return self.visited_reachable_count() / self.reachable_cells

    def coverage_raw(self) -> float:
        """Fraction of *all* grid cells visited, in ``[0, 1]``.

        The historical normalization (``visited / n_cells``), kept for
        continuity with pre-normalization results; it undercounts on any
        world whose grid has unreachable cells.
        """
        return self.visited_count() / self.n_cells

    def heatmap(self, cap_seconds: float = 18.0) -> np.ndarray:
        """Occupancy time clipped to ``cap_seconds`` (the paper's Fig. 3 cap)."""
        return np.clip(self.occupancy_time, 0.0, cap_seconds)

    def render_ascii(self, cap_seconds: float = 18.0) -> str:
        """ASCII rendition of the heatmap (black = never visited).

        Rows are printed north-up (largest y first), matching the usual
        plot orientation.
        """
        ramp = " .:-=+*#%@"
        capped = self.heatmap(cap_seconds)
        lines = []
        for iy in range(self.ny - 1, -1, -1):
            row = []
            for ix in range(self.nx):
                if not self._visited[iy * self.nx + ix]:
                    row.append(".")
                else:
                    level = capped[iy, ix] / cap_seconds
                    idx = min(len(ramp) - 1, 1 + int(level * (len(ramp) - 2)))
                    row.append(ramp[idx])
            lines.append("".join(row))
        return "\n".join(lines)
