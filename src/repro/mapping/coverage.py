"""Coverage-over-time series, as plotted in the paper's Fig. 6."""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np


class CoverageSeries:
    """A (time, coverage) trace of one flight."""

    def __init__(self):
        self._times: List[float] = []
        self._coverage: List[float] = []

    def append(self, time: float, coverage: float) -> None:
        """Record the coverage fraction at ``time`` seconds.

        Raises:
            ValueError: on a non-finite time or coverage value (a single
                NaN would silently poison :meth:`mean_and_variance` and
                every resampled aggregate), or on a time running
                backwards.
        """
        if not math.isfinite(time):
            raise ValueError(f"time must be finite, got {time}")
        if not math.isfinite(coverage):
            raise ValueError(f"coverage must be finite, got {coverage}")
        if self._times and time < self._times[-1]:
            raise ValueError("time must be non-decreasing")
        self._times.append(time)
        self._coverage.append(coverage)

    @classmethod
    def from_arrays(cls, times: np.ndarray, coverage: np.ndarray) -> "CoverageSeries":
        """Build a series from whole sample arrays in one shot.

        The fleet stepper accumulates every mission's coverage trace as
        array columns and converts them here on exit; the result equals
        appending the samples one by one (same finiteness and
        monotonicity validation, vectorized).

        Raises:
            ValueError: on shape mismatch, non-finite samples, or a
                time axis running backwards.
        """
        t = np.asarray(times, dtype=np.float64)
        c = np.asarray(coverage, dtype=np.float64)
        if t.ndim != 1 or t.shape != c.shape:
            raise ValueError(
                f"times and coverage must be equal-length 1-D arrays, "
                f"got {t.shape} and {c.shape}"
            )
        if t.size:
            if not np.isfinite(t).all():
                raise ValueError("time must be finite")
            if not np.isfinite(c).all():
                raise ValueError("coverage must be finite")
            if t.size > 1 and bool((np.diff(t) < 0.0).any()):
                raise ValueError("time must be non-decreasing")
        series = cls()
        series._times = t.tolist()
        series._coverage = c.tolist()
        return series

    @property
    def times(self) -> np.ndarray:
        return np.array(self._times, dtype=np.float64)

    @property
    def coverage(self) -> np.ndarray:
        return np.array(self._coverage, dtype=np.float64)

    def at(self, time: float) -> float:
        """Coverage at ``time`` (step interpolation; 0 before the first sample)."""
        if not self._times:
            return 0.0
        idx = int(np.searchsorted(self._times, time, side="right")) - 1
        if idx < 0:
            return 0.0
        return self._coverage[idx]

    def final(self) -> float:
        """Coverage at the end of the flight."""
        return self._coverage[-1] if self._coverage else 0.0

    def at_many(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`at`: one ``searchsorted`` for all of ``times``."""
        times = np.asarray(times, dtype=np.float64)
        if not self._times:
            return np.zeros(times.shape, dtype=np.float64)
        own_times = np.asarray(self._times, dtype=np.float64)
        own_cov = np.asarray(self._coverage, dtype=np.float64)
        idx = np.searchsorted(own_times, times, side="right") - 1
        return np.where(idx >= 0, own_cov[np.maximum(idx, 0)], 0.0)

    @staticmethod
    def mean_and_variance(
        series: Sequence["CoverageSeries"], grid_times: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Mean and variance of several runs resampled on ``grid_times``.

        This is how Fig. 6 aggregates the five pseudo-random runs. Each
        series is resampled with one binary-search pass
        (:meth:`at_many`) instead of a per-grid-point Python loop.
        """
        if not series:
            raise ValueError("need at least one series")
        grid = np.asarray(grid_times, dtype=np.float64)
        values = np.empty((len(series), grid.size), dtype=np.float64)
        for i, s in enumerate(series):
            values[i] = s.at_many(grid)
        return values.mean(axis=0), values.var(axis=0)
