"""Motion-capture tracker substitute.

The paper tracks the drone with a mocap system at 50 Hz and computes all
coverage statistics offline from that trace. Here the tracker samples the
simulator's ground-truth state at the same rate and feeds the occupancy
grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.drone.dynamics import DroneState
from repro.geometry.vec import Vec2
from repro.mapping.occupancy import OccupancyGrid
from repro.world.room import Room

#: Tracking rate of the paper's motion-capture system, Hz.
MOCAP_RATE_HZ = 50.0


@dataclass(frozen=True)
class TrackedSample:
    """One mocap sample."""

    time: float
    position: Vec2
    heading: float


class MotionCaptureTracker:
    """Records the ground-truth trajectory and updates an occupancy grid.

    Args:
        room: room being tracked (defines the grid).
        rate_hz: sampling rate; samples arriving faster are ignored.
        cell_size: occupancy-grid cell size.
        start: the drone's start pose; forwarded to the grid so
            :meth:`coverage` can normalize by the cells reachable from
            it (``None`` keeps the raw all-cells normalization).
    """

    def __init__(
        self,
        room: Room,
        rate_hz: float = MOCAP_RATE_HZ,
        cell_size: Optional[float] = None,
        start: Optional[Vec2] = None,
    ):
        self.rate_hz = rate_hz
        kwargs = {} if cell_size is None else {"cell_size": cell_size}
        self.grid = OccupancyGrid(room, start=start, **kwargs)
        # Columnar storage: the tracker runs at the control rate, and
        # allocating a TrackedSample + Vec2 per tick used to churn the
        # tick loop; plain float lists append ~5x cheaper.
        self._times: List[float] = []
        self._xs: List[float] = []
        self._ys: List[float] = []
        self._headings: List[float] = []
        self._period = 1.0 / rate_hz
        self._last_time: Optional[float] = None

    @property
    def samples(self) -> List[TrackedSample]:
        """The recorded trajectory (materialized on demand)."""
        return [
            TrackedSample(time=t, position=Vec2(x, y), heading=h)
            for t, x, y, h in zip(self._times, self._xs, self._ys, self._headings)
        ]

    def trajectory_arrays(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The trajectory as ``(times, xs, ys, headings)`` float arrays.

        The cheap bulk form of :attr:`samples`, for persistence and
        rendering pipelines.
        """
        return (
            np.array(self._times, dtype=np.float64),
            np.array(self._xs, dtype=np.float64),
            np.array(self._ys, dtype=np.float64),
            np.array(self._headings, dtype=np.float64),
        )

    def observe(self, state: DroneState) -> bool:
        """Offer the current ground-truth state to the tracker.

        Returns:
            True if a sample was recorded (i.e. at least one tracking
            period elapsed since the previous sample).
        """
        if self._last_time is not None and state.time - self._last_time < self._period - 1e-9:
            return False
        dt = self._period if self._last_time is not None else 0.0
        self._last_time = state.time
        position = state.position
        self._times.append(state.time)
        self._xs.append(position.x)
        self._ys.append(position.y)
        self._headings.append(state.heading)
        self.grid.record(position, dt)
        return True

    def coverage(self) -> float:
        """Fraction of *reachable* free-space cells visited so far.

        Normalized by the cells reachable from the start pose the
        tracker was built with (all cells when no start was given); the
        historical all-cells fraction is :meth:`coverage_raw`.
        """
        return self.grid.coverage()

    def coverage_raw(self) -> float:
        """Fraction of all grid cells visited (historical normalization)."""
        return self.grid.coverage_raw()

    @property
    def reachable_cells(self) -> int:
        """Number of grid cells reachable from the start pose."""
        return self.grid.reachable_cells
