"""Unified execution layer: jobs, executors and the result cache.

Everything the repository runs -- mission campaigns and training-bound
experiments alike -- flows through this package as
:class:`~repro.exec.jobspec.JobSpec` values: self-contained, picklable
descriptions of one deterministic computation. An
:class:`~repro.exec.executor.Executor` runs them serially or through a
supervised process pool with bit-identical results, and a persistent
:class:`~repro.exec.cache.ResultCache` keyed by each job's
:meth:`~repro.exec.jobspec.JobSpec.content_hash` makes reruns
incremental: work whose (callable, inputs, seed stream, code version)
already ran is loaded, not recomputed -- across campaigns, across
experiments, across processes.

The layer is fault-tolerant: a :class:`~repro.exec.executor.RetryPolicy`
bounds attempts, backoff and per-job wall clock; failures become
structured :class:`~repro.exec.executor.JobFailure` envelopes instead
of aborting sibling jobs; and :mod:`repro.exec.faults` injects
deterministic chaos (exceptions, worker crashes, corrupt cache writes)
to prove the recovery paths.

It also scales out: a :class:`~repro.exec.queue.Broker` is a
SQLite-backed work queue (leases, heartbeats, expiry reclaim,
exactly-once completion) that any number of
:class:`~repro.exec.worker.Worker` daemons -- ``python -m repro.exec
worker`` processes, on any host sharing the filesystem -- drain through
the very same attempt/cache/fault machinery, with byte-identical
results.

See ``docs/execution.md`` for the determinism contract, the retry and
failure semantics, and the cache directory layout.
"""

from repro.exec.cache import (
    CACHE_DIR_ENV,
    CACHE_SCHEMA,
    TRACE_SUFFIX,
    CacheStats,
    EvictionReport,
    ResultCache,
    default_cache_dir,
    open_cache,
)
from repro.exec.executor import (
    FAILURE_SCHEMA,
    ExecutionReport,
    Executor,
    JobFailure,
    ProgressCallback,
    RetryPolicy,
    is_transient,
    resolve_workers,
)
from repro.exec.faults import FAULT_PLAN_ENV, FaultPlan, FaultSpec
from repro.exec.jobspec import (
    JobSpec,
    canonical_json,
    canonical_value,
    json_roundtrip,
)
from repro.exec.queue import (
    BROKER_SCHEMA,
    Broker,
    JobOutcome,
    Lease,
    QueueCounts,
    SubmitReport,
    default_worker_id,
)
from repro.exec.worker import Worker, WorkerReport, run_worker

__all__ = [
    "BROKER_SCHEMA",
    "Broker",
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA",
    "CacheStats",
    "EvictionReport",
    "ExecutionReport",
    "Executor",
    "FAILURE_SCHEMA",
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultSpec",
    "JobFailure",
    "JobOutcome",
    "JobSpec",
    "Lease",
    "ProgressCallback",
    "QueueCounts",
    "ResultCache",
    "RetryPolicy",
    "SubmitReport",
    "TRACE_SUFFIX",
    "Worker",
    "WorkerReport",
    "canonical_json",
    "canonical_value",
    "default_cache_dir",
    "default_worker_id",
    "is_transient",
    "json_roundtrip",
    "open_cache",
    "resolve_workers",
    "run_worker",
]
