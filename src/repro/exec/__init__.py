"""Unified execution layer: jobs, executors and the result cache.

Everything the repository runs -- mission campaigns and training-bound
experiments alike -- flows through this package as
:class:`~repro.exec.jobspec.JobSpec` values: self-contained, picklable
descriptions of one deterministic computation. An
:class:`~repro.exec.executor.Executor` runs them serially or through a
supervised process pool with bit-identical results, and a persistent
:class:`~repro.exec.cache.ResultCache` keyed by each job's
:meth:`~repro.exec.jobspec.JobSpec.content_hash` makes reruns
incremental: work whose (callable, inputs, seed stream, code version)
already ran is loaded, not recomputed -- across campaigns, across
experiments, across processes.

The layer is fault-tolerant: a :class:`~repro.exec.executor.RetryPolicy`
bounds attempts, backoff and per-job wall clock; failures become
structured :class:`~repro.exec.executor.JobFailure` envelopes instead
of aborting sibling jobs; and :mod:`repro.exec.faults` injects
deterministic chaos (exceptions, worker crashes, corrupt cache writes)
to prove the recovery paths.

See ``docs/execution.md`` for the determinism contract, the retry and
failure semantics, and the cache directory layout.
"""

from repro.exec.cache import (
    CACHE_DIR_ENV,
    CACHE_SCHEMA,
    TRACE_SUFFIX,
    CacheStats,
    EvictionReport,
    ResultCache,
    default_cache_dir,
    open_cache,
)
from repro.exec.executor import (
    FAILURE_SCHEMA,
    ExecutionReport,
    Executor,
    JobFailure,
    ProgressCallback,
    RetryPolicy,
    is_transient,
    resolve_workers,
)
from repro.exec.faults import FAULT_PLAN_ENV, FaultPlan, FaultSpec
from repro.exec.jobspec import (
    JobSpec,
    canonical_json,
    canonical_value,
    json_roundtrip,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA",
    "CacheStats",
    "EvictionReport",
    "ExecutionReport",
    "Executor",
    "FAILURE_SCHEMA",
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultSpec",
    "JobFailure",
    "JobSpec",
    "ProgressCallback",
    "ResultCache",
    "RetryPolicy",
    "TRACE_SUFFIX",
    "canonical_json",
    "canonical_value",
    "default_cache_dir",
    "is_transient",
    "json_roundtrip",
    "open_cache",
    "resolve_workers",
]
