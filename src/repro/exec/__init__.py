"""Unified execution layer: jobs, executors and the result cache.

Everything the repository runs -- mission campaigns and training-bound
experiments alike -- flows through this package as
:class:`~repro.exec.jobspec.JobSpec` values: self-contained, picklable
descriptions of one deterministic computation. An
:class:`~repro.exec.executor.Executor` runs them serially or through a
process pool with bit-identical results, and a persistent
:class:`~repro.exec.cache.ResultCache` keyed by each job's
:meth:`~repro.exec.jobspec.JobSpec.content_hash` makes reruns
incremental: work whose (callable, inputs, seed stream, code version)
already ran is loaded, not recomputed -- across campaigns, across
experiments, across processes.

See ``docs/execution.md`` for the determinism contract and the cache
directory layout.
"""

from repro.exec.cache import (
    CACHE_DIR_ENV,
    CACHE_SCHEMA,
    CacheStats,
    ResultCache,
    default_cache_dir,
    open_cache,
)
from repro.exec.executor import (
    ExecutionReport,
    Executor,
    ProgressCallback,
    resolve_workers,
)
from repro.exec.jobspec import (
    JobSpec,
    canonical_json,
    canonical_value,
    json_roundtrip,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA",
    "CacheStats",
    "ExecutionReport",
    "Executor",
    "JobSpec",
    "ProgressCallback",
    "ResultCache",
    "canonical_json",
    "canonical_value",
    "default_cache_dir",
    "json_roundtrip",
    "open_cache",
    "resolve_workers",
]
