"""Worker daemon: lease jobs from a :class:`~repro.exec.queue.Broker`,
run them through the standard attempt machinery, push results back.

A worker is the queue-side twin of the in-process
:class:`~repro.exec.executor.Executor`: same cache-first lookup, same
fault-injection hook, same per-attempt watchdog timeout, same failure
envelopes -- so a campaign drained by a fleet of workers is
byte-identical to one executed serially. Each worker runs **one attempt
per lease**: retry accounting lives in the broker (``fail()`` requeues
transient failures with deterministic backoff), which keeps attempts
correct even when the retrying "loop" spans three different worker
processes, two of which died.

While an attempt runs, a daemon heartbeat thread extends the lease at a
third of its duration; a worker that loses its lease (heartbeats
refused after an expiry reclaim) abandons the result -- the broker
would refuse it anyway. SIGTERM/SIGINT (wired by ``python -m repro.exec
worker``) request a graceful stop: the current job finishes and is
completed before the loop exits.

Example:
    >>> import os, tempfile
    >>> from repro.exec import Broker, JobSpec, Worker
    >>> db = os.path.join(tempfile.mkdtemp(), "queue.db")
    >>> job = JobSpec(fn="repro.exec.demo:scaled_sum",
    ...               kwargs={"values": [1.0, 2.0], "factor": 3.0})
    >>> with Broker(db) as broker:
    ...     _ = broker.submit([job])
    ...     report = Worker(broker, worker_id="w1",
    ...                     exit_when_drained=True).run()
    ...     outcome = broker.outcome(job.content_hash())
    >>> (report.completed, outcome.state, outcome.result)
    (1, 'done', 9.0)
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.exec.cache import ResultCache
from repro.exec.executor import (
    JobTimeout,
    RetryPolicy,
    _attempt,
    _failure_from_parts,
    _watchdog_attempt,
    is_transient,
)
from repro.exec.queue import Broker, Lease, default_worker_id

#: Idle poll interval when the queue has nothing leasable.
DEFAULT_POLL_S = 0.2


@dataclass
class WorkerReport:
    """What one :meth:`Worker.run` loop did, for logs and tests."""

    worker: str = ""
    completed: int = 0  #: results pushed (executed + cache hits)
    cache_hits: int = 0
    requeued: int = 0  #: transient failures handed back for retry
    failed: int = 0  #: permanent / exhausted failures recorded
    lost: int = 0  #: leases expired under us; results discarded
    elapsed_s: float = 0.0
    events: List[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"worker {self.worker}: {self.completed} completed "
            f"({self.cache_hits} cached), {self.requeued} requeued, "
            f"{self.failed} failed, {self.lost} lost "
            f"in {self.elapsed_s:.1f} s"
        )


class Worker:
    """One worker daemon loop over a shared broker.

    Args:
        broker: the queue to drain (the worker does not own it).
        cache: optional shared :class:`ResultCache` -- hits are pushed
            to the broker without executing, and fresh results are
            stored before completion so sibling workers (and later
            serial runs) hit them.
        retry: supplies the per-attempt ``timeout_s`` and the
            deterministic ``backoff_s`` used when requeueing transient
            failures. ``max_attempts`` is broker-side state fixed at
            submit time; the worker never second-guesses it.
        worker_id: stable identity; defaults to ``<host>:<pid>``.
        lease_s: lease duration to request; default is the broker's.
        poll_s: idle sleep between empty :meth:`Broker.lease` calls.
        max_jobs: stop after this many pushed results (tests).
        exit_when_drained: return once the queue holds no pending or
            leased jobs instead of polling forever.
    """

    def __init__(
        self,
        broker: Broker,
        cache: Optional[ResultCache] = None,
        retry: Optional[RetryPolicy] = None,
        worker_id: Optional[str] = None,
        lease_s: Optional[float] = None,
        poll_s: float = DEFAULT_POLL_S,
        max_jobs: Optional[int] = None,
        exit_when_drained: bool = False,
    ) -> None:
        self.broker = broker
        self.cache = cache
        self.retry = retry or RetryPolicy()
        self.worker_id = worker_id or default_worker_id()
        self.lease_s = lease_s if lease_s is not None else broker.lease_s
        self.poll_s = poll_s
        self.max_jobs = max_jobs
        self.exit_when_drained = exit_when_drained
        self._stop = threading.Event()

    def request_stop(self) -> None:
        """Ask the loop to exit after the in-flight job (signal-safe)."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    # -- main loop --------------------------------------------------------

    def run(self) -> WorkerReport:
        """Lease/execute/complete until stopped, drained or capped."""
        report = WorkerReport(worker=self.worker_id)
        start = time.perf_counter()
        self.broker.register_worker(self.worker_id)
        while not self._stop.is_set():
            if self.max_jobs is not None and report.completed >= self.max_jobs:
                break
            lease = self.broker.lease(self.worker_id, lease_s=self.lease_s)
            if lease is None:
                if self.exit_when_drained and self.broker.counts().remaining == 0:
                    break
                if self._stop.wait(self.poll_s):
                    break
                continue
            self._work_one(lease, report)
        report.elapsed_s = time.perf_counter() - start
        return report

    def _work_one(self, lease: Lease, report: WorkerReport) -> None:
        """Run one leased attempt and push its outcome to the broker."""
        job = lease.job
        short = lease.content_hash[:12]

        if self.cache is not None:
            value, hit = self.cache.get(job)
            if hit:
                if self.broker.complete(
                    self.worker_id, lease.content_hash, value, cached=True
                ):
                    report.completed += 1
                    report.cache_hits += 1
                    report.events.append(f"cached {short}")
                else:
                    report.lost += 1
                    report.events.append(f"lost {short} (cache hit)")
                return

        lost_lease = threading.Event()
        stop_beat = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop,
            args=(lease.content_hash, stop_beat, lost_lease),
            name=f"heartbeat-{short}",
            daemon=True,
        )
        beat.start()
        try:
            try:
                if self.retry.timeout_s is not None:
                    value = _watchdog_attempt(job, lease.attempt, self.retry.timeout_s)
                else:
                    value = _attempt(job, lease.attempt)
            except Exception as exc:  # noqa: BLE001 - becomes the envelope
                self._push_failure(lease, exc, report)
                return
            if self.cache is not None:
                self.cache.put(job, value)
            if lost_lease.is_set():
                report.lost += 1
                report.events.append(f"lost {short} (completed late)")
                return
            if self.broker.complete(self.worker_id, lease.content_hash, value):
                report.completed += 1
                report.events.append(f"done {short}")
            else:
                report.lost += 1
                report.events.append(f"lost {short} (completed late)")
        finally:
            stop_beat.set()
            beat.join(timeout=5.0)

    def _heartbeat_loop(
        self, content_hash: str, stop: threading.Event, lost: threading.Event
    ) -> None:
        interval = max(self.lease_s / 3.0, 0.05)
        while not stop.wait(interval):
            if not self.broker.heartbeat(
                self.worker_id, content_hash, lease_s=self.lease_s
            ):
                lost.set()
                return

    def _push_failure(
        self, lease: Lease, exc: Exception, report: WorkerReport
    ) -> None:
        failure = _failure_from_parts(
            lease.job,
            attempts=lease.attempt + 1,
            error_type=type(exc).__name__,
            message=str(exc),
            transient=is_transient(exc),
            timed_out=isinstance(exc, JobTimeout),
        )
        delay = self.retry.backoff_for(lease.attempt + 1)
        state = self.broker.fail(
            self.worker_id, lease.content_hash, failure, retry_delay_s=delay
        )
        short = lease.content_hash[:12]
        if state == "requeued":
            report.requeued += 1
            report.events.append(f"requeued {short}: {failure.error_type}")
        elif state == "failed":
            report.failed += 1
            report.events.append(f"failed {short}: {failure.error_type}")
        else:
            report.lost += 1
            report.events.append(f"lost {short} (failure after reclaim)")


def run_worker(
    broker_path: str,
    cache: Optional[ResultCache] = None,
    retry: Optional[RetryPolicy] = None,
    **kwargs: Any,
) -> WorkerReport:
    """Open ``broker_path`` and run one :class:`Worker` loop over it."""
    with Broker(broker_path) as broker:
        worker = Worker(broker, cache=cache, retry=retry, **kwargs)
        return worker.run()


__all__ = ["Worker", "WorkerReport", "run_worker", "DEFAULT_POLL_S"]
