"""Self-contained job descriptions with deterministic content hashes.

A :class:`JobSpec` is the unit of work of the execution layer: a dotted
reference to a module-level callable, a plain-data keyword payload, and
optional ``SeedSequence`` provenance. Because the spec is *data* -- no
live objects, no closures -- it pickles to a worker process unchanged,
serializes to canonical JSON, and its :meth:`~JobSpec.content_hash`
keys the persistent :class:`~repro.exec.cache.ResultCache`: two jobs
with the same hash are guaranteed to compute the same thing, so one may
reuse the other's stored result.

The hash covers exactly the five things that determine a deterministic
job's output: the callable reference, the canonicalized kwargs, the
seed provenance ``(entropy, spawn_key)``, and a caller-supplied
``version`` token that is bumped whenever the callable's *code* changes
meaning (see ``docs/execution.md`` for the full cache-keying contract).
Cosmetic fields (``label``) are excluded.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import ExecError


def canonical_value(value: Any, path: str = "kwargs") -> Any:
    """Recursively coerce ``value`` into canonical JSON plain data.

    Tuples become lists, numpy scalars become Python scalars, and dicts
    must be string-keyed. Anything else (live objects, arrays, sets)
    is rejected: a payload the hash cannot see must never reach a job.

    Args:
        value: the value to canonicalize.
        path: dotted location used in error messages.

    Returns:
        An equal value built only from ``dict``/``list``/``str``/
        ``int``/``float``/``bool``/``None``.

    Raises:
        ExecError: for values with no canonical JSON form.

    Example:
        >>> from repro.exec import canonical_value
        >>> canonical_value({"b": (1, 2), "a": 3.0})
        {'b': [1, 2], 'a': 3.0}
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, np.generic):  # numpy scalar -> Python scalar
        value = value.item()
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, (list, tuple)):
        return [canonical_value(v, f"{path}[{i}]") for i, v in enumerate(value)]
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise ExecError(
                    f"{path}: dict keys must be strings, got {key!r}"
                )
            out[key] = canonical_value(item, f"{path}.{key}")
        return out
    raise ExecError(
        f"{path}: {type(value).__name__} has no canonical JSON form; "
        "pass plain data (dict/list/str/numbers) and rebuild rich "
        "objects inside the job callable"
    )


def canonical_json(value: Any) -> str:
    """The canonical JSON string all hashes and caches are built from."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def json_roundtrip(value: Any) -> Any:
    """Normalize ``value`` through a JSON encode/decode cycle.

    Every execution path (serial, pooled, cache hit) returns results
    through this normalization, which is what makes the three paths
    byte-identical downstream: a freshly-computed tuple and a
    cache-loaded list collapse to the same plain data, while floats
    survive exactly (``json`` round-trips the shortest ``repr``).
    """
    return json.loads(json.dumps(value))  # repro: noqa[RPR104] ordering is discarded by the immediate loads; not a persisted form


@dataclass(frozen=True)
class JobSpec:
    """One unit of deterministic work, as pure data.

    Attributes:
        fn: dotted reference ``"package.module:function"`` (or the
            legacy ``"package.module.function"`` form) to a
            module-level callable.
        kwargs: keyword payload, canonicalized at construction (tuples
            become lists, numpy scalars become Python scalars).
        seed_entropy: root entropy of the job's ``SeedSequence``, or
            ``None`` for jobs that consume no randomness.
        spawn_key: spawn key of the job's stream; together with
            ``seed_entropy`` this reproduces exactly the child stream
            ``SeedSequence(entropy).spawn(n)[i]`` would hand out.
        version: code-version token mixed into the hash; bump it when
            the callable's semantics change so stale cached results are
            invalidated instead of silently reused.
        label: human-readable name for progress lines; excluded from
            the hash (renaming a job must not re-execute it).
        extra: observability-only keyword arguments passed to the
            callable alongside ``kwargs`` but excluded from the hash
            and from :meth:`to_dict`. For side effects that must not
            change the result or its cache identity -- e.g. the trace
            directory a recorded mission writes its telemetry to. The
            callable's contract is that ``extra`` never influences the
            returned value; keys may not shadow ``kwargs`` keys.

    Example:
        >>> from repro.exec import JobSpec
        >>> job = JobSpec(
        ...     fn="repro.exec.demo:seeded_normals",
        ...     kwargs={"n": 3},
        ...     seed_entropy=7,
        ...     spawn_key=(0,),
        ...     version="demo/v1",
        ... )
        >>> job.run() == job.run()  # deterministic from the spec alone
        True
        >>> job.content_hash() == job.content_hash()
        True
    """

    fn: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    seed_entropy: Optional[int] = None
    spawn_key: Tuple[int, ...] = ()
    version: str = ""
    label: str = ""
    extra: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.fn or (":" not in self.fn and "." not in self.fn):
            raise ExecError(
                f"fn must reference a module-level callable as "
                f"'package.module:function', got {self.fn!r}"
            )
        object.__setattr__(self, "kwargs", canonical_value(dict(self.kwargs)))
        object.__setattr__(self, "spawn_key", tuple(int(k) for k in self.spawn_key))
        if self.seed_entropy is not None:
            object.__setattr__(self, "seed_entropy", int(self.seed_entropy))
        object.__setattr__(
            self, "extra", canonical_value(dict(self.extra), "extra")
        )
        shadowed = set(self.extra) & set(self.kwargs)
        if shadowed:
            raise ExecError(
                f"extra keys shadow kwargs: {sorted(shadowed)}; side-channel "
                "arguments must not overlap the hashed payload"
            )

    # -- identity ---------------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical plain-data form (JSON- and hash-friendly).

        Excludes the cosmetic ``label`` and the side-channel ``extra``:
        the dict *is* the job's identity, and neither may influence the
        result.
        """
        return {
            "fn": self.fn,
            "kwargs": self.kwargs,
            "seed_entropy": self.seed_entropy,
            "spawn_key": list(self.spawn_key),
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, data: dict, label: str = "") -> "JobSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            fn=data["fn"],
            kwargs=dict(data.get("kwargs", {})),
            seed_entropy=data.get("seed_entropy"),
            spawn_key=tuple(data.get("spawn_key", ())),
            version=data.get("version", ""),
            label=label,
        )

    def content_hash(self) -> str:
        """Stable SHA-256 digest of everything that determines the result.

        Covers ``fn``, the canonical kwargs, the seed provenance and
        the ``version`` token; excludes the cosmetic ``label`` and the
        side-channel ``extra`` (attaching observability outputs to a
        job must not re-key its cached result). The
        digest is identical in every process and across interpreter
        runs (no ``hash()`` randomization involved). Memoized: the spec
        is frozen, and the executor asks several times per job (cache
        lookup, dedup grouping, store), which would otherwise
        re-serialize a potentially large payload each time.
        """
        cached = self.__dict__.get("_content_hash")
        if cached is None:
            blob = canonical_json(self.to_dict())
            cached = hashlib.sha256(blob.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_content_hash", cached)
        return cached

    # -- execution --------------------------------------------------------

    def seed_sequence(self) -> Optional[np.random.SeedSequence]:
        """The job's independent root stream, or ``None`` if unseeded."""
        if self.seed_entropy is None:
            return None
        return np.random.SeedSequence(self.seed_entropy, spawn_key=self.spawn_key)

    def resolve(self) -> Callable[..., Any]:
        """Import and return the referenced callable.

        Raises:
            ExecError: when the module or attribute does not exist, or
                the attribute is not callable.
        """
        module_name, sep, attr = self.fn.partition(":")
        if not sep:
            module_name, _, attr = self.fn.rpartition(".")
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise ExecError(f"cannot import job module {module_name!r}: {exc}") from exc
        target: Any = module
        for part in attr.split("."):
            target = getattr(target, part, None)
            if target is None:
                raise ExecError(f"{module_name!r} has no attribute {attr!r}")
        if not callable(target):
            raise ExecError(f"{self.fn!r} is not callable")
        return target

    def run(self) -> Any:
        """Execute the job in-process and return its raw result.

        The callable receives the canonical kwargs (plus any ``extra``
        side-channel arguments); jobs with seed provenance additionally
        receive ``seed=<SeedSequence>`` derived from ``(seed_entropy,
        spawn_key)`` -- the spec owns the stream, the payload stays
        seed-free.
        """
        fn = self.resolve()
        seed = self.seed_sequence()
        if seed is None:
            return fn(**self.kwargs, **self.extra)
        return fn(**self.kwargs, **self.extra, seed=seed)
