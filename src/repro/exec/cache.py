"""Persistent result cache keyed by job content hash.

One JSON file per cached result, sharded by the first two hex digits of
the :meth:`~repro.exec.jobspec.JobSpec.content_hash`::

    <cache-dir>/
        ab/
            ab3f...9c.json      {"schema": ..., "job": ..., "result": ...}
        f0/
            f04d...11.json

Files carry a versioned schema string; entries written by an older (or
newer) cache layout are treated as misses, never as errors. Cache files
are written atomically (temp file + ``os.replace``) so a crashed run
cannot leave a torn entry behind, and their content is deterministic:
the same job always produces byte-identical cache files.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, NamedTuple, Optional, Tuple

from repro.errors import ExecError
from repro.exec.jobspec import JobSpec, canonical_json, json_roundtrip

#: Cache-entry schema; bump when the on-disk layout changes so old
#: entries read as misses instead of mis-parsing.
CACHE_SCHEMA = "repro.exec.result/v1"

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Fallback cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> str:
    """The cache directory the CLIs use: ``$REPRO_CACHE_DIR`` or
    ``.repro-cache`` under the current working directory."""
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR


class CacheStats(NamedTuple):
    """Point-in-time size of a cache directory.

    ``by_version`` breaks the entries down by the job ``version`` token
    they were stored under (the schema of the computation: mission
    records, experiment jobs, ...), as ``(version, entries, bytes)``
    rows sorted by version; unreadable files land under
    ``"<unreadable>"``.
    """

    entries: int  #: number of valid-looking entry files
    total_bytes: int  #: bytes on disk across those entries
    by_version: Tuple[Tuple[str, int, int], ...] = ()  #: per-version breakdown


@dataclass
class ResultCache:
    """JSON-on-disk store of job results, keyed by content hash.

    The cache is safe to share between experiments and campaigns: keys
    cover the full job identity (callable, kwargs, seed provenance,
    code version), so a hit is a proof that the exact same computation
    already ran. Session counters (:attr:`hits`/:attr:`misses`/
    :attr:`stores`) track how this instance was used; they reset with
    the instance, not the directory.

    Example:
        >>> import tempfile
        >>> from repro.exec import JobSpec, ResultCache
        >>> job = JobSpec(fn="repro.exec.demo:scaled_sum",
        ...               kwargs={"values": [1.0, 2.0], "factor": 3.0})
        >>> with tempfile.TemporaryDirectory() as tmp:
        ...     cache = ResultCache(tmp)
        ...     _ = cache.get(job)          # miss
        ...     _ = cache.put(job, job.run())
        ...     cache.get(job)              # hit
        (9.0, True)
    """

    directory: str
    hits: int = 0
    misses: int = 0
    stores: int = 0

    def __post_init__(self) -> None:
        if not self.directory:
            raise ExecError("cache needs a directory")

    # -- paths ------------------------------------------------------------

    def entry_path(self, content_hash: str) -> str:
        """Where the entry for ``content_hash`` lives (existing or not)."""
        if len(content_hash) < 3:
            raise ExecError(f"implausible content hash {content_hash!r}")
        return os.path.join(self.directory, content_hash[:2], f"{content_hash}.json")

    # -- lookup -----------------------------------------------------------

    def get(self, job: JobSpec) -> Tuple[Any, bool]:
        """Look up ``job``'s result.

        Returns:
            ``(result, True)`` on a hit, ``(None, False)`` on a miss.
            Corrupt files, schema mismatches and entries whose stored
            job identity disagrees with the hash all read as misses.
        """
        value, hit = self._load(job)
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return value, hit

    def _load(self, job: JobSpec) -> Tuple[Any, bool]:
        path = self.entry_path(job.content_hash())
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return None, False
        if not isinstance(data, dict) or data.get("schema") != CACHE_SCHEMA:
            return None, False
        if data.get("job") != job.to_dict():
            # Either a (vanishingly unlikely) hash collision or a
            # hand-edited file; refuse to serve someone else's result.
            return None, False
        return data.get("result"), True

    def put(self, job: JobSpec, result: Any) -> str:
        """Store ``result`` for ``job``; returns the entry path.

        The result is normalized through a JSON round trip first, so
        what later runs load from disk is byte-identical to what this
        run returned.
        """
        entry = {
            "schema": CACHE_SCHEMA,
            "job": job.to_dict(),
            "result": json_roundtrip(result),
        }
        path = self.entry_path(job.content_hash())
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(canonical_json(entry))
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):  # pragma: no cover - cleanup path
                os.unlink(tmp)
            raise
        self.stores += 1
        return path

    # -- maintenance ------------------------------------------------------

    def _entry_files(self):
        if not os.path.isdir(self.directory):
            return
        for shard in sorted(os.listdir(self.directory)):
            shard_dir = os.path.join(self.directory, shard)
            if len(shard) != 2 or not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json") and not name.startswith("."):
                    yield os.path.join(shard_dir, name)

    def stats(self) -> CacheStats:
        """Entry count, bytes on disk and a per-job-version breakdown.

        Walks the directory and reads every entry to attribute it to
        the job ``version`` token it was stored under -- a point-in-time
        inventory, not a hot-path call.
        """
        entries = 0
        total = 0
        versions: dict = {}
        for path in self._entry_files():
            try:
                size = os.path.getsize(path)
            except OSError:  # pragma: no cover - racing deletion
                continue
            entries += 1
            total += size
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    data = json.load(fh)
                version = data["job"].get("version") or "<none>"
            except (OSError, ValueError, KeyError, AttributeError, TypeError):
                version = "<unreadable>"
            count, nbytes = versions.get(version, (0, 0))
            versions[version] = (count + 1, nbytes + size)
        return CacheStats(
            entries=entries,
            total_bytes=total,
            by_version=tuple(
                (version, count, nbytes)
                for version, (count, nbytes) in sorted(versions.items())
            ),
        )

    def load_entry(self, content_hash: str) -> Optional[dict]:
        """The raw cache entry for ``content_hash``, or ``None``.

        Unlike :meth:`get` this starts from a bare hash -- no
        :class:`~repro.exec.jobspec.JobSpec` needed -- and returns the
        whole ``{"schema", "job", "result"}`` document, which is how
        replay tooling reconstructs a job (and its mission spec) from
        an artifact on disk. Does not touch the hit/miss counters.
        """
        try:
            with open(self.entry_path(content_hash), "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict) or data.get("schema") != CACHE_SCHEMA:
            return None
        return data

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._entry_files():
            try:
                os.unlink(path)
                removed += 1
            except OSError:  # pragma: no cover - racing deletion
                continue
        return removed


def open_cache(
    directory: Optional[str] = None, enabled: bool = True
) -> Optional[ResultCache]:
    """CLI helper: the cache to use, or ``None`` when disabled.

    Args:
        directory: explicit cache directory; ``None`` falls back to
            :func:`default_cache_dir`.
        enabled: ``False`` (a ``--no-cache`` flag) returns ``None``.
    """
    if not enabled:
        return None
    return ResultCache(directory or default_cache_dir())
