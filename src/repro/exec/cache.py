"""Persistent result cache keyed by job content hash.

One JSON file per cached result, sharded by the first two hex digits of
the :meth:`~repro.exec.jobspec.JobSpec.content_hash`::

    <cache-dir>/
        ab/
            ab3f...9c.json      {"schema": ..., "job": ..., "result": ...}
        f0/
            f04d...11.json

Files carry a versioned schema string; entries written by an older (or
newer) cache layout are treated as misses, never as errors. Cache files
are written atomically (temp file + ``os.replace``) so a crashed run
cannot leave a torn entry behind, and their content is deterministic:
the same job always produces byte-identical cache files.

The cache also maintains itself. An entry that fails to parse is
*quarantined* -- renamed to ``<name>.json.quarantined`` so it stops
being re-read forever, stays available for a post-mortem, and shows up
in :meth:`ResultCache.stats` instead of masquerading as an eternal
miss. ``.tmp-*`` files abandoned by crashed writers are counted by
``stats()``, removed by ``clear()``, and swept by
:meth:`ResultCache.sweep_orphans`. :meth:`ResultCache.evict` bounds the
directory with an LRU policy (by mtime; a cache hit refreshes an
entry's mtime), deleting paired flight traces along with their entries.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Iterator, NamedTuple, Optional, Tuple

from repro import schemas
from repro.errors import ExecError
from repro.exec import faults
from repro.exec.jobspec import JobSpec, canonical_json, json_roundtrip

#: Cache-entry schema; bump when the on-disk layout changes so old
#: entries read as misses instead of mis-parsing.
CACHE_SCHEMA = schemas.CACHE_SCHEMA

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Fallback cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Suffix of flight-trace artifacts stored beside cache entries by
#: :class:`repro.obs.store.TraceStore` (defined here so eviction can
#: pair traces with entries without importing the obs layer). Must not
#: end in a bare ``.json`` or the entry scan would pick traces up as
#: corrupt entries.
TRACE_SUFFIX = ".trace.json.gz"

#: Suffix appended to a corrupt entry when it is quarantined.
QUARANTINE_SUFFIX = ".quarantined"

#: Default age below which ``.tmp-*`` files are presumed to belong to a
#: live writer and left alone by :meth:`ResultCache.sweep_orphans`.
ORPHAN_MIN_AGE_S = 3600.0


def parse_size(text: str) -> int:
    """Parse a byte budget: plain bytes or a ``k``/``M``/``G`` suffix.

    >>> parse_size("500M")
    500000000

    Raises:
        ExecError: for unparseable input.
    """
    units = {"k": 1_000, "M": 1_000_000, "G": 1_000_000_000}
    raw = text.strip()
    scale = units.get(raw[-1:])
    if scale is not None:
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        raise ExecError(
            f"{text!r} is not a size (use bytes or a k/M/G suffix, e.g. 500M)"
        ) from None
    if value < 0:
        raise ExecError(f"size must be non-negative, got {text!r}")
    return int(value * (scale or 1))


def parse_age(text: str) -> float:
    """Parse an age: plain seconds or an ``s``/``m``/``h``/``d`` suffix.

    >>> parse_age("30d")
    2592000.0

    Raises:
        ExecError: for unparseable input.
    """
    units = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
    raw = text.strip()
    scale = units.get(raw[-1:])
    if scale is not None:
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        raise ExecError(
            f"{text!r} is not an age (use seconds or an s/m/h/d suffix, e.g. 30d)"
        ) from None
    if value < 0:
        raise ExecError(f"age must be non-negative, got {text!r}")
    return value * (scale or 1.0)


def default_cache_dir() -> str:
    """The cache directory the CLIs use: ``$REPRO_CACHE_DIR`` or
    ``.repro-cache`` under the current working directory."""
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR


class CacheStats(NamedTuple):
    """Point-in-time size of a cache directory.

    ``by_version`` breaks the entries down by the job ``version`` token
    they were stored under (the schema of the computation: mission
    records, experiment jobs, ...), as ``(version, entries, bytes)``
    rows sorted by version; unreadable files land under
    ``"<unreadable>"``.
    """

    entries: int  #: number of valid-looking entry files
    total_bytes: int  #: bytes on disk across those entries
    by_version: Tuple[Tuple[str, int, int], ...] = ()  #: per-version breakdown
    orphans: int = 0  #: abandoned ``.tmp-*`` files from crashed writers
    quarantined: int = 0  #: corrupt entries set aside by quarantine


class EvictionReport(NamedTuple):
    """What one :meth:`ResultCache.evict` call removed."""

    removed_entries: int  #: live entries evicted (LRU order)
    removed_traces: int  #: paired trace artifacts evicted with them
    removed_junk: int  #: quarantined entries and orphaned temp files
    freed_bytes: int  #: bytes reclaimed across all of the above
    remaining_bytes: int  #: entry+trace bytes still on disk afterwards


@dataclass
class ResultCache:
    """JSON-on-disk store of job results, keyed by content hash.

    The cache is safe to share between experiments and campaigns: keys
    cover the full job identity (callable, kwargs, seed provenance,
    code version), so a hit is a proof that the exact same computation
    already ran. Session counters (:attr:`hits`/:attr:`misses`/
    :attr:`stores`/:attr:`quarantines`) track how this instance was
    used; they reset with the instance, not the directory.

    Example:
        >>> import tempfile
        >>> from repro.exec import JobSpec, ResultCache
        >>> job = JobSpec(fn="repro.exec.demo:scaled_sum",
        ...               kwargs={"values": [1.0, 2.0], "factor": 3.0})
        >>> with tempfile.TemporaryDirectory() as tmp:
        ...     cache = ResultCache(tmp)
        ...     _ = cache.get(job)          # miss
        ...     _ = cache.put(job, job.run())
        ...     cache.get(job)              # hit
        (9.0, True)
    """

    directory: str
    hits: int = 0
    misses: int = 0
    stores: int = 0
    quarantines: int = 0

    def __post_init__(self) -> None:
        if not self.directory:
            raise ExecError("cache needs a directory")

    # -- paths ------------------------------------------------------------

    def entry_path(self, content_hash: str) -> str:
        """Where the entry for ``content_hash`` lives (existing or not)."""
        if len(content_hash) < 3:
            raise ExecError(f"implausible content hash {content_hash!r}")
        return os.path.join(self.directory, content_hash[:2], f"{content_hash}.json")

    @staticmethod
    def trace_path_for(entry_path: str) -> str:
        """The paired flight-trace path for an entry path."""
        return entry_path[: -len(".json")] + TRACE_SUFFIX

    # -- lookup -----------------------------------------------------------

    def get(self, job: JobSpec) -> Tuple[Any, bool]:
        """Look up ``job``'s result.

        Returns:
            ``(result, True)`` on a hit, ``(None, False)`` on a miss.
            Schema mismatches and entries whose stored job identity
            disagrees with the hash read as misses; files that do not
            parse at all are quarantined (renamed, counted in
            :attr:`quarantines`) and read as misses. A hit refreshes
            the entry's mtime, which is the LRU clock :meth:`evict`
            orders by.
        """
        value, hit = self._load(job)
        if hit:
            self.hits += 1
            try:
                os.utime(self.entry_path(job.content_hash()))
            except OSError:  # pragma: no cover - read-only cache dir
                pass
        else:
            self.misses += 1
        return value, hit

    def _load(self, job: JobSpec) -> Tuple[Any, bool]:
        path = self.entry_path(job.content_hash())
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except OSError:
            return None, False
        except ValueError:
            self._quarantine(path)
            return None, False
        if not isinstance(data, dict):
            self._quarantine(path)
            return None, False
        if data.get("schema") != CACHE_SCHEMA:
            # A different (older/newer) layout, not corruption: leave
            # it for whichever code version understands it.
            return None, False
        if data.get("job") != job.to_dict():
            # Either a (vanishingly unlikely) hash collision or a
            # hand-edited file; refuse to serve someone else's result.
            return None, False
        return data.get("result"), True

    def _quarantine(self, path: str) -> None:
        """Set a corrupt entry aside so it stops reading as a miss forever."""
        try:
            os.replace(path, path + QUARANTINE_SUFFIX)
        except OSError:  # pragma: no cover - racing deletion
            return
        self.quarantines += 1

    def put(self, job: JobSpec, result: Any) -> str:
        """Store ``result`` for ``job``; returns the entry path.

        The result is normalized through a JSON round trip first, so
        what later runs load from disk is byte-identical to what this
        run returned. Concurrent writers of the same job are safe: each
        writes its own temp file and the final ``os.replace`` is atomic
        (and, for a deterministic job, every writer replaces with
        identical bytes).
        """
        entry = {
            "schema": CACHE_SCHEMA,
            "job": job.to_dict(),
            "result": json_roundtrip(result),
        }
        blob = faults.mangle_cache_write(job.content_hash(), canonical_json(entry))
        path = self.entry_path(job.content_hash())
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):  # pragma: no cover - cleanup path
                os.unlink(tmp)
            raise
        self.stores += 1
        return path

    # -- maintenance ------------------------------------------------------

    def _shard_dirs(self) -> Iterator[str]:
        if not os.path.isdir(self.directory):
            return
        for shard in sorted(os.listdir(self.directory)):
            shard_dir = os.path.join(self.directory, shard)
            if len(shard) == 2 and os.path.isdir(shard_dir):
                yield shard_dir

    def _entry_files(self) -> Iterator[str]:
        for shard_dir in self._shard_dirs():
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json") and not name.startswith("."):
                    yield os.path.join(shard_dir, name)

    def _stray_files(self) -> Iterator[Tuple[str, str]]:
        """Yield ``(kind, path)`` for junk files: abandoned ``.tmp-*``
        writer droppings (``"orphan"``) and quarantined corrupt entries
        (``"quarantined"``)."""
        for shard_dir in self._shard_dirs():
            for name in sorted(os.listdir(shard_dir)):
                if name.startswith(".tmp-") and not name.endswith(".gz"):
                    # .gz temp files belong to the trace store, which
                    # counts and sweeps its own droppings.
                    yield "orphan", os.path.join(shard_dir, name)
                elif name.endswith(QUARANTINE_SUFFIX):
                    yield "quarantined", os.path.join(shard_dir, name)

    def stats(self) -> CacheStats:
        """Entry count, bytes on disk and a per-job-version breakdown.

        Walks the directory and reads every entry to attribute it to
        the job ``version`` token it was stored under -- a point-in-time
        inventory, not a hot-path call. Also counts the junk a healthy
        cache should not have: ``orphans`` (abandoned ``.tmp-*`` files)
        and ``quarantined`` (corrupt entries set aside by reads).
        """
        entries = 0
        total = 0
        versions: dict = {}
        for path in self._entry_files():
            try:
                size = os.path.getsize(path)
            except OSError:  # pragma: no cover - racing deletion
                continue
            entries += 1
            total += size
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    data = json.load(fh)
                version = data["job"].get("version") or "<none>"
            except (OSError, ValueError, KeyError, AttributeError, TypeError):
                version = "<unreadable>"
            count, nbytes = versions.get(version, (0, 0))
            versions[version] = (count + 1, nbytes + size)
        orphans = 0
        quarantined = 0
        for kind, _path in self._stray_files():
            if kind == "orphan":
                orphans += 1
            else:
                quarantined += 1
        return CacheStats(
            entries=entries,
            total_bytes=total,
            by_version=tuple(
                (version, count, nbytes)
                for version, (count, nbytes) in sorted(versions.items())
            ),
            orphans=orphans,
            quarantined=quarantined,
        )

    def load_entry(self, content_hash: str) -> Optional[dict]:
        """The raw cache entry for ``content_hash``, or ``None``.

        Unlike :meth:`get` this starts from a bare hash -- no
        :class:`~repro.exec.jobspec.JobSpec` needed -- and returns the
        whole ``{"schema", "job", "result"}`` document, which is how
        replay tooling reconstructs a job (and its mission spec) from
        an artifact on disk. Does not touch the hit/miss counters.
        """
        path = self.entry_path(content_hash)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except OSError:
            return None
        except ValueError:
            self._quarantine(path)
            return None
        if not isinstance(data, dict):
            self._quarantine(path)
            return None
        if data.get("schema") != CACHE_SCHEMA:
            return None
        return data

    def clear(self) -> int:
        """Delete every entry, orphan and quarantined file; returns how
        many files were removed. Trace artifacts are untouched (see
        :meth:`repro.obs.store.TraceStore.clear`)."""
        removed = 0
        targets = list(self._entry_files())
        targets.extend(path for _kind, path in self._stray_files())
        for path in targets:
            try:
                os.unlink(path)
                removed += 1
            except OSError:  # pragma: no cover - racing deletion
                continue
        return removed

    def sweep_orphans(
        self, min_age_s: float = ORPHAN_MIN_AGE_S, now: Optional[float] = None
    ) -> Tuple[int, int]:
        """Remove ``.tmp-*`` files older than ``min_age_s`` seconds.

        Temp files younger than the threshold may belong to a writer
        that is still alive, so they are left alone (a finishing writer
        renames its temp file away; deleting it under the writer would
        turn an atomic store into an error).

        Returns:
            ``(removed, freed_bytes)``.
        """
        if now is None:
            now = time.time()
        removed = 0
        freed = 0
        for kind, path in self._stray_files():
            if kind != "orphan":
                continue
            try:
                info = os.stat(path)
                if now - info.st_mtime < min_age_s:
                    continue
                os.unlink(path)
            except OSError:  # pragma: no cover - racing deletion
                continue
            removed += 1
            freed += info.st_size
        return removed, freed

    def evict(
        self,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> EvictionReport:
        """Bound the cache: LRU eviction by entry mtime.

        Junk goes first -- every quarantined entry and every orphaned
        temp file (regardless of age; eviction is an explicit
        maintenance request, not a background sweep). Then live entries
        are considered oldest-mtime-first (:meth:`get` refreshes mtime
        on a hit, making this least-recently-*used*): an entry is
        evicted while it is older than ``max_age_s`` or while the
        combined entry+trace footprint still exceeds ``max_bytes``.
        An evicted entry takes its paired flight trace with it -- a
        trace without its result entry is unreachable weight.

        Args:
            max_bytes: byte budget for entries plus paired traces;
                ``None`` means unbounded.
            max_age_s: entries last used more than this many seconds
                ago are evicted regardless of the byte budget; ``None``
                disables.
            now: clock override for tests.

        Returns:
            An :class:`EvictionReport`.

        Raises:
            ExecError: when neither bound is given -- an unbounded
                "eviction" would only sweep junk while looking like a
                full maintenance pass.
        """
        if max_bytes is None and max_age_s is None:
            raise ExecError("evict needs at least one bound: max_bytes or max_age_s")
        if now is None:
            now = time.time()
        removed_entries = 0
        removed_traces = 0
        removed_junk = 0
        freed = 0

        for _kind, path in self._stray_files():
            try:
                size = os.path.getsize(path)
                os.unlink(path)
            except OSError:  # pragma: no cover - racing deletion
                continue
            removed_junk += 1
            freed += size

        # Inventory the live entries: (mtime, entry path, entry+trace bytes).
        inventory = []
        total = 0
        for path in self._entry_files():
            try:
                info = os.stat(path)
            except OSError:  # pragma: no cover - racing deletion
                continue
            cost = info.st_size
            trace = self.trace_path_for(path)
            try:
                cost += os.path.getsize(trace)
            except OSError:
                pass
            inventory.append((info.st_mtime, path, cost))
            total += cost
        inventory.sort()

        for mtime, path, cost in inventory:
            too_old = max_age_s is not None and now - mtime > max_age_s
            too_big = max_bytes is not None and total > max_bytes
            if not too_old and not too_big:
                break
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - racing deletion
                continue
            removed_entries += 1
            trace = self.trace_path_for(path)
            try:
                os.unlink(trace)
                removed_traces += 1
            except OSError:
                pass
            total -= cost
            freed += cost
        return EvictionReport(
            removed_entries=removed_entries,
            removed_traces=removed_traces,
            removed_junk=removed_junk,
            freed_bytes=freed,
            remaining_bytes=total,
        )


def open_cache(
    directory: Optional[str] = None, enabled: bool = True
) -> Optional[ResultCache]:
    """CLI helper: the cache to use, or ``None`` when disabled.

    Args:
        directory: explicit cache directory; ``None`` falls back to
            :func:`default_cache_dir`.
        enabled: ``False`` (a ``--no-cache`` flag) returns ``None``.
    """
    if not enabled:
        return None
    return ResultCache(directory or default_cache_dir())
