"""Deterministic fault injection for the execution layer.

Chaos testing without flaky sleeps or real randomness: a
:class:`FaultPlan` is a list of :class:`FaultSpec` rules keyed by job
content-hash prefix and attempt number. When a plan is active, the
executor consults it at the top of every job attempt (``raise`` /
``delay`` / ``crash`` faults) and the result cache consults it on every
entry write (``cache-corrupt`` / ``cache-torn`` faults). The same plan
against the same jobs always injects the same faults -- which is what
lets tests and CI *assert* that the recovery paths (retries, worker
respawn, cache quarantine) produce byte-identical results.

Plans activate two ways:

- in-process, via :func:`activate`/:func:`deactivate` or the
  :func:`injected` context manager (forked pool workers inherit the
  active plan);
- via the ``$REPRO_FAULT_PLAN`` environment variable, holding either
  the plan's JSON or a path to a JSON file -- how CLI chaos runs and CI
  inject faults into unmodified commands.

Example:
    >>> from repro.exec import Executor, JobSpec, RetryPolicy
    >>> from repro.exec.faults import FaultPlan, FaultSpec, injected
    >>> job = JobSpec(fn="repro.exec.demo:scaled_sum",
    ...               kwargs={"values": [1.0, 2.0], "factor": 3.0})
    >>> plan = FaultPlan((FaultSpec(kind="raise", attempt=0),))
    >>> with injected(plan):  # attempt 0 fails, the retry succeeds
    ...     Executor(retry=RetryPolicy(max_attempts=2)).run([job])
    [9.0]
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

from repro.errors import ExecError, TransientJobError, WorkerCrash

#: Environment variable activating a plan process-wide: either the
#: plan's JSON document or a path to a file containing it.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Fault kinds applied at the top of a job attempt.
JOB_FAULT_KINDS = ("raise", "delay", "crash")

#: Fault kinds applied to result-cache entry writes.
CACHE_FAULT_KINDS = ("cache-corrupt", "cache-torn")

FAULT_KINDS = JOB_FAULT_KINDS + CACHE_FAULT_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault rule.

    Attributes:
        kind: what to inject --
            ``"raise"`` raises :class:`~repro.errors.TransientJobError`
            (or a permanent :class:`~repro.errors.ExecError` when
            ``permanent``), ``"delay"`` sleeps ``delay_s`` before the
            job body runs (inside the timeout window, so it can force a
            timeout), ``"crash"`` hard-kills the worker process with
            ``os._exit(exit_code)`` (in the parent process it raises
            :class:`~repro.errors.WorkerCrash` instead -- chaos must
            not nuke the orchestrator), ``"cache-corrupt"`` replaces a
            cache entry's bytes with garbage at write time and
            ``"cache-torn"`` truncates them mid-document.
        match: content-hash prefix the fault applies to; ``""`` matches
            every job.
        attempt: 0-based attempt number the fault fires on; ``None``
            fires on every attempt (a *permanently* failing job).
            Ignored by cache faults (writes have no attempt).
        message: carried into the injected exception.
        permanent: for ``"raise"``: classify the injected error as
            permanent (never retried) instead of transient.
        delay_s: for ``"delay"``: seconds to sleep.
        exit_code: for ``"crash"``: the worker's exit code.
    """

    kind: str
    match: str = ""
    attempt: Optional[int] = 0
    message: str = "injected fault"
    permanent: bool = False
    delay_s: float = 0.05
    exit_code: int = 137

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ExecError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if self.delay_s < 0:
            raise ExecError(f"delay_s must be >= 0, got {self.delay_s}")

    def matches(self, content_hash: str, attempt: Optional[int] = None) -> bool:
        """Whether this fault fires for ``(content_hash, attempt)``."""
        if not content_hash.startswith(self.match):
            return False
        if self.kind in CACHE_FAULT_KINDS or self.attempt is None:
            return True
        return attempt == self.attempt

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "match": self.match,
            "attempt": self.attempt,
            "message": self.message,
            "permanent": self.permanent,
            "delay_s": self.delay_s,
            "exit_code": self.exit_code,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(**{k: data[k] for k in data})


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault rules, applied first-match-wins per stage.

    Job faults (``raise``/``delay``/``crash``) are checked at the top
    of every attempt; ``delay`` faults sleep and fall through to later
    rules, so one plan can both delay and crash a job. Cache faults are
    checked on every entry write.
    """

    faults: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def job_faults(
        self, content_hash: str, attempt: int
    ) -> Tuple[FaultSpec, ...]:
        """Every job fault firing for this ``(hash, attempt)``, in order."""
        return tuple(
            spec
            for spec in self.faults
            if spec.kind in JOB_FAULT_KINDS and spec.matches(content_hash, attempt)
        )

    def cache_fault(self, content_hash: str) -> Optional[FaultSpec]:
        """The first cache-write fault firing for ``content_hash``."""
        for spec in self.faults:
            if spec.kind in CACHE_FAULT_KINDS and spec.matches(content_hash):
                return spec
        return None

    def to_dict(self) -> dict:
        return {"faults": [spec.to_dict() for spec in self.faults]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(tuple(FaultSpec.from_dict(f) for f in data.get("faults", ())))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ExecError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ExecError("fault plan JSON must be an object {'faults': [...]}")
        return cls.from_dict(data)


# -- activation -----------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None

#: Memoized parse of the env-var plan: ``(raw env value, plan)``.
_ENV_CACHE: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def activate(plan: FaultPlan) -> None:
    """Make ``plan`` the process-wide active plan (overrides the env)."""
    global _ACTIVE
    _ACTIVE = plan


def deactivate() -> None:
    """Clear the in-process plan (an env-var plan becomes visible again)."""
    global _ACTIVE
    _ACTIVE = None


@contextlib.contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Context manager scoping :func:`activate` to a ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    activate(plan)
    try:
        yield plan
    finally:
        _ACTIVE = previous


def active_plan() -> Optional[FaultPlan]:
    """The plan in force: in-process activation first, then the env var.

    The env value may be the plan's JSON (starts with ``{``) or a path
    to a JSON file; parsing is memoized on the raw value.
    """
    if _ACTIVE is not None:
        return _ACTIVE
    raw = os.environ.get(FAULT_PLAN_ENV)
    if not raw:
        return None
    global _ENV_CACHE
    if _ENV_CACHE[0] == raw:
        return _ENV_CACHE[1]
    text = raw
    if not raw.lstrip().startswith("{"):
        try:
            with open(raw, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            raise ExecError(
                f"${FAULT_PLAN_ENV}={raw!r} is neither JSON nor a readable file: {exc}"
            ) from exc
    plan = FaultPlan.from_json(text)
    _ENV_CACHE = (raw, plan)
    return plan


# -- application points ---------------------------------------------------


def fire_job_faults(content_hash: str, attempt: int) -> None:
    """Apply the active plan's job faults for this attempt (executor hook).

    Called at the top of every job attempt, before the callable runs.
    No active plan, or no matching fault, is a no-op on the hot path.
    """
    plan = active_plan()
    if plan is None:
        return
    for spec in plan.job_faults(content_hash, attempt):
        note = f"{spec.message} [injected: {spec.kind}, attempt {attempt}]"
        if spec.kind == "delay":
            time.sleep(spec.delay_s)
        elif spec.kind == "raise":
            if spec.permanent:
                raise ExecError(note)
            raise TransientJobError(note)
        elif spec.kind == "crash":
            if multiprocessing.parent_process() is not None:
                # A real abrupt death: no cleanup, no exception, the
                # supervisor must notice the corpse.
                os._exit(spec.exit_code)
            raise WorkerCrash(note)


def mangle_cache_write(content_hash: str, blob: str) -> str:
    """Apply the active plan's cache-write fault to ``blob`` (cache hook).

    Returns the bytes the cache should actually write: unchanged when
    no fault matches, garbage for ``cache-corrupt``, a truncated prefix
    for ``cache-torn`` -- both unparseable, so the next read quarantines
    the entry instead of serving it.
    """
    plan = active_plan()
    if plan is None:
        return blob
    spec = plan.cache_fault(content_hash)
    if spec is None:
        return blob
    if spec.kind == "cache-corrupt":
        return "\x00corrupt " + blob[: len(blob) // 4]
    return blob[: max(1, len(blob) // 3)]  # cache-torn
