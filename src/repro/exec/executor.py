"""The one execution engine behind campaigns and experiments.

Runs a list of :class:`~repro.exec.jobspec.JobSpec` through a serial
loop or a supervised worker pool, with an optional persistent
:class:`~repro.exec.cache.ResultCache` consulted first. All three paths
-- serial, pooled, cache hit -- return byte-identical results: jobs are
self-contained and deterministic, and every result is normalized
through the same JSON round trip before it reaches the caller (see
:func:`~repro.exec.jobspec.json_roundtrip`).

The engine is fault-tolerant. A :class:`RetryPolicy` gives every job a
bounded number of attempts with deterministic backoff and an optional
per-attempt wall-clock timeout (enforced by a watchdog thread on the
serial path and by killing the worker on the pooled path). Transient
failures -- :class:`~repro.errors.TransientJobError`, timeouts, abrupt
worker deaths, ``OSError`` -- are retried; permanent ones are not.
A job that exhausts its attempts becomes a structured
:class:`JobFailure` envelope: with ``keep_going`` the failure takes the
job's slot in the result list and its siblings keep running, without it
the first permanent failure aborts the batch with the job's label and
hash in the error. Injected faults (:mod:`repro.exec.faults`) ride the
same paths, which is how chaos tests prove the recovery machinery.

Within one ``run()`` call, jobs sharing a content hash execute once;
the result fans out to every duplicate. Progress callbacks fire in the
parent process as jobs complete: cache hits first (in job order), then
executions in completion order.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro import schemas
from repro.errors import ExecError, JobTimeout, TransientJobError, WorkerCrash
from repro.exec import faults
from repro.exec.cache import ResultCache
from repro.exec.jobspec import JobSpec, json_roundtrip

#: Progress callback signature: ``(done, total, job, result, cached)``.
#: ``cached`` is ``True`` when the result was not freshly executed for
#: this job -- a cache-file hit or an in-run duplicate of another job.
#: With ``keep_going``, ``result`` is a :class:`JobFailure` for jobs
#: that exhausted their attempts.
ProgressCallback = Callable[[int, int, JobSpec, Any, bool], None]

#: Schema token of the :class:`JobFailure` plain-data envelope
#: (registered in :mod:`repro.schemas`, re-exported here).
FAILURE_SCHEMA = schemas.FAILURE_SCHEMA

#: Exception types the retry policy treats as transient (retryable).
#: Everything else is permanent. ``TimeoutError`` is an ``OSError``
#: subclass, so stdlib timeouts are covered too.
TRANSIENT_ERROR_TYPES = (
    TransientJobError,
    JobTimeout,
    WorkerCrash,
    ConnectionError,
    OSError,
)

#: Supervisor poll period: how often worker liveness and per-job
#: deadlines are checked while no result is arriving.
_TICK_S = 0.02


def is_transient(exc: BaseException) -> bool:
    """Whether ``exc`` is worth retrying under a :class:`RetryPolicy`."""
    return isinstance(exc, TRANSIENT_ERROR_TYPES)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker count: ``None`` -> serial, ``0`` -> all cores.

    Raises:
        ExecError: for a negative count.
    """
    if workers is None:
        return 1
    if workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ExecError(f"workers must be >= 0, got {workers}")
    return workers


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts a job gets, and how long each may take.

    Attributes:
        max_attempts: total attempts per job (1 = no retries). Only
            *transient* failures (see :data:`TRANSIENT_ERROR_TYPES`)
            consume retries; a permanent error fails the job on the
            spot regardless of remaining attempts.
        backoff_s: deterministic exponential backoff -- the wait before
            attempt ``k+1`` is ``backoff_s * 2**(k-1)`` seconds, no
            jitter (retries must be as reproducible as the jobs).
        timeout_s: per-attempt wall-clock budget. ``None`` disables.
            On the pooled path an overrunning worker is killed and
            replaced; on the serial path a watchdog thread abandons the
            attempt (the stuck call may linger in the background until
            the process exits, but the batch moves on). Timeouts are
            transient: the attempt counts and the job may retry.

    Example:
        >>> RetryPolicy(max_attempts=3, backoff_s=0.5).backoff_for(2)
        1.0
    """

    max_attempts: int = 1
    backoff_s: float = 0.0
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExecError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_s < 0:
            raise ExecError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ExecError(f"timeout_s must be > 0, got {self.timeout_s}")

    def backoff_for(self, completed_attempts: int) -> float:
        """Seconds to wait before the next attempt (deterministic)."""
        if self.backoff_s == 0.0 or completed_attempts < 1:
            return 0.0
        return self.backoff_s * (2.0 ** (completed_attempts - 1))


@dataclass(frozen=True)
class JobFailure:
    """Structured envelope of one job's final failure.

    What a failed job hands back instead of a result when the executor
    runs with ``keep_going``: everything an operator (or a campaign
    result file) needs to triage without digging through logs.
    Serializes to plain data carrying :data:`FAILURE_SCHEMA`.
    """

    job_hash: str
    label: str
    fn: str
    error_type: str
    message: str
    attempts: int
    transient: bool
    timed_out: bool = False
    worker_crash: bool = False

    def summary(self) -> str:
        """One-line human description of the failure."""
        name = self.label or self.job_hash[:12]
        return (
            f"{name} failed after {self.attempts} attempt(s): "
            f"{self.error_type}: {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "schema": FAILURE_SCHEMA,
            "job_hash": self.job_hash,
            "label": self.label,
            "fn": self.fn,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "transient": self.transient,
            "timed_out": self.timed_out,
            "worker_crash": self.worker_crash,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobFailure":
        return cls(**{k: v for k, v in data.items() if k != "schema"})

    @staticmethod
    def is_failure_payload(payload: Any) -> bool:
        """Whether a plain-data payload is a serialized failure envelope."""
        return isinstance(payload, dict) and payload.get("schema") == FAILURE_SCHEMA


@dataclass(frozen=True)
class ExecutionReport:
    """What one :meth:`Executor.run` call actually did.

    Attributes:
        total: number of jobs submitted.
        executed: jobs whose callable actually ran (unique executions).
        cached: jobs served without running -- persistent-cache hits
            plus in-run duplicates of an executed job.
        elapsed_s: wall-clock seconds of the whole run.
        failed: jobs that exhausted their attempts (only nonzero with
            ``keep_going``; without it the first failure raises).
        retried: extra attempts beyond the first, summed over jobs --
            a successful job that needed one retry contributes 1.
        timed_out: attempts cut short by the per-job timeout (counts
            attempts, not jobs: a job that timed out twice and then
            succeeded contributes 2).
        job_min_s: wall clock of the fastest executed job (0 when
            nothing executed).
        job_mean_s: mean wall clock over the executed jobs.
        job_max_s: wall clock of the slowest executed job.
        slowest_label: label (or content-hash prefix) of the slowest
            executed job -- the first place to look when a campaign
            stalls.
    """

    total: int
    executed: int
    cached: int
    elapsed_s: float
    failed: int = 0
    retried: int = 0
    timed_out: int = 0
    job_min_s: float = 0.0
    job_mean_s: float = 0.0
    job_max_s: float = 0.0
    slowest_label: str = ""

    def summary(self) -> str:
        """One-line human description, e.g. ``"12 jobs: 9 cached, 3 executed"``."""
        line = (
            f"{self.total} jobs: {self.cached} cached, {self.executed} executed "
            f"in {self.elapsed_s:.1f} s"
        )
        if self.failed:
            line += f", {self.failed} failed"
        if self.retried:
            line += f", {self.retried} retries"
        if self.timed_out:
            line += f", {self.timed_out} timeouts"
        return line

    def timings_summary(self) -> str:
        """Per-job wall-clock line; empty when nothing executed."""
        if self.executed == 0:
            return ""
        return (
            f"job wall clock: {self.job_min_s:.2f}/{self.job_mean_s:.2f}/"
            f"{self.job_max_s:.2f} s min/mean/max"
            + (f", slowest: {self.slowest_label}" if self.slowest_label else "")
        )


# -- attempt machinery ----------------------------------------------------


def _attempt(job: JobSpec, attempt: int) -> Any:
    """Run one attempt of ``job``, applying any injected faults first."""
    faults.fire_job_faults(job.content_hash(), attempt)
    return job.run()


def _watchdog_attempt(job: JobSpec, attempt: int, timeout_s: float) -> Any:
    """Serial-path attempt with a wall-clock watchdog.

    The job body runs in a daemon thread; overrunning ``timeout_s``
    raises :class:`~repro.errors.JobTimeout` and abandons the thread
    (it cannot be killed, but it no longer blocks the batch).
    """
    box: Dict[str, Any] = {}

    def target() -> None:
        try:
            box["value"] = _attempt(job, attempt)
        except BaseException as exc:  # noqa: BLE001 - relayed to the caller
            box["error"] = exc

    thread = threading.Thread(
        target=target, name=f"job-{job.content_hash()[:12]}", daemon=True
    )
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise JobTimeout(
            f"job {job.label or job.content_hash()[:12]} "
            f"[{job.content_hash()[:12]}] exceeded the {timeout_s:g} s "
            f"per-attempt timeout (serial watchdog)"
        )
    if "error" in box:
        raise box["error"]
    return box["value"]


class _Task:
    """Mutable per-job retry state inside one ``run()`` call."""

    __slots__ = ("index", "job", "attempts", "timeouts")

    def __init__(self, index: int, job: JobSpec) -> None:
        self.index = index
        self.job = job
        self.attempts = 0  # completed (failed) attempts so far
        self.timeouts = 0


@dataclass
class _Outcome:
    """Final result of one unique job: a value or a failure envelope."""

    index: int
    attempts: int
    timeouts: int
    value: Any = None
    job_s: float = 0.0
    failure: Optional[JobFailure] = None


def _failure_from_parts(
    job: JobSpec,
    attempts: int,
    error_type: str,
    message: str,
    transient: bool,
    timed_out: bool = False,
    worker_crash: bool = False,
) -> JobFailure:
    return JobFailure(
        job_hash=job.content_hash(),
        label=job.label,
        fn=job.fn,
        error_type=error_type,
        message=message,
        attempts=attempts,
        transient=transient,
        timed_out=timed_out,
        worker_crash=worker_crash,
    )


# -- pool worker ----------------------------------------------------------


def _pool_worker(worker_id: int, task_q: Any, result_q: Any) -> None:
    """Worker-process main loop: pull ``(index, attempt, job)``, push results.

    Results are pre-pickled in the worker so an unpicklable value
    surfaces as that job's error instead of silently wedging the
    queue's feeder thread.
    """
    while True:
        item = task_q.get()
        if item is None:
            return
        index, attempt, job = item
        start = time.perf_counter()
        try:
            value = _attempt(job, attempt)
            blob = pickle.dumps(value)
        except Exception as exc:  # noqa: BLE001 - relayed to the supervisor
            result_q.put(
                (
                    "err",
                    worker_id,
                    index,
                    type(exc).__name__,
                    str(exc),
                    is_transient(exc),
                    isinstance(exc, JobTimeout),
                    time.perf_counter() - start,
                )
            )
        else:
            result_q.put(("ok", worker_id, index, blob, time.perf_counter() - start))


class _Worker:
    """Parent-side handle of one pool worker process."""

    __slots__ = ("proc", "task_q", "current", "deadline")

    def __init__(self, proc: multiprocessing.process.BaseProcess, task_q: Any) -> None:
        self.proc = proc
        self.task_q = task_q
        self.current: Optional[_Task] = None
        self.deadline: Optional[float] = None

    def kill(self) -> None:
        """Terminate the worker process, escalating to SIGKILL."""
        try:
            self.proc.terminate()
            self.proc.join(0.5)
            if self.proc.is_alive():
                self.proc.kill()
                self.proc.join(0.5)
        except (OSError, ValueError):  # pragma: no cover - already dead
            pass


class Executor:
    """Serial or process-pool job execution with caching and retries.

    Args:
        workers: ``None``/``1`` for the serial path, ``0`` for one
            worker per CPU core, otherwise the pool size. If no pool
            can be created (restricted environments), execution falls
            back to the serial path -- results are identical either way.
        cache: optional persistent result cache consulted before (and
            filled after) every execution; ``None`` disables caching.
        retry: per-job attempt/backoff/timeout policy; ``None`` means
            one attempt, no timeout (the historical behavior).
        keep_going: when ``True``, a job that exhausts its attempts
            yields a :class:`JobFailure` in its result slot and its
            siblings keep running; when ``False`` (default) the first
            exhausted job aborts the batch with an
            :class:`~repro.errors.ExecError` naming the job.

    Example:
        >>> from repro.exec import Executor, JobSpec
        >>> jobs = [
        ...     JobSpec(fn="repro.exec.demo:scaled_sum",
        ...             kwargs={"values": [1.0, float(i)], "factor": 2.0})
        ...     for i in range(3)
        ... ]
        >>> executor = Executor()
        >>> executor.run(jobs)
        [2.0, 4.0, 6.0]
        >>> executor.last_report.summary()
        '3 jobs: 0 cached, 3 executed in 0.0 s'
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        retry: Optional[RetryPolicy] = None,
        keep_going: bool = False,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.cache = cache
        self.retry = retry or RetryPolicy()
        self.keep_going = keep_going
        self.last_report: Optional[ExecutionReport] = None

    def run(
        self,
        jobs: Sequence[JobSpec],
        progress: Optional[ProgressCallback] = None,
        refresh: Optional[Callable[[JobSpec], bool]] = None,
    ) -> List[Any]:
        """Execute ``jobs`` and return their results in job order.

        Args:
            jobs: the specs to run.
            progress: optional callback invoked once per job as results
                become available, with ``(done, total, job, result,
                cached)``; runs in the parent process.
            refresh: optional predicate; jobs for which it returns True
                skip the cache *lookup* and execute even when a stored
                result exists (the fresh result is still stored, byte-
                identically for a deterministic job). Used when a job's
                side artifacts -- e.g. a mission's flight trace -- are
                missing although its scalar result is cached.

        Returns:
            One (JSON-normalized) result per job, in input order. With
            ``keep_going``, slots of failed jobs hold their
            :class:`JobFailure` instead.

        Raises:
            ExecError: when a job exhausts its attempts and
                ``keep_going`` is off; the message carries the job's
                label, hash, attempt count and original error.
        """
        start = time.perf_counter()
        jobs = list(jobs)
        total = len(jobs)
        results: List[Any] = [None] * total
        served = [False] * total
        done = 0
        executed = 0
        failed = 0
        retried = 0
        timed_out = 0
        timings: List[Tuple[float, str]] = []
        outcomes: Optional[Iterator[_Outcome]] = None
        # Everything below runs under one try/finally: the report must
        # describe THIS call even when a job or a user-supplied progress
        # callback raises mid-run -- a stale report from a previous run
        # would silently misattribute cache hits and timings. Cache
        # writes happen before the callback fires, so an aborted run
        # never loses or corrupts finished work.
        try:
            # 1. Serve what the persistent cache already knows.
            if self.cache is not None:
                for i, job in enumerate(jobs):
                    if refresh is not None and refresh(job):
                        continue
                    value, hit = self.cache.get(job)
                    if hit:
                        results[i] = value
                        served[i] = True
                        done += 1
                        if progress is not None:
                            progress(done, total, job, value, True)

            # 2. Group the remainder by content hash: duplicates of one
            #    computation execute once and fan out.
            groups: Dict[str, List[int]] = {}
            for i, job in enumerate(jobs):
                if not served[i]:
                    groups.setdefault(job.content_hash(), []).append(i)
            unique = [(indices[0], jobs[indices[0]]) for indices in groups.values()]

            outcomes = self._execute(unique)
            for outcome in outcomes:
                job = jobs[outcome.index]
                group = groups[job.content_hash()]
                retried += outcome.attempts - 1
                timed_out += outcome.timeouts
                if outcome.failure is not None:
                    if not self.keep_going:
                        raise ExecError(
                            f"job {outcome.failure.summary()} "
                            f"(pass keep_going to isolate failures)"
                        )
                    failed += len(group)
                    value: Any = outcome.failure
                else:
                    value = json_roundtrip(outcome.value)
                    if self.cache is not None:
                        self.cache.put(job, value)
                    executed += 1
                    timings.append(
                        (outcome.job_s, job.label or job.content_hash()[:12])
                    )
                for k, i in enumerate(group):
                    results[i] = value
                    served[i] = True
                    done += 1
                    if progress is not None:
                        progress(done, total, jobs[i], value, k > 0)
        finally:
            if outcomes is not None:
                close = getattr(outcomes, "close", None)
                if close is not None:
                    close()  # tear down pool workers on abort
            slowest = max(timings) if timings else (0.0, "")
            self.last_report = ExecutionReport(
                total=total,
                executed=executed,
                # ``done - executed - failed`` == cache hits plus
                # duplicate fan-outs; on a completed run done == total,
                # so this matches the historical accounting exactly.
                cached=done - executed - failed,
                elapsed_s=time.perf_counter() - start,
                failed=failed,
                retried=retried,
                timed_out=timed_out,
                job_min_s=min(t for t, _ in timings) if timings else 0.0,
                job_mean_s=(
                    sum(t for t, _ in timings) / len(timings) if timings else 0.0
                ),
                job_max_s=slowest[0],
                slowest_label=slowest[1],
            )
        return results

    # -- backends ---------------------------------------------------------

    def _execute(self, items: List[Tuple[int, JobSpec]]) -> Iterator[_Outcome]:
        """Yield one final :class:`_Outcome` per item, in any order."""
        if self.workers > 1 and len(items) > 1:
            pooled = self._execute_pooled(items, min(self.workers, len(items)))
            if pooled is not None:
                return pooled
        return (self._serial_outcome(_Task(index, job)) for index, job in items)

    # -- serial path ------------------------------------------------------

    def _serial_outcome(self, task: _Task) -> _Outcome:
        """Run ``task`` to completion in-process, honoring the policy."""
        policy = self.retry
        while True:
            start = time.perf_counter()
            try:
                if policy.timeout_s is None:
                    value = _attempt(task.job, task.attempts)
                else:
                    value = _watchdog_attempt(
                        task.job, task.attempts, policy.timeout_s
                    )
            except KeyboardInterrupt:
                raise  # user abort is not a job failure
            except Exception as exc:  # noqa: BLE001 - classified below
                task.attempts += 1
                if isinstance(exc, JobTimeout):
                    task.timeouts += 1
                if is_transient(exc) and task.attempts < policy.max_attempts:
                    backoff = policy.backoff_for(task.attempts)
                    if backoff > 0.0:
                        time.sleep(backoff)
                    continue
                return _Outcome(
                    index=task.index,
                    attempts=task.attempts,
                    timeouts=task.timeouts,
                    failure=_failure_from_parts(
                        task.job,
                        task.attempts,
                        type(exc).__name__,
                        str(exc),
                        is_transient(exc),
                        timed_out=isinstance(exc, JobTimeout),
                        worker_crash=isinstance(exc, WorkerCrash),
                    ),
                )
            else:
                return _Outcome(
                    index=task.index,
                    attempts=task.attempts + 1,
                    timeouts=task.timeouts,
                    value=value,
                    job_s=time.perf_counter() - start,
                )

    # -- pooled path ------------------------------------------------------

    def _execute_pooled(
        self, items: List[Tuple[int, JobSpec]], n_workers: int
    ) -> Optional[Iterator[_Outcome]]:
        """Supervised worker pool; ``None`` if no worker can be started.

        Each worker owns a task queue, so the supervisor always knows
        which job a worker holds: an abrupt worker death (``kill -9``,
        ``os._exit``, OOM) is charged to exactly that job instead of
        hanging the batch, and a job overrunning the policy timeout is
        reclaimed by killing its worker. Dead and killed workers are
        replaced while work remains.
        """
        try:
            result_q: Any = multiprocessing.Queue()
        except (OSError, ValueError, ImportError):  # pragma: no cover - env specific
            return None
        workers: Dict[int, _Worker] = {}
        for worker_id in range(n_workers):
            worker = self._start_worker(worker_id, result_q)
            if worker is None:
                break
            workers[worker_id] = worker
        if not workers:
            return None  # restricted environment: fall back to serial
        return self._supervise(items, workers, result_q, next_id=n_workers)

    @staticmethod
    def _start_worker(worker_id: int, result_q: Any) -> Optional[_Worker]:
        """Spawn one worker process, or ``None`` when the env forbids it."""
        try:
            task_q: Any = multiprocessing.Queue()
            proc = multiprocessing.Process(
                target=_pool_worker,
                args=(worker_id, task_q, result_q),
                daemon=True,
                name=f"repro-exec-{worker_id}",
            )
            proc.start()
        except (OSError, ValueError, ImportError, AttributeError):
            return None
        return _Worker(proc, task_q)

    def _supervise(
        self,
        items: List[Tuple[int, JobSpec]],
        workers: Dict[int, _Worker],
        result_q: Any,
        next_id: int,
    ) -> Iterator[_Outcome]:
        """Dispatch/collect loop: retries, deadlines, crash recovery."""
        policy = self.retry
        pending = deque(_Task(index, job) for index, job in items)
        delayed: List[Tuple[float, _Task]] = []  # (due perf_counter, task)
        outstanding = len(pending)
        target_size = len(workers)
        try:
            while outstanding:
                now = time.perf_counter()
                if delayed:
                    due = [entry for entry in delayed if entry[0] <= now]
                    for entry in due:
                        delayed.remove(entry)
                        pending.append(entry[1])
                for worker in workers.values():
                    if worker.current is None and pending:
                        task = pending.popleft()
                        worker.current = task
                        worker.deadline = (
                            now + policy.timeout_s
                            if policy.timeout_s is not None
                            else None
                        )
                        worker.task_q.put((task.index, task.attempts, task.job))
                try:
                    msg = result_q.get(timeout=_TICK_S)
                except queue.Empty:
                    msg = None
                if msg is not None:
                    outcome = self._handle_message(msg, workers, delayed)
                    if outcome is not None:
                        outstanding -= 1
                        yield outcome
                    continue
                # No message this tick: check deadlines and liveness.
                for worker_id in list(workers):
                    worker = workers[worker_id]
                    outcome = self._reap_worker(worker_id, worker, workers, delayed)
                    if outcome is not None:
                        outstanding -= 1
                        yield outcome
                # Replace dead/killed workers while work remains.
                live_needed = min(target_size, outstanding)
                while len(workers) < live_needed:
                    worker = self._start_worker(next_id, result_q)
                    if worker is None:
                        break
                    workers[next_id] = worker
                    next_id += 1
                if not workers and outstanding:
                    # Every worker is gone and none can be started:
                    # drain the remainder in-process so the batch still
                    # completes (results are identical either way).
                    leftovers = [
                        entry[1] for entry in delayed
                    ] + list(pending)
                    delayed.clear()
                    pending.clear()
                    for task in leftovers:
                        outstanding -= 1
                        yield self._serial_outcome(task)
                    return
        finally:
            self._shutdown(workers, result_q)

    def _handle_message(
        self,
        msg: tuple,
        workers: Dict[int, _Worker],
        delayed: List[Tuple[float, _Task]],
    ) -> Optional[_Outcome]:
        """Process one worker message; returns a final outcome, if any."""
        kind, worker_id, index = msg[0], msg[1], msg[2]
        worker = workers.get(worker_id)
        if worker is None or worker.current is None or worker.current.index != index:
            return None  # stale message from a worker killed on timeout
        task = worker.current
        worker.current = None
        worker.deadline = None
        if kind == "ok":
            _, _, _, blob, job_s = msg
            return _Outcome(
                index=task.index,
                attempts=task.attempts + 1,
                timeouts=task.timeouts,
                value=pickle.loads(blob),
                job_s=job_s,
            )
        _, _, _, error_type, message, transient, was_timeout, _job_s = msg
        task.attempts += 1
        if was_timeout:
            task.timeouts += 1
        if transient and task.attempts < self.retry.max_attempts:
            delayed.append(
                (
                    time.perf_counter() + self.retry.backoff_for(task.attempts),
                    task,
                )
            )
            return None
        return _Outcome(
            index=task.index,
            attempts=task.attempts,
            timeouts=task.timeouts,
            failure=_failure_from_parts(
                task.job, task.attempts, error_type, message, transient,
                timed_out=was_timeout,
            ),
        )

    def _reap_worker(
        self,
        worker_id: int,
        worker: _Worker,
        workers: Dict[int, _Worker],
        delayed: List[Tuple[float, _Task]],
    ) -> Optional[_Outcome]:
        """Handle one worker's timeout or death; returns a final outcome."""
        now = time.perf_counter()
        task = worker.current
        if task is not None and worker.deadline is not None and now > worker.deadline:
            # Per-job timeout: reclaim the worker, charge the attempt.
            worker.kill()
            del workers[worker_id]
            task.attempts += 1
            task.timeouts += 1
            if task.attempts < self.retry.max_attempts:
                delayed.append((now + self.retry.backoff_for(task.attempts), task))
                return None
            job = task.job
            return _Outcome(
                index=task.index,
                attempts=task.attempts,
                timeouts=task.timeouts,
                failure=_failure_from_parts(
                    job,
                    task.attempts,
                    JobTimeout.__name__,
                    f"job {job.label or job.content_hash()[:12]} "
                    f"[{job.content_hash()[:12]}] exceeded the "
                    f"{self.retry.timeout_s:g} s per-attempt timeout; "
                    f"worker killed",
                    transient=True,
                    timed_out=True,
                ),
            )
        if worker.proc.is_alive():
            return None
        # Abrupt death (kill -9, os._exit, OOM): charge the held job.
        exitcode = worker.proc.exitcode
        del workers[worker_id]
        if task is None:
            return None  # died idle; replacement handled by the caller
        task.attempts += 1
        if task.attempts < self.retry.max_attempts:
            delayed.append((now + self.retry.backoff_for(task.attempts), task))
            return None
        job = task.job
        return _Outcome(
            index=task.index,
            attempts=task.attempts,
            timeouts=task.timeouts,
            failure=_failure_from_parts(
                job,
                task.attempts,
                WorkerCrash.__name__,
                f"worker died (exit code {exitcode}) while running "
                f"{job.label or job.content_hash()[:12]} "
                f"[{job.content_hash()[:12]}]",
                transient=True,
                worker_crash=True,
            ),
        )

    @staticmethod
    def _shutdown(workers: Dict[int, _Worker], result_q: Any) -> None:
        """Stop every worker: sentinel first, then escalate."""
        for worker in workers.values():
            try:
                worker.task_q.put(None)
            except (OSError, ValueError):  # pragma: no cover - queue torn down
                pass
        for worker in workers.values():
            worker.proc.join(0.5)
            if worker.proc.is_alive():
                worker.kill()
        for worker in workers.values():
            worker.task_q.close()
        result_q.close()
        workers.clear()
