"""The one execution engine behind campaigns and experiments.

Runs a list of :class:`~repro.exec.jobspec.JobSpec` through a serial
loop or a ``multiprocessing`` pool, with an optional persistent
:class:`~repro.exec.cache.ResultCache` consulted first. All three paths
-- serial, pooled, cache hit -- return byte-identical results: jobs are
self-contained and deterministic, and every result is normalized
through the same JSON round trip before it reaches the caller (see
:func:`~repro.exec.jobspec.json_roundtrip`).

Within one ``run()`` call, jobs sharing a content hash execute once;
the result fans out to every duplicate. Progress callbacks fire in the
parent process as jobs complete: cache hits first (in job order), then
executions in completion order.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExecError
from repro.exec.cache import ResultCache
from repro.exec.jobspec import JobSpec, json_roundtrip

#: Progress callback signature: ``(done, total, job, result, cached)``.
#: ``cached`` is ``True`` when the result was not freshly executed for
#: this job -- a cache-file hit or an in-run duplicate of another job.
ProgressCallback = Callable[[int, int, JobSpec, Any, bool], None]


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker count: ``None`` -> serial, ``0`` -> all cores.

    Raises:
        ExecError: for a negative count.
    """
    if workers is None:
        return 1
    if workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ExecError(f"workers must be >= 0, got {workers}")
    return workers


@dataclass(frozen=True)
class ExecutionReport:
    """What one :meth:`Executor.run` call actually did.

    Attributes:
        total: number of jobs submitted.
        executed: jobs whose callable actually ran (unique executions).
        cached: jobs served without running -- persistent-cache hits
            plus in-run duplicates of an executed job.
        elapsed_s: wall-clock seconds of the whole run.
        job_min_s: wall clock of the fastest executed job (0 when
            nothing executed).
        job_mean_s: mean wall clock over the executed jobs.
        job_max_s: wall clock of the slowest executed job.
        slowest_label: label (or content-hash prefix) of the slowest
            executed job -- the first place to look when a campaign
            stalls.
    """

    total: int
    executed: int
    cached: int
    elapsed_s: float
    job_min_s: float = 0.0
    job_mean_s: float = 0.0
    job_max_s: float = 0.0
    slowest_label: str = ""

    def summary(self) -> str:
        """One-line human description, e.g. ``"12 jobs: 9 cached, 3 executed"``."""
        return (
            f"{self.total} jobs: {self.cached} cached, {self.executed} executed "
            f"in {self.elapsed_s:.1f} s"
        )

    def timings_summary(self) -> str:
        """Per-job wall-clock line; empty when nothing executed."""
        if self.executed == 0:
            return ""
        return (
            f"job wall clock: {self.job_min_s:.2f}/{self.job_mean_s:.2f}/"
            f"{self.job_max_s:.2f} s min/mean/max"
            + (f", slowest: {self.slowest_label}" if self.slowest_label else "")
        )


def _run_indexed(item: Tuple[int, JobSpec]) -> Tuple[int, Any, float]:
    """Pool worker entry point: execute one job, keep its index.

    Also measures the job's own wall clock (inside the worker process,
    so pooled timings exclude queueing and transport).
    """
    index, job = item
    start = time.perf_counter()
    result = job.run()
    return index, result, time.perf_counter() - start


class Executor:
    """Serial or process-pool job execution with result caching.

    Args:
        workers: ``None``/``1`` for the serial path, ``0`` for one
            worker per CPU core, otherwise the pool size. If no pool
            can be created (restricted environments), execution falls
            back to the serial path -- results are identical either way.
        cache: optional persistent result cache consulted before (and
            filled after) every execution; ``None`` disables caching.

    Example:
        >>> from repro.exec import Executor, JobSpec
        >>> jobs = [
        ...     JobSpec(fn="repro.exec.demo:scaled_sum",
        ...             kwargs={"values": [1.0, float(i)], "factor": 2.0})
        ...     for i in range(3)
        ... ]
        >>> executor = Executor()
        >>> executor.run(jobs)
        [2.0, 4.0, 6.0]
        >>> executor.last_report.summary()
        '3 jobs: 0 cached, 3 executed in 0.0 s'
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
    ):
        self.workers = resolve_workers(workers)
        self.cache = cache
        self.last_report: Optional[ExecutionReport] = None

    def run(
        self,
        jobs: Sequence[JobSpec],
        progress: Optional[ProgressCallback] = None,
        refresh: Optional[Callable[[JobSpec], bool]] = None,
    ) -> List[Any]:
        """Execute ``jobs`` and return their results in job order.

        Args:
            jobs: the specs to run.
            progress: optional callback invoked once per job as results
                become available, with ``(done, total, job, result,
                cached)``; runs in the parent process.
            refresh: optional predicate; jobs for which it returns True
                skip the cache *lookup* and execute even when a stored
                result exists (the fresh result is still stored, byte-
                identically for a deterministic job). Used when a job's
                side artifacts -- e.g. a mission's flight trace -- are
                missing although its scalar result is cached.

        Returns:
            One (JSON-normalized) result per job, in input order.
        """
        start = time.perf_counter()
        jobs = list(jobs)
        total = len(jobs)
        results: List[Any] = [None] * total
        served = [False] * total
        done = 0

        # 1. Serve what the persistent cache already knows.
        if self.cache is not None:
            for i, job in enumerate(jobs):
                if refresh is not None and refresh(job):
                    continue
                value, hit = self.cache.get(job)
                if hit:
                    results[i] = value
                    served[i] = True
                    done += 1
                    if progress is not None:
                        progress(done, total, job, value, True)

        # 2. Group the remainder by content hash: duplicates of one
        #    computation execute once and fan out.
        groups: Dict[str, List[int]] = {}
        for i, job in enumerate(jobs):
            if not served[i]:
                groups.setdefault(job.content_hash(), []).append(i)
        unique = [(indices[0], jobs[indices[0]]) for indices in groups.values()]

        executed = 0
        timings: List[Tuple[float, str]] = []
        for index, raw, job_s in self._execute(unique):
            value = json_roundtrip(raw)
            job = jobs[index]
            if self.cache is not None:
                self.cache.put(job, value)
            executed += 1
            timings.append((job_s, job.label or job.content_hash()[:12]))
            for k, i in enumerate(groups[job.content_hash()]):
                results[i] = value
                served[i] = True
                done += 1
                if progress is not None:
                    progress(done, total, jobs[i], value, k > 0)

        slowest = max(timings) if timings else (0.0, "")
        self.last_report = ExecutionReport(
            total=total,
            executed=executed,
            cached=total - executed,
            elapsed_s=time.perf_counter() - start,
            job_min_s=min(t for t, _ in timings) if timings else 0.0,
            job_mean_s=sum(t for t, _ in timings) / len(timings) if timings else 0.0,
            job_max_s=slowest[0],
            slowest_label=slowest[1],
        )
        return results

    # -- backends ---------------------------------------------------------

    def _execute(self, items: List[Tuple[int, JobSpec]]):
        """Yield ``(index, raw_result, job_seconds)`` per item, any order."""
        if self.workers > 1 and len(items) > 1:
            pooled = self._execute_pooled(items, min(self.workers, len(items)))
            if pooled is not None:
                return pooled
        return map(_run_indexed, items)

    @staticmethod
    def _execute_pooled(items, n_workers: int):
        """Run through a pool; ``None`` if no pool can be created."""
        try:
            pool = multiprocessing.Pool(processes=n_workers)
        except (OSError, ValueError, ImportError):  # pragma: no cover - env specific
            return None

        def results():
            try:
                # ``with pool`` terminates on exit: when a job raises,
                # the queued remainder is killed immediately instead of
                # burning the rest of the batch before the error surfaces.
                with pool:
                    for indexed in pool.imap_unordered(_run_indexed, items):
                        yield indexed
            finally:
                pool.join()

        return results()
