"""Tiny deterministic callables for executor tests and examples.

Real workloads live in :mod:`repro.sim.runner` (missions) and
:mod:`repro.experiments.jobs` (training/deployment); these functions
exist so the execution layer can be demonstrated -- and its tests can
exercise hashing, caching and pool transport -- without flying a drone
or training a network.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ExecError


def scaled_sum(values: Sequence[float], factor: float = 1.0) -> float:
    """``sum(values) * factor`` -- the smallest possible deterministic job.

    Example:
        >>> from repro.exec.demo import scaled_sum
        >>> scaled_sum([1.0, 2.0], factor=3.0)
        9.0
    """
    return float(sum(values)) * factor


def seeded_normals(
    n: int, seed: Optional[np.random.SeedSequence] = None
) -> List[float]:
    """``n`` standard-normal draws from the injected seed stream.

    Jobs built with ``seed_entropy``/``spawn_key`` receive ``seed`` as
    a spawned :class:`~numpy.random.SeedSequence`; the same provenance
    always produces the same floats, in any process.
    """
    rng = np.random.default_rng(seed)
    return [float(x) for x in rng.standard_normal(n)]


def sleepy_echo(value: float, sleep_s: float = 0.0) -> float:
    """Return ``value`` after sleeping -- a tunable-cost job for benches."""
    if sleep_s > 0.0:
        time.sleep(sleep_s)
    return value


def always_fails(message: str = "boom") -> None:
    """Raise ``ExecError(message)`` -- the error-propagation test job."""
    raise ExecError(message)


def counted_echo(token: str, marker_dir: str, sleep_s: float = 0.0) -> str:
    """Return ``token`` after dropping one marker file per *execution*.

    The result is deterministic (just ``token``), but every invocation
    leaves a uniquely-named file under ``marker_dir/token/`` as a side
    effect -- which is how exactly-once tests distinguish "every job
    ran once" from "every job has a result": with caching off, the
    marker count for a token IS its execution count, regardless of how
    many workers, retries or re-leases were involved.
    """
    if sleep_s > 0.0:
        time.sleep(sleep_s)
    directory = os.path.join(marker_dir, token)
    os.makedirs(directory, exist_ok=True)
    fd, _ = tempfile.mkstemp(prefix="exec-", dir=directory)
    os.close(fd)
    return token
