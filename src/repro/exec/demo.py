"""Tiny deterministic callables for executor tests and examples.

Real workloads live in :mod:`repro.sim.runner` (missions) and
:mod:`repro.experiments.jobs` (training/deployment); these functions
exist so the execution layer can be demonstrated -- and its tests can
exercise hashing, caching and pool transport -- without flying a drone
or training a network.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ExecError


def scaled_sum(values: Sequence[float], factor: float = 1.0) -> float:
    """``sum(values) * factor`` -- the smallest possible deterministic job.

    Example:
        >>> from repro.exec.demo import scaled_sum
        >>> scaled_sum([1.0, 2.0], factor=3.0)
        9.0
    """
    return float(sum(values)) * factor


def seeded_normals(
    n: int, seed: Optional[np.random.SeedSequence] = None
) -> List[float]:
    """``n`` standard-normal draws from the injected seed stream.

    Jobs built with ``seed_entropy``/``spawn_key`` receive ``seed`` as
    a spawned :class:`~numpy.random.SeedSequence`; the same provenance
    always produces the same floats, in any process.
    """
    rng = np.random.default_rng(seed)
    return [float(x) for x in rng.standard_normal(n)]


def sleepy_echo(value: float, sleep_s: float = 0.0) -> float:
    """Return ``value`` after sleeping -- a tunable-cost job for benches."""
    if sleep_s > 0.0:
        time.sleep(sleep_s)
    return value


def always_fails(message: str = "boom") -> None:
    """Raise ``ExecError(message)`` -- the error-propagation test job."""
    raise ExecError(message)
