"""CLI entry: run worker daemons and drive the distributed work queue.

Usage:
    python -m repro.exec worker --broker queue.db --exit-when-drained
    python -m repro.exec worker --broker queue.db --timeout 120 &   # fleet
    python -m repro.exec submit --broker queue.db jobs.json --retries 3
    python -m repro.exec status --broker queue.db [--json]
    python -m repro.exec drain --broker queue.db --timeout 600
    python -m repro.exec requeue --broker queue.db

The broker is one SQLite file (WAL mode): point any number of
``worker`` processes -- on any host sharing the filesystem -- at the
same path and they cooperatively drain it, each job leased to exactly
one worker at a time, re-leased if its worker dies, completed exactly
once. ``submit`` enqueues a JSON list of job specs (the
``JobSpec.to_dict()`` wire format, plus optional ``label``); campaigns
are enqueued with ``python -m repro.sim run --broker queue.db``.
Workers share the standard result cache (``--cache-dir`` /
``$REPRO_CACHE_DIR``; ``--no-cache`` opts out).
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
from types import FrameType
from typing import List, Optional, Sequence

from repro.errors import ExecError
from repro.exec import (
    Broker,
    JobSpec,
    RetryPolicy,
    Worker,
    default_worker_id,
    open_cache,
)
from repro.exec.queue import DEFAULT_MAX_RECLAIMS


def _cmd_worker(args: argparse.Namespace) -> int:
    cache = open_cache(args.cache_dir, enabled=not args.no_cache)
    retry = RetryPolicy(
        max_attempts=1, backoff_s=args.backoff, timeout_s=args.timeout
    )
    with Broker(args.broker) as broker:
        worker = Worker(
            broker,
            cache=cache,
            retry=retry,
            worker_id=args.worker_id or default_worker_id(),
            lease_s=args.lease,
            poll_s=args.poll,
            max_jobs=args.max_jobs,
            exit_when_drained=args.exit_when_drained,
        )

        def _graceful(signum: int, _frame: Optional[FrameType]) -> None:
            print(
                f"worker {worker.worker_id}: caught signal {signum}, "
                "finishing current job",
                flush=True,
            )
            worker.request_stop()

        signal.signal(signal.SIGTERM, _graceful)
        signal.signal(signal.SIGINT, _graceful)
        print(
            f"worker {worker.worker_id} draining {args.broker} "
            f"(lease {worker.lease_s:g} s)",
            flush=True,
        )
        report = worker.run()
    print(report.summary())
    if args.verbose:
        for event in report.events:
            print(f"  {event}")
    return 0


def _load_job_dicts(path: str) -> List[JobSpec]:
    raw = sys.stdin.read() if path == "-" else open(path, encoding="utf-8").read()
    data = json.loads(raw)
    if not isinstance(data, list):
        raise ExecError("submit expects a JSON list of job spec objects")
    jobs: List[JobSpec] = []
    for entry in data:
        if not isinstance(entry, dict):
            raise ExecError(f"job spec entries must be objects, got {type(entry).__name__}")
        entry = dict(entry)
        label = entry.pop("label", "")
        jobs.append(JobSpec.from_dict(entry, label=label))
    return jobs


def _cmd_submit(args: argparse.Namespace) -> int:
    jobs = _load_job_dicts(args.jobs)
    retry = RetryPolicy(max_attempts=args.retries)
    with Broker(args.broker) as broker:
        report = broker.submit(jobs, retry=retry, max_reclaims=args.max_reclaims)
        counts = broker.counts()
    print(
        f"submitted {report.submitted} jobs to {args.broker} "
        f"({report.duplicates} already queued, {report.already_done} already "
        f"done); queue: {counts.pending} pending, {counts.leased} leased, "
        f"{counts.done} done, {counts.failed} failed"
    )
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    with Broker(args.broker) as broker:
        broker.reclaim_expired()
        stats = broker.stats()
        failed = broker.failed_jobs() if not args.json else []
    if args.json:
        print(json.dumps(stats, indent=1, sort_keys=True))
        return 0
    jobs = stats["jobs"]
    print(
        f"queue {args.broker}: {jobs['total']} jobs -- "
        f"{jobs['pending']} pending, {jobs['leased']} leased, "
        f"{jobs['done']} done ({stats['cache_hits']} from cache), "
        f"{jobs['failed']} failed"
    )
    print(
        f"  attempts: {stats['failed_attempts']} failed, "
        f"{stats['reclaims']} leases reclaimed from dead workers, "
        f"{stats['timeouts']} timeouts"
    )
    for w in stats["workers"]:
        age = time.time() - w["last_seen"]  # repro: noqa[RPR102] CLI status display only; never hashed or persisted
        print(
            f"  worker {w['worker']}: {w['jobs_done']} jobs done, "
            f"last seen {age:.0f} s ago"
        )
    for out in failed:
        failure = out.failure()
        detail = (
            f"{failure.error_type}: {failure.message}"
            if failure is not None
            else "?"
        )
        print(f"  FAILED {out.label or out.content_hash[:12]}: {detail}")
    return 0


def _cmd_drain(args: argparse.Namespace) -> int:
    deadline = None if args.timeout is None else time.monotonic() + args.timeout
    with Broker(args.broker) as broker:
        while True:
            broker.reclaim_expired()
            counts = broker.counts()
            if counts.remaining == 0:
                break
            if deadline is not None and time.monotonic() > deadline:
                raise ExecError(
                    f"drain timed out with {counts.remaining} jobs unfinished "
                    f"({counts.pending} pending, {counts.leased} leased)"
                )
            time.sleep(args.poll)
        failed = broker.failed_jobs()
    print(
        f"queue drained: {counts.done} done, {counts.failed} failed "
        f"of {counts.total} jobs"
    )
    for out in failed:
        failure = out.failure()
        detail = (
            f"{failure.error_type}: {failure.message}"
            if failure is not None
            else "?"
        )
        print(f"  FAILED {out.label or out.content_hash[:12]}: {detail}")
    return 1 if failed else 0


def _cmd_requeue(args: argparse.Namespace) -> int:
    with Broker(args.broker) as broker:
        n = broker.requeue_failed()
    print(f"requeued {n} failed jobs in {args.broker}")
    return 0


def _add_broker_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--broker", required=True, metavar="PATH",
        help="queue database file (shared by submitters and workers)",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.exec", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    worker = sub.add_parser("worker", help="run one worker daemon loop")
    _add_broker_arg(worker)
    worker.add_argument(
        "--worker-id", default=None,
        help="stable worker identity (default: <host>:<pid>)",
    )
    worker.add_argument(
        "--lease", type=float, default=None, metavar="S",
        help="lease duration; heartbeats extend it at a third of this "
        "(default: the broker's, 60 s)",
    )
    worker.add_argument(
        "--poll", type=float, default=0.2, metavar="S",
        help="idle sleep between empty lease attempts",
    )
    worker.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-attempt wall-clock budget (watchdog; timeouts are "
        "transient and requeued while attempts remain)",
    )
    worker.add_argument(
        "--backoff", type=float, default=0.0, metavar="S",
        help="base requeue delay after a transient failure, doubling per "
        "completed attempt (deterministic)",
    )
    worker.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="exit after completing N jobs",
    )
    worker.add_argument(
        "--exit-when-drained", action="store_true",
        help="exit once the queue holds no pending or leased jobs "
        "instead of polling forever",
    )
    worker.add_argument(
        "--cache-dir", default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    worker.add_argument(
        "--no-cache", action="store_true",
        help="always execute; neither read nor write the result cache",
    )
    worker.add_argument(
        "--verbose", action="store_true", help="print one line per job at exit"
    )
    worker.set_defaults(fn=_cmd_worker)

    submit = sub.add_parser("submit", help="enqueue a JSON list of job specs")
    _add_broker_arg(submit)
    submit.add_argument(
        "jobs",
        help="path to a JSON list of JobSpec.to_dict() objects "
        "(optional 'label' per entry); '-' reads stdin",
    )
    submit.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="attempts per job (1 = no retries); fixed at submit time",
    )
    submit.add_argument(
        "--max-reclaims", type=int, default=DEFAULT_MAX_RECLAIMS, metavar="N",
        help="how many dead-worker lease expiries a job survives before "
        "it is marked failed",
    )
    submit.set_defaults(fn=_cmd_submit)

    status = sub.add_parser("status", help="inspect queue and worker state")
    _add_broker_arg(status)
    status.add_argument(
        "--json", action="store_true",
        help="full machine-readable stats (CI artifacts)",
    )
    status.set_defaults(fn=_cmd_status)

    drain = sub.add_parser(
        "drain", help="wait until the queue holds no unfinished jobs"
    )
    _add_broker_arg(drain)
    drain.add_argument(
        "--poll", type=float, default=0.5, metavar="S", help="poll interval"
    )
    drain.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="give up after this long (exit code 2)",
    )
    drain.set_defaults(fn=_cmd_drain)

    requeue = sub.add_parser(
        "requeue", help="give every failed job a fresh attempt budget"
    )
    _add_broker_arg(requeue)
    requeue.set_defaults(fn=_cmd_requeue)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ExecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
