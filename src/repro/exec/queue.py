"""SQLite-backed distributed work queue for execution-layer jobs.

The :class:`Broker` turns the execution layer into a multi-process (and,
over a shared filesystem, multi-host) fleet: clients *submit*
:class:`~repro.exec.jobspec.JobSpec` descriptions keyed by their content
hash, worker daemons (:mod:`repro.exec.worker`) *lease* them one at a
time, run them through the exact same attempt/cache/fault machinery the
in-process :class:`~repro.exec.executor.Executor` uses, and *complete*
them with the JSON-normalized result. Everything durable lives in one
SQLite file in WAL mode, so any number of submitters and workers can
share a queue with nothing but a path.

Lease state machine (one row per job, keyed by content hash)::

    pending --lease()--> leased --complete()--> done
       ^                   |
       |                   +--fail(transient, attempts left)--+
       |                   +--lease expiry (dead worker)------+
       |                                                      |
       +------------------------------------------------------+
                           |
                           +--fail(permanent / exhausted)--> failed

A lease carries a wall-clock *deadline*; a live worker extends it with
:meth:`Broker.heartbeat` while its job runs. A worker that dies --
``kill -9``, OOM, power loss -- simply stops heartbeating, and the next
:meth:`Broker.lease` call reclaims the expired lease and hands the job
to someone else: work is re-leased, never lost. Completion is
exactly-once by construction: only the current leaseholder may complete
a job (``BEGIN IMMEDIATE`` transactions make lease transitions atomic),
a late worker whose lease was reclaimed has its result discarded, and
the ``leases`` audit table records every grant so tests can *assert*
that no two live leases ever coexisted.

Determinism is inherited from the job layer: results are stored as
canonical JSON of the same :func:`~repro.exec.jobspec.json_roundtrip`
normalization every executor path uses, so a broker-drained campaign is
byte-identical to a serial in-process run no matter how many workers
raced, died or retried.

Example:
    >>> import tempfile, os
    >>> from repro.exec import Broker, JobSpec
    >>> job = JobSpec(fn="repro.exec.demo:scaled_sum",
    ...               kwargs={"values": [1.0, 2.0], "factor": 3.0})
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     with Broker(os.path.join(tmp, "queue.db")) as broker:
    ...         report = broker.submit([job])
    ...         lease = broker.lease("worker-a")
    ...         ok = broker.complete("worker-a", lease.content_hash,
    ...                              lease.job.run())
    ...         outcome = broker.outcome(job.content_hash())
    >>> (report.submitted, ok, outcome.state, outcome.result)
    (1, True, 'done', 9.0)
"""

from __future__ import annotations

import json
import os
import socket
import sqlite3
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro import schemas
from repro.errors import ExecError
from repro.exec.executor import JobFailure, RetryPolicy
from repro.exec.jobspec import JobSpec, canonical_json, json_roundtrip

#: On-disk schema token, stored in ``meta``; a broker file written by a
#: different layout refuses to open instead of mis-parsing.
BROKER_SCHEMA = schemas.BROKER_SCHEMA

#: Default lease duration: how long a worker may go without a heartbeat
#: before its job is considered abandoned and re-leased.
DEFAULT_LEASE_S = 60.0

#: Default bound on how often one job may be reclaimed from dead
#: workers before the broker gives up on it. Distinct from the retry
#: policy's ``max_attempts`` (which bounds *in-worker* failures): a job
#: that hard-kills every worker that touches it must not crash-loop the
#: fleet forever.
DEFAULT_MAX_RECLAIMS = 5

#: How long concurrent writers wait on the SQLite lock before erroring.
_BUSY_TIMEOUT_MS = 30_000

#: Job states, in lifecycle order.
JOB_STATES = ("pending", "leased", "done", "failed")


class SubmitReport(NamedTuple):
    """What one :meth:`Broker.submit` call did."""

    submitted: int  #: new jobs enqueued as ``pending``
    duplicates: int  #: hashes already queued, leased or failed
    already_done: int  #: hashes whose result is already in the broker


class QueueCounts(NamedTuple):
    """Point-in-time per-state job counts."""

    pending: int
    leased: int
    done: int
    failed: int

    @property
    def total(self) -> int:
        return self.pending + self.leased + self.done + self.failed

    @property
    def remaining(self) -> int:
        """Jobs not yet in a terminal state."""
        return self.pending + self.leased


@dataclass(frozen=True)
class Lease:
    """One granted lease: the job plus everything the worker must honor.

    ``attempt`` is the 0-based execution attempt the worker should run
    (and feed to fault injection): completed failed attempts so far,
    counting both in-worker failures and reclaimed leases.
    """

    content_hash: str
    job: JobSpec
    attempt: int
    worker: str
    deadline: float
    lease_id: int


@dataclass(frozen=True)
class JobOutcome:
    """Terminal (or in-flight) view of one queued job."""

    content_hash: str
    state: str
    label: str
    attempts: int
    reclaims: int
    cached: bool
    timeouts: int = 0
    result: Any = None  #: JSON-normalized result (done) or failure dict (failed)

    def failure(self) -> Optional[JobFailure]:
        """The failure envelope, for ``failed`` jobs."""
        if self.state != "failed" or not JobFailure.is_failure_payload(self.result):
            return None
        return JobFailure.from_dict(self.result)


#: Column list every :class:`JobOutcome` query selects, in field order.
_OUTCOME_COLS = "hash, state, label, attempts, reclaims, cached, timeouts, result"


def _outcome_from_row(row: Tuple) -> JobOutcome:
    return JobOutcome(
        content_hash=row[0],
        state=row[1],
        label=row[2],
        attempts=row[3],
        reclaims=row[4],
        cached=bool(row[5]),
        timeouts=row[6],
        result=None if row[7] is None else json.loads(row[7]),
    )


def default_worker_id() -> str:
    """A worker identity unique per process: ``<host>:<pid>``."""
    return f"{socket.gethostname()}:{os.getpid()}"


class Broker:
    """SQLite-backed job queue with leases, heartbeats and retry.

    One ``Broker`` instance wraps one connection to the queue file;
    open as many instances as you like, in as many processes as you
    like -- WAL mode plus ``BEGIN IMMEDIATE`` transactions keep every
    state transition atomic and every completion exactly-once. Instances
    are thread-safe (an internal lock serializes the connection), which
    lets a worker's heartbeat thread share its broker handle.

    Args:
        path: queue database file, created on first open. ``:memory:``
            is rejected: a queue nobody else can open is not a queue.
        lease_s: default lease duration handed to :meth:`lease` and
            :meth:`heartbeat` when the caller does not override it.

    Raises:
        ExecError: when the file exists but is not a broker database,
            or was written by an incompatible schema version.
    """

    def __init__(self, path: str, lease_s: float = DEFAULT_LEASE_S) -> None:
        if not path or path == ":memory:":
            raise ExecError("broker needs a real database path (shared by workers)")
        if lease_s <= 0:
            raise ExecError(f"lease_s must be > 0, got {lease_s}")
        self.path = path
        self.lease_s = float(lease_s)
        self._lock = threading.Lock()
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(
            path, timeout=_BUSY_TIMEOUT_MS / 1000.0, check_same_thread=False
        )
        self._conn.isolation_level = None  # explicit BEGIN IMMEDIATE below
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._init_schema()
        except sqlite3.DatabaseError as exc:
            self._conn.close()
            raise ExecError(f"{path!r} is not a broker database: {exc}") from exc

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "Broker":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _init_schema(self) -> None:
        with self._lock:
            cur = self._conn.cursor()
            cur.execute("BEGIN IMMEDIATE")
            try:
                cur.execute(
                    "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
                )
                row = cur.execute(
                    "SELECT value FROM meta WHERE key='schema'"
                ).fetchone()
                if row is None:
                    cur.execute(
                        "INSERT INTO meta (key, value) VALUES ('schema', ?)",
                        (BROKER_SCHEMA,),
                    )
                elif row[0] != BROKER_SCHEMA:
                    raise ExecError(
                        f"{self.path!r} was written by broker schema {row[0]!r}; "
                        f"this code speaks {BROKER_SCHEMA!r}"
                    )
                cur.execute(
                    """
                    CREATE TABLE IF NOT EXISTS jobs (
                        hash TEXT PRIMARY KEY,
                        spec TEXT NOT NULL,
                        label TEXT NOT NULL DEFAULT '',
                        extra TEXT NOT NULL DEFAULT '{}',
                        state TEXT NOT NULL DEFAULT 'pending',
                        attempts INTEGER NOT NULL DEFAULT 0,
                        max_attempts INTEGER NOT NULL DEFAULT 1,
                        max_reclaims INTEGER NOT NULL DEFAULT 5,
                        reclaims INTEGER NOT NULL DEFAULT 0,
                        timeouts INTEGER NOT NULL DEFAULT 0,
                        completions INTEGER NOT NULL DEFAULT 0,
                        cached INTEGER NOT NULL DEFAULT 0,
                        worker TEXT,
                        deadline REAL,
                        not_before REAL NOT NULL DEFAULT 0,
                        enqueued_at REAL NOT NULL,
                        finished_at REAL,
                        result TEXT
                    )
                    """
                )
                cur.execute(
                    "CREATE INDEX IF NOT EXISTS idx_jobs_state ON jobs(state)"
                )
                cur.execute(
                    """
                    CREATE TABLE IF NOT EXISTS leases (
                        id INTEGER PRIMARY KEY AUTOINCREMENT,
                        hash TEXT NOT NULL,
                        worker TEXT NOT NULL,
                        attempt INTEGER NOT NULL,
                        acquired_at REAL NOT NULL,
                        deadline REAL NOT NULL,
                        outcome TEXT
                    )
                    """
                )
                cur.execute(
                    "CREATE INDEX IF NOT EXISTS idx_leases_hash ON leases(hash)"
                )
                cur.execute(
                    """
                    CREATE TABLE IF NOT EXISTS workers (
                        worker TEXT PRIMARY KEY,
                        pid INTEGER,
                        host TEXT,
                        started_at REAL NOT NULL,
                        last_seen REAL NOT NULL,
                        jobs_done INTEGER NOT NULL DEFAULT 0
                    )
                    """
                )
                cur.execute("COMMIT")
            except BaseException:
                cur.execute("ROLLBACK")
                raise

    def _txn(self) -> sqlite3.Cursor:
        """Open an immediate (write-locking) transaction; caller commits."""
        cur = self._conn.cursor()
        cur.execute("BEGIN IMMEDIATE")
        return cur

    # -- submission -------------------------------------------------------

    def submit(
        self,
        jobs: Sequence[JobSpec],
        retry: Optional[RetryPolicy] = None,
        max_reclaims: int = DEFAULT_MAX_RECLAIMS,
        now: Optional[float] = None,
    ) -> SubmitReport:
        """Enqueue ``jobs``, deduplicating by content hash.

        A hash already present in the queue -- pending, leased, done or
        failed -- is never enqueued twice: the queue is idempotent, so
        any number of clients may submit the same campaign and exactly
        one execution happens. Hashes already ``done`` are reported as
        ``already_done`` (the submitter can collect their results
        immediately).

        Args:
            jobs: specs to enqueue; ``label`` and the ``extra`` side
                channel travel with the spec (neither affects the hash).
            retry: per-job attempt budget; ``max_attempts`` bounds
                in-worker failures exactly as it does for the in-process
                executor (``backoff_s`` becomes the re-lease delay).
            max_reclaims: how many expired leases the job survives
                before the broker marks it failed.
            now: clock override for tests.
        """
        if now is None:
            now = time.time()
        policy = retry or RetryPolicy()
        submitted = duplicates = already_done = 0
        with self._lock:
            cur = self._txn()
            try:
                for job in jobs:
                    content_hash = job.content_hash()
                    row = cur.execute(
                        "SELECT state FROM jobs WHERE hash=?", (content_hash,)
                    ).fetchone()
                    if row is not None:
                        if row[0] == "done":
                            already_done += 1
                        else:
                            duplicates += 1
                        continue
                    cur.execute(
                        """
                        INSERT INTO jobs (hash, spec, label, extra, state,
                                          max_attempts, max_reclaims, enqueued_at)
                        VALUES (?, ?, ?, ?, 'pending', ?, ?, ?)
                        """,
                        (
                            content_hash,
                            canonical_json(job.to_dict()),
                            job.label,
                            canonical_json(job.extra),
                            policy.max_attempts,
                            max_reclaims,
                            now,
                        ),
                    )
                    submitted += 1
                cur.execute("COMMIT")
            except BaseException:
                cur.execute("ROLLBACK")
                raise
        return SubmitReport(submitted, duplicates, already_done)

    # -- leasing ----------------------------------------------------------

    def lease(
        self,
        worker: str,
        lease_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Optional[Lease]:
        """Atomically acquire the oldest available job, or ``None``.

        One ``BEGIN IMMEDIATE`` transaction first reclaims every expired
        lease (dead workers' jobs go back to ``pending`` -- or to
        ``failed`` once ``max_reclaims`` is exhausted), then grants the
        oldest ``pending`` job whose backoff window (``not_before``) has
        passed. The grant is recorded in the ``leases`` audit table.

        Args:
            worker: the caller's stable identity (see
                :func:`default_worker_id`).
            lease_s: lease duration; default is the broker's.
            now: clock override for tests.
        """
        if now is None:
            now = time.time()
        duration = self.lease_s if lease_s is None else float(lease_s)
        with self._lock:
            cur = self._txn()
            try:
                self._reclaim_expired_locked(cur, now)
                row = cur.execute(
                    """
                    SELECT hash, spec, label, extra, attempts, reclaims
                    FROM jobs
                    WHERE state='pending' AND not_before <= ?
                    ORDER BY enqueued_at, hash LIMIT 1
                    """,
                    (now,),
                ).fetchone()
                if row is None:
                    cur.execute("COMMIT")
                    return None
                content_hash, spec_text, label, extra_text, attempts, reclaims = row
                deadline = now + duration
                cur.execute(
                    """
                    UPDATE jobs SET state='leased', worker=?, deadline=?
                    WHERE hash=?
                    """,
                    (worker, deadline, content_hash),
                )
                cur.execute(
                    """
                    INSERT INTO leases (hash, worker, attempt, acquired_at, deadline)
                    VALUES (?, ?, ?, ?, ?)
                    """,
                    (content_hash, worker, attempts + reclaims, now, deadline),
                )
                lease_id = cur.lastrowid
                cur.execute("COMMIT")
            except BaseException:
                cur.execute("ROLLBACK")
                raise
        job = JobSpec.from_dict(json.loads(spec_text), label=label)
        extra = json.loads(extra_text)
        if extra:
            job = replace(job, extra=extra)
        return Lease(
            content_hash=content_hash,
            job=job,
            attempt=attempts + reclaims,
            worker=worker,
            deadline=deadline,
            lease_id=lease_id,
        )

    def _reclaim_expired_locked(self, cur: sqlite3.Cursor, now: float) -> int:
        """Return expired leases to the pool (caller holds the txn)."""
        rows = cur.execute(
            """
            SELECT hash, worker, reclaims, max_reclaims, attempts, label
            FROM jobs WHERE state='leased' AND deadline < ?
            """,
            (now,),
        ).fetchall()
        for content_hash, worker, reclaims, max_reclaims, attempts, label in rows:
            cur.execute(
                """
                UPDATE leases SET outcome='expired'
                WHERE hash=? AND worker=? AND outcome IS NULL
                """,
                (content_hash, worker),
            )
            if reclaims + 1 >= max_reclaims:
                failure = JobFailure(
                    job_hash=content_hash,
                    label=label,
                    fn=json.loads(
                        cur.execute(
                            "SELECT spec FROM jobs WHERE hash=?", (content_hash,)
                        ).fetchone()[0]
                    )["fn"],
                    error_type="LeaseExpired",
                    message=(
                        f"lease held by {worker!r} expired {reclaims + 1} "
                        f"time(s); worker presumed dead, reclaim budget "
                        f"({max_reclaims}) exhausted"
                    ),
                    attempts=attempts + reclaims + 1,
                    transient=True,
                    worker_crash=True,
                )
                cur.execute(
                    """
                    UPDATE jobs SET state='failed', worker=NULL, deadline=NULL,
                        reclaims=reclaims+1, finished_at=?, result=?
                    WHERE hash=?
                    """,
                    (now, canonical_json(failure.to_dict()), content_hash),
                )
            else:
                cur.execute(
                    """
                    UPDATE jobs SET state='pending', worker=NULL, deadline=NULL,
                        reclaims=reclaims+1
                    WHERE hash=?
                    """,
                    (content_hash,),
                )
        return len(rows)

    def reclaim_expired(self, now: Optional[float] = None) -> int:
        """Explicitly reclaim expired leases; returns how many.

        :meth:`lease` already does this on every call; this entry point
        exists for pollers (``drain``/``status``) so a queue with no
        live workers still notices dead ones.
        """
        if now is None:
            now = time.time()
        with self._lock:
            cur = self._txn()
            try:
                n = self._reclaim_expired_locked(cur, now)
                cur.execute("COMMIT")
            except BaseException:
                cur.execute("ROLLBACK")
                raise
        return n

    def heartbeat(
        self,
        worker: str,
        content_hash: str,
        lease_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> bool:
        """Extend ``worker``'s lease on ``content_hash``.

        Returns ``False`` when the lease is no longer held (expired and
        reclaimed, or completed elsewhere) -- the worker should abandon
        the job's result.
        """
        if now is None:
            now = time.time()
        duration = self.lease_s if lease_s is None else float(lease_s)
        with self._lock:
            cur = self._txn()
            try:
                cur.execute(
                    """
                    UPDATE jobs SET deadline=?
                    WHERE hash=? AND state='leased' AND worker=?
                    """,
                    (now + duration, content_hash, worker),
                )
                held = cur.rowcount == 1
                if held:
                    cur.execute(
                        """
                        UPDATE leases SET deadline=?
                        WHERE hash=? AND worker=? AND outcome IS NULL
                        """,
                        (now + duration, content_hash, worker),
                    )
                cur.execute(
                    "UPDATE workers SET last_seen=? WHERE worker=?", (now, worker)
                )
                cur.execute("COMMIT")
            except BaseException:
                cur.execute("ROLLBACK")
                raise
        return held

    # -- completion -------------------------------------------------------

    def complete(
        self,
        worker: str,
        content_hash: str,
        result: Any,
        cached: bool = False,
        now: Optional[float] = None,
    ) -> bool:
        """Record ``result`` for a job ``worker`` holds the lease on.

        The result is normalized through the standard JSON round trip
        and stored as canonical JSON -- the same bytes an in-process
        executor would hand back. Returns ``False`` (and stores
        nothing) when the lease is no longer held: completion is
        exactly-once even when a presumed-dead worker finishes late.

        Args:
            cached: the worker served the result from its
                :class:`~repro.exec.cache.ResultCache` instead of
                executing -- bookkeeping for campaign reports.
        """
        if now is None:
            now = time.time()
        with self._lock:
            cur = self._txn()
            try:
                cur.execute(
                    """
                    UPDATE jobs SET state='done', result=?, finished_at=?,
                        completions=completions+1, cached=?, worker=NULL,
                        deadline=NULL
                    WHERE hash=? AND state='leased' AND worker=?
                    """,
                    (
                        canonical_json(json_roundtrip(result)),
                        now,
                        1 if cached else 0,
                        content_hash,
                        worker,
                    ),
                )
                accepted = cur.rowcount == 1
                if accepted:
                    cur.execute(
                        """
                        UPDATE leases SET outcome='completed'
                        WHERE hash=? AND worker=? AND outcome IS NULL
                        """,
                        (content_hash, worker),
                    )
                    cur.execute(
                        "UPDATE workers SET jobs_done=jobs_done+1, last_seen=? "
                        "WHERE worker=?",
                        (now, worker),
                    )
                cur.execute("COMMIT")
            except BaseException:
                cur.execute("ROLLBACK")
                raise
        return accepted

    def fail(
        self,
        worker: str,
        content_hash: str,
        failure: JobFailure,
        retry_delay_s: float = 0.0,
        now: Optional[float] = None,
    ) -> str:
        """Record a failed attempt; returns the job's new state.

        Transient failures with attempts to spare go back to
        ``pending`` (``"requeued"``; ``retry_delay_s`` implements the
        policy's deterministic backoff via ``not_before``). Permanent
        or exhausted failures freeze the envelope in ``failed``. A
        worker that lost its lease gets ``"lost"`` and nothing changes.
        """
        if now is None:
            now = time.time()
        with self._lock:
            cur = self._txn()
            try:
                row = cur.execute(
                    """
                    SELECT attempts, max_attempts FROM jobs
                    WHERE hash=? AND state='leased' AND worker=?
                    """,
                    (content_hash, worker),
                ).fetchone()
                if row is None:
                    cur.execute("COMMIT")
                    return "lost"
                attempts, max_attempts = row
                attempts += 1
                timeout_bump = 1 if failure.timed_out else 0
                if failure.transient and attempts < max_attempts:
                    cur.execute(
                        """
                        UPDATE jobs SET state='pending', worker=NULL,
                            deadline=NULL, attempts=?, timeouts=timeouts+?,
                            not_before=?
                        WHERE hash=?
                        """,
                        (attempts, timeout_bump, now + retry_delay_s, content_hash),
                    )
                    state = "requeued"
                else:
                    cur.execute(
                        """
                        UPDATE jobs SET state='failed', worker=NULL,
                            deadline=NULL, attempts=?, timeouts=timeouts+?,
                            finished_at=?, result=?
                        WHERE hash=?
                        """,
                        (
                            attempts,
                            timeout_bump,
                            now,
                            canonical_json(failure.to_dict()),
                            content_hash,
                        ),
                    )
                    state = "failed"
                cur.execute(
                    """
                    UPDATE leases SET outcome=?
                    WHERE hash=? AND worker=? AND outcome IS NULL
                    """,
                    ("failed" if state == "failed" else "requeued",
                     content_hash, worker),
                )
                cur.execute("COMMIT")
            except BaseException:
                cur.execute("ROLLBACK")
                raise
        return state

    # -- inspection -------------------------------------------------------

    def counts(self) -> QueueCounts:
        """Per-state job counts (one cheap indexed query)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
        by_state = dict(rows)
        return QueueCounts(*(by_state.get(s, 0) for s in JOB_STATES))

    def outcome(self, content_hash: str) -> Optional[JobOutcome]:
        """The current view of one job, or ``None`` if unknown."""
        with self._lock:
            row = self._conn.execute(
                f"SELECT {_OUTCOME_COLS} FROM jobs WHERE hash=?",
                (content_hash,),
            ).fetchone()
        return None if row is None else _outcome_from_row(row)

    def outcomes(self, hashes: Sequence[str]) -> Dict[str, JobOutcome]:
        """Outcomes of every *finished* job among ``hashes``."""
        out: Dict[str, JobOutcome] = {}
        with self._lock:
            cur = self._conn.cursor()
            for start in range(0, len(hashes), 500):
                chunk = list(hashes[start : start + 500])
                marks = ",".join("?" * len(chunk))
                for row in cur.execute(
                    f"""
                    SELECT {_OUTCOME_COLS} FROM jobs
                    WHERE hash IN ({marks}) AND state IN ('done', 'failed')
                    """,
                    chunk,
                ):
                    out[row[0]] = _outcome_from_row(row)
        return out

    def lease_history(self, content_hash: str) -> List[dict]:
        """Every lease ever granted on ``content_hash``, oldest first.

        The audit trail crash-recovery tests assert on: rows carry
        ``worker``, ``attempt``, ``acquired_at``, ``deadline`` and
        ``outcome`` (``completed``/``failed``/``requeued``/``expired``,
        or ``None`` while live).
        """
        with self._lock:
            rows = self._conn.execute(
                """
                SELECT id, worker, attempt, acquired_at, deadline, outcome
                FROM leases WHERE hash=? ORDER BY id
                """,
                (content_hash,),
            ).fetchall()
        return [
            {
                "id": r[0],
                "worker": r[1],
                "attempt": r[2],
                "acquired_at": r[3],
                "deadline": r[4],
                "outcome": r[5],
            }
            for r in rows
        ]

    def register_worker(
        self, worker: str, pid: Optional[int] = None, now: Optional[float] = None
    ) -> None:
        """Record (or refresh) a worker daemon's presence."""
        if now is None:
            now = time.time()
        if pid is None:
            pid = os.getpid()
        with self._lock:
            cur = self._txn()
            try:
                cur.execute(
                    """
                    INSERT INTO workers (worker, pid, host, started_at, last_seen)
                    VALUES (?, ?, ?, ?, ?)
                    ON CONFLICT(worker) DO UPDATE SET
                        pid=excluded.pid, host=excluded.host, last_seen=excluded.last_seen
                    """,
                    (worker, pid, socket.gethostname(), now, now),
                )
                cur.execute("COMMIT")
            except BaseException:
                cur.execute("ROLLBACK")
                raise

    def workers(self) -> List[dict]:
        """Every worker ever registered, most recently seen first."""
        with self._lock:
            rows = self._conn.execute(
                """
                SELECT worker, pid, host, started_at, last_seen, jobs_done
                FROM workers ORDER BY last_seen DESC
                """
            ).fetchall()
        return [
            {
                "worker": r[0],
                "pid": r[1],
                "host": r[2],
                "started_at": r[3],
                "last_seen": r[4],
                "jobs_done": r[5],
            }
            for r in rows
        ]

    def stats(self) -> dict:
        """Queue-wide inventory for ``status --json`` and CI artifacts."""
        c = self.counts()
        with self._lock:
            agg = self._conn.execute(
                """
                SELECT COALESCE(SUM(attempts), 0), COALESCE(SUM(reclaims), 0),
                       COALESCE(SUM(timeouts), 0), COALESCE(SUM(completions), 0),
                       COALESCE(SUM(cached), 0)
                FROM jobs
                """
            ).fetchone()
            lease_rows = self._conn.execute(
                "SELECT COALESCE(outcome, 'live'), COUNT(*) FROM leases "
                "GROUP BY outcome"
            ).fetchall()
        return {
            "schema": BROKER_SCHEMA,
            "path": self.path,
            "jobs": {
                "pending": c.pending,
                "leased": c.leased,
                "done": c.done,
                "failed": c.failed,
                "total": c.total,
            },
            "failed_attempts": agg[0],
            "reclaims": agg[1],
            "timeouts": agg[2],
            "completions": agg[3],
            "cache_hits": agg[4],
            "leases": dict(sorted(lease_rows)),
            "workers": self.workers(),
        }

    def failed_jobs(self) -> List[JobOutcome]:
        """Every job currently in ``failed``, oldest first."""
        with self._lock:
            rows = self._conn.execute(
                f"SELECT {_OUTCOME_COLS} FROM jobs "
                "WHERE state='failed' ORDER BY enqueued_at, hash"
            ).fetchall()
        return [_outcome_from_row(r) for r in rows]

    def requeue_failed(self, now: Optional[float] = None) -> int:
        """Give every ``failed`` job a fresh start; returns how many.

        Resets attempt/reclaim accounting and clears the stored failure
        envelope -- the operator's lever after fixing whatever killed
        the jobs (or the workers).
        """
        if now is None:
            now = time.time()
        with self._lock:
            cur = self._txn()
            try:
                cur.execute(
                    """
                    UPDATE jobs SET state='pending', attempts=0, reclaims=0,
                        timeouts=0, worker=NULL, deadline=NULL, not_before=0,
                        finished_at=NULL, result=NULL
                    WHERE state='failed'
                    """
                )
                n = cur.rowcount
                cur.execute("COMMIT")
            except BaseException:
                cur.execute("ROLLBACK")
                raise
        return n

    def integrity_ok(self) -> bool:
        """Run SQLite's integrity check -- crash-recovery tests' gate."""
        with self._lock:
            row = self._conn.execute("PRAGMA integrity_check").fetchone()
        return row is not None and row[0] == "ok"
