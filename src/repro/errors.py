"""Exception hierarchy shared across the library."""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GeometryError(ReproError):
    """Raised for degenerate or inconsistent geometric inputs."""


class WorldError(ReproError):
    """Raised when a world/room description is invalid."""


class SensorError(ReproError):
    """Raised when a sensor is configured or sampled incorrectly."""


class PolicyError(ReproError):
    """Raised when an exploration policy is misused."""


class ShapeError(ReproError):
    """Raised on tensor shape mismatches in the numpy NN stack."""


class QuantizationError(ReproError):
    """Raised on invalid quantization parameters or un-calibrated models."""


class DeploymentError(ReproError):
    """Raised when a model violates the GAP8 deployment constraints."""


class MissionError(ReproError):
    """Raised when a mission configuration is inconsistent."""


class SimError(ReproError):
    """Raised on invalid scenarios, campaigns or campaign results."""


class ExecError(ReproError):
    """Raised on invalid job specs, executors or result caches."""


class TransientJobError(ExecError):
    """A job failure worth retrying (flaky I/O, injected chaos, ...).

    Job callables may raise this to signal that the same attempt could
    succeed if repeated; the executor's retry policy treats it -- along
    with :class:`JobTimeout`, :class:`WorkerCrash`, ``OSError`` and
    ``ConnectionError`` -- as *transient*. Every other exception is
    *permanent* and never retried.
    """


class JobTimeout(ExecError):
    """A job exceeded its per-attempt wall-clock budget.

    Raised by the serial watchdog; synthesized by the pool supervisor
    when it kills a worker whose job overran. Classified transient.
    """


class WorkerCrash(ExecError):
    """A pool worker died abruptly (``kill -9``, ``os._exit``, OOM).

    Synthesized by the pool supervisor for the job the dead worker was
    running; raised directly by an injected ``crash`` fault when no
    worker process exists to kill. Classified transient.
    """


class ObsError(ReproError):
    """Raised on missing/corrupt flight traces or failed replay checks."""
