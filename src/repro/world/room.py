"""Rectangular rooms with optional obstacles.

The room exposes a single flattened segment set (walls + obstacle
boundaries) that the :class:`~repro.geometry.raycast.RayCaster` consumes;
that one abstraction feeds the ToF sensors, the camera occlusion test and
the collision checker.

Free-space queries (:meth:`Room.is_free`, :meth:`Room.clearance`) run on
obstacle geometry flattened into numpy arrays at construction time: the
collision checker calls ``is_free`` up to three times per control tick,
and rebuilding obstacle boundary segments per call used to dominate dense
scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import WorldError
from repro.geometry.raycast import RayCaster
from repro.geometry.segments import Segment
from repro.geometry.shapes import AABB, Circle
from repro.geometry.vec import Vec2

ObstacleShape = Union[AABB, Circle]


@dataclass(frozen=True)
class Obstacle:
    """A static obstacle inside the room."""

    shape: ObstacleShape
    name: str = ""

    def segments(self) -> List[Segment]:
        """Boundary segments of the obstacle."""
        return self.shape.boundary_segments()

    def contains(self, p: Vec2) -> bool:
        """True if ``p`` is inside the obstacle."""
        return self.shape.contains(p)


class _SegmentDistanceField:
    """Point-to-segment distances over a fixed segment set, vectorized.

    Evaluates the same arithmetic as
    :meth:`~repro.geometry.segments.Segment.distance_to_point` for every
    segment in one numpy pass, with preallocated scratch buffers. One
    caveat: the final ``np.hypot`` can differ from ``math.hypot`` by
    1 ulp (CPython ships its own corrected algorithm), so a distance
    sitting within ~1e-16 relative of a ``margin`` threshold could
    compare differently than the scalar loop -- everything upstream of
    the hypot is term-for-term identical, and the mission-level
    equivalence suite pins the observable behaviour.
    """

    def __init__(self, segments: Sequence[Segment]):
        self._n = len(segments)
        if self._n == 0:
            return
        self._ax = np.array([s.a.x for s in segments], dtype=np.float64)
        self._ay = np.array([s.a.y for s in segments], dtype=np.float64)
        self._dx = np.array([s.b.x - s.a.x for s in segments], dtype=np.float64)
        self._dy = np.array([s.b.y - s.a.y for s in segments], dtype=np.float64)
        self._len_sq = self._dx * self._dx + self._dy * self._dy
        self._t = np.empty(self._n, dtype=np.float64)
        self._u = np.empty(self._n, dtype=np.float64)
        self._wx = np.empty(self._n, dtype=np.float64)
        self._wy = np.empty(self._n, dtype=np.float64)

    def min_distance(self, p: Vec2) -> float:
        """Distance from ``p`` to the closest segment of the set."""
        if self._n == 0:
            return float("inf")
        return float(np.min(self._distances(p)))

    def any_within(self, p: Vec2, radius: float) -> bool:
        """True if any segment passes within ``radius`` of ``p``."""
        if self._n == 0:
            return False
        return bool(np.any(self._distances(p) < radius))

    def _distances(self, p: Vec2) -> np.ndarray:
        # t = clamp((p - a) . d / |d|^2, 0, 1); dist = |a + t*d - p|
        wx = np.subtract(p.x, self._ax, out=self._wx)
        wy = np.subtract(p.y, self._ay, out=self._wy)
        t = np.multiply(wx, self._dx, out=self._t)
        u = np.multiply(wy, self._dy, out=self._u)
        t += u
        t /= self._len_sq
        np.clip(t, 0.0, 1.0, out=t)
        # closest point (a + t*d) minus p, matching Segment.point_at +
        # distance_to term-for-term (see the class docstring for the
        # one hypot ulp caveat).
        np.multiply(t, self._dx, out=self._u)
        self._u += self._ax
        self._u -= p.x
        np.multiply(t, self._dy, out=self._t)
        self._t += self._ay
        self._t -= p.y
        return np.hypot(self._u, self._t, out=self._u)


class Room:
    """A rectangular room with walls and optional interior obstacles."""

    def __init__(
        self,
        width: float,
        length: float,
        obstacles: Optional[Sequence[Obstacle]] = None,
        accel: str = "auto",
    ):
        """Create a room spanning ``[0, width] x [0, length]`` metres.

        Args:
            width: extent along x, in metres.
            length: extent along y, in metres.
            obstacles: interior obstacles; must lie fully inside the walls.
            accel: ray-caster acceleration mode (``"auto"``, ``"grid"`` or
                ``"none"``), forwarded to :class:`RayCaster`.
        """
        if width <= 0.0 or length <= 0.0:
            raise WorldError(f"non-positive room dimensions {width} x {length}")
        self._bounds = AABB(0.0, 0.0, width, length)
        self._obstacles: List[Obstacle] = list(obstacles or [])
        for obs in self._obstacles:
            self._check_inside(obs)
        self._raycaster = RayCaster(self.all_segments(), accel=accel)
        self._build_query_arrays()

    def _build_query_arrays(self) -> None:
        """Flatten obstacle geometry for the vectorized free-space tests."""
        obstacle_segments: List[Segment] = []
        for obs in self._obstacles:
            obstacle_segments.extend(obs.segments())
        self._obstacle_field = _SegmentDistanceField(obstacle_segments)
        self._all_field = _SegmentDistanceField(
            self._bounds.boundary_segments() + obstacle_segments
        )

    @property
    def bounds(self) -> AABB:
        """The wall rectangle."""
        return self._bounds

    @property
    def width(self) -> float:
        return self._bounds.width

    @property
    def length(self) -> float:
        return self._bounds.height

    @property
    def obstacles(self) -> List[Obstacle]:
        """Interior obstacles (copy)."""
        return list(self._obstacles)

    @property
    def raycaster(self) -> RayCaster:
        """Ray caster over walls + obstacle boundaries."""
        return self._raycaster

    def all_segments(self) -> List[Segment]:
        """Walls plus every obstacle boundary."""
        segs = self._bounds.boundary_segments()
        for obs in self._obstacles:
            segs.extend(obs.segments())
        return segs

    def center(self) -> Vec2:
        """Geometric centre of the room."""
        return self._bounds.center

    def is_free(self, p: Vec2, margin: float = 0.0) -> bool:
        """True if ``p`` is inside the walls and outside every obstacle.

        Args:
            p: the point to test.
            margin: clearance required from walls and obstacle boundaries.
        """
        if not self._bounds.contains(p, margin=margin):
            return False
        for obs in self._obstacles:
            if obs.contains(p):
                return False
        if margin > 0.0 and self._obstacle_field.any_within(p, margin):
            return False
        return True

    def clearance(self, p: Vec2) -> float:
        """Distance from ``p`` to the nearest wall or obstacle boundary.

        Points outside the walls or inside an obstacle report clearance 0.
        """
        if not self.is_free(p):
            return 0.0
        return self._all_field.min_distance(p)

    def _check_inside(self, obs: Obstacle) -> None:
        for seg in obs.segments():
            for endpoint in (seg.a, seg.b):
                if not self._bounds.contains(endpoint):
                    raise WorldError(
                        f"obstacle {obs.name or obs.shape} extends outside the walls"
                    )
