"""Rectangular rooms with optional obstacles.

The room exposes a single flattened segment set (walls + obstacle
boundaries) that the :class:`~repro.geometry.raycast.RayCaster` consumes;
that one abstraction feeds the ToF sensors, the camera occlusion test and
the collision checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.errors import WorldError
from repro.geometry.raycast import RayCaster
from repro.geometry.segments import Segment
from repro.geometry.shapes import AABB, Circle
from repro.geometry.vec import Vec2

ObstacleShape = Union[AABB, Circle]


@dataclass(frozen=True)
class Obstacle:
    """A static obstacle inside the room."""

    shape: ObstacleShape
    name: str = ""

    def segments(self) -> List[Segment]:
        """Boundary segments of the obstacle."""
        return self.shape.boundary_segments()

    def contains(self, p: Vec2) -> bool:
        """True if ``p`` is inside the obstacle."""
        return self.shape.contains(p)


class Room:
    """A rectangular room with walls and optional interior obstacles."""

    def __init__(
        self,
        width: float,
        length: float,
        obstacles: Optional[Sequence[Obstacle]] = None,
    ):
        """Create a room spanning ``[0, width] x [0, length]`` metres.

        Args:
            width: extent along x, in metres.
            length: extent along y, in metres.
            obstacles: interior obstacles; must lie fully inside the walls.
        """
        if width <= 0.0 or length <= 0.0:
            raise WorldError(f"non-positive room dimensions {width} x {length}")
        self._bounds = AABB(0.0, 0.0, width, length)
        self._obstacles: List[Obstacle] = list(obstacles or [])
        for obs in self._obstacles:
            self._check_inside(obs)
        self._raycaster = RayCaster(self.all_segments())

    @property
    def bounds(self) -> AABB:
        """The wall rectangle."""
        return self._bounds

    @property
    def width(self) -> float:
        return self._bounds.width

    @property
    def length(self) -> float:
        return self._bounds.height

    @property
    def obstacles(self) -> List[Obstacle]:
        """Interior obstacles (copy)."""
        return list(self._obstacles)

    @property
    def raycaster(self) -> RayCaster:
        """Ray caster over walls + obstacle boundaries."""
        return self._raycaster

    def all_segments(self) -> List[Segment]:
        """Walls plus every obstacle boundary."""
        segs = self._bounds.boundary_segments()
        for obs in self._obstacles:
            segs.extend(obs.segments())
        return segs

    def center(self) -> Vec2:
        """Geometric centre of the room."""
        return self._bounds.center

    def is_free(self, p: Vec2, margin: float = 0.0) -> bool:
        """True if ``p`` is inside the walls and outside every obstacle.

        Args:
            p: the point to test.
            margin: clearance required from walls and obstacle boundaries.
        """
        if not self._bounds.contains(p, margin=margin):
            return False
        for obs in self._obstacles:
            if obs.contains(p):
                return False
            if margin > 0.0 and any(
                s.distance_to_point(p) < margin for s in obs.segments()
            ):
                return False
        return True

    def clearance(self, p: Vec2) -> float:
        """Distance from ``p`` to the nearest wall or obstacle boundary.

        Points outside the walls or inside an obstacle report clearance 0.
        """
        if not self.is_free(p):
            return 0.0
        return min(s.distance_to_point(p) for s in self.all_segments())

    def _check_inside(self, obs: Obstacle) -> None:
        for seg in obs.segments():
            for endpoint in (seg.a, seg.b):
                if not self._bounds.contains(endpoint):
                    raise WorldError(
                        f"obstacle {obs.name or obs.shape} extends outside the walls"
                    )
