"""Rectangular rooms with optional obstacles.

The room exposes a single flattened segment set (walls + obstacle
boundaries) that the :class:`~repro.geometry.raycast.RayCaster` consumes;
that one abstraction feeds the ToF sensors, the camera occlusion test and
the collision checker.

Free-space queries (:meth:`Room.is_free`, :meth:`Room.clearance`) run on
obstacle geometry flattened into numpy arrays at construction time: the
collision checker calls ``is_free`` up to three times per control tick,
and rebuilding obstacle boundary segments per call used to dominate dense
scenarios.

On top of the flattened arrays, rooms with many segments bucket their
geometry into the same kind of uniform grid the
:class:`~repro.geometry.raycast.RayCaster` walks: a point query then
gathers only the segments/obstacles whose bounding boxes can possibly
matter (the cells covered by the query disk, or expanding cell rings for
the nearest-distance search) instead of scanning every segment. The
gathered subset provably contains every segment that can influence the
answer, and the per-segment arithmetic is the identical elementwise
numpy expression, so grid and brute-force answers are bit-identical --
``accel="none"`` keeps the full-array reference path that the
equivalence tests pin against. This is what keeps ``is_free`` /
``clearance`` O(cell) on generated 1000+-segment worlds
(:mod:`repro.sim.generators`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import WorldError
from repro.geometry.raycast import RayCaster
from repro.geometry.segments import Segment
from repro.geometry.shapes import AABB, Circle
from repro.geometry.vec import Vec2

ObstacleShape = Union[AABB, Circle]

#: Segment count at which ``accel="auto"`` buckets point queries into the
#: uniform grid. Below it the single full-array numpy pass is cheaper
#: than gathering candidate indices.
POINT_GRID_THRESHOLD = 64

#: Obstacle count at which ``accel="auto"`` buckets the per-obstacle
#: ``contains`` scan of :meth:`Room.is_free`.
OBSTACLE_GRID_THRESHOLD = 16


def _shape_bbox(shape: ObstacleShape) -> Tuple[float, float, float, float]:
    """Conservative ``(xmin, ymin, xmax, ymax)`` of an obstacle shape."""
    if isinstance(shape, AABB):
        return (shape.xmin, shape.ymin, shape.xmax, shape.ymax)
    return (
        shape.center.x - shape.radius,
        shape.center.y - shape.radius,
        shape.center.x + shape.radius,
        shape.center.y + shape.radius,
    )


class _BBoxBuckets:
    """Items bucketed by bounding box into a uniform cell grid.

    Supports the two point-query shapes the room needs: gathering every
    item whose bbox can intersect an axis-aligned query box, and walking
    expanding cell rings around a point for nearest-distance searches.
    Candidate sets are conservative supersets (duplicates possible when
    a bbox spans several cells), which is harmless for the ``any``/
    ``min`` reductions they feed.
    """

    __slots__ = ("x0", "y0", "cw", "ch", "ncx", "ncy", "cells", "cell_min")

    def __init__(
        self,
        bxmin: np.ndarray,
        bymin: np.ndarray,
        bxmax: np.ndarray,
        bymax: np.ndarray,
    ):
        n = bxmin.size
        pad = 1e-9
        self.x0 = float(bxmin.min()) - pad
        self.y0 = float(bymin.min()) - pad
        xmax = float(bxmax.max()) + pad
        ymax = float(bymax.max()) + pad
        # ~sqrt(n) cells per axis keeps a handful of items per bucket
        # (same sizing rule as the raycast grid).
        cells = int(min(128, max(4, math.ceil(math.sqrt(n)))))
        self.ncx = cells
        self.ncy = cells
        self.cw = max(xmax - self.x0, 1e-9) / cells
        self.ch = max(ymax - self.y0, 1e-9) / cells
        self.cell_min = min(self.cw, self.ch)
        buckets: List[List[int]] = [[] for _ in range(cells * cells)]
        for i in range(n):
            ix0 = self._ix(float(bxmin[i]))
            ix1 = self._ix(float(bxmax[i]))
            iy0 = self._iy(float(bymin[i]))
            iy1 = self._iy(float(bymax[i]))
            for iy in range(iy0, iy1 + 1):
                row = iy * cells
                for ix in range(ix0, ix1 + 1):
                    buckets[row + ix].append(i)
        self.cells = [np.array(b, dtype=np.intp) for b in buckets]

    def _ix(self, x: float) -> int:
        ix = int((x - self.x0) / self.cw)
        return 0 if ix < 0 else (self.ncx - 1 if ix >= self.ncx else ix)

    def _iy(self, y: float) -> int:
        iy = int((y - self.y0) / self.ch)
        return 0 if iy < 0 else (self.ncy - 1 if iy >= self.ncy else iy)

    def box_candidates(self, xmin: float, ymin: float, xmax: float, ymax: float):
        """Indices of every item whose bbox may intersect the query box."""
        return self.gather_range(
            self._ix(xmin), self._ix(xmax), self._iy(ymin), self._iy(ymax)
        )

    def gather_range(self, ix0: int, ix1: int, iy0: int, iy1: int):
        """Concatenated buckets of the (clamped) cell index range."""
        parts = []
        for iy in range(iy0, iy1 + 1):
            row = iy * self.ncx
            for ix in range(ix0, ix1 + 1):
                cell = self.cells[row + ix]
                if cell.size:
                    parts.append(cell)
        if not parts:
            return None
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def full_cover(self, ix0: int, ix1: int, iy0: int, iy1: int) -> bool:
        """True if the cell range spans the entire grid."""
        return ix0 == 0 and iy0 == 0 and ix1 == self.ncx - 1 and iy1 == self.ncy - 1


@dataclass(frozen=True)
class Obstacle:
    """A static obstacle inside the room."""

    shape: ObstacleShape
    name: str = ""

    def segments(self) -> List[Segment]:
        """Boundary segments of the obstacle."""
        return self.shape.boundary_segments()

    def contains(self, p: Vec2) -> bool:
        """True if ``p`` is inside the obstacle."""
        return self.shape.contains(p)


class _SegmentDistanceField:
    """Point-to-segment distances over a fixed segment set, vectorized.

    Evaluates the same arithmetic as
    :meth:`~repro.geometry.segments.Segment.distance_to_point` for every
    segment in one numpy pass, with preallocated scratch buffers. One
    caveat: the final ``np.hypot`` can differ from ``math.hypot`` by
    1 ulp (CPython ships its own corrected algorithm), so a distance
    sitting within ~1e-16 relative of a ``margin`` threshold could
    compare differently than the scalar loop -- everything upstream of
    the hypot is term-for-term identical, and the mission-level
    equivalence suite pins the observable behaviour.

    With a grid (``grid=True`` and enough segments) the field buckets
    segment bounding boxes into a :class:`_BBoxBuckets` grid and answers
    queries from conservative candidate subsets. The subset arithmetic
    is the same elementwise expression evaluated on gathered arrays --
    numpy elementwise ops are deterministic per lane, so every gathered
    distance equals the corresponding full-array lane exactly, and
    segments the gather skips provably cannot change an ``any(d < r)``
    or ``min(d)`` reduction. Answers are therefore bit-identical to the
    brute path.
    """

    def __init__(
        self, segments: Sequence[Segment], grid: bool = False, force_grid: bool = False
    ):
        self._n = len(segments)
        self._grid: Optional[_BBoxBuckets] = None
        if self._n == 0:
            return
        self._ax = np.array([s.a.x for s in segments], dtype=np.float64)
        self._ay = np.array([s.a.y for s in segments], dtype=np.float64)
        self._dx = np.array([s.b.x - s.a.x for s in segments], dtype=np.float64)
        self._dy = np.array([s.b.y - s.a.y for s in segments], dtype=np.float64)
        self._len_sq = self._dx * self._dx + self._dy * self._dy
        self._t = np.empty(self._n, dtype=np.float64)
        self._u = np.empty(self._n, dtype=np.float64)
        self._wx = np.empty(self._n, dtype=np.float64)
        self._wy = np.empty(self._n, dtype=np.float64)
        if (grid and self._n >= POINT_GRID_THRESHOLD) or force_grid:
            bx = self._ax + self._dx
            by = self._ay + self._dy
            self._grid = _BBoxBuckets(
                np.minimum(self._ax, bx),
                np.minimum(self._ay, by),
                np.maximum(self._ax, bx),
                np.maximum(self._ay, by),
            )

    def min_distance(self, p: Vec2) -> float:
        """Distance from ``p`` to the closest segment of the set."""
        if self._n == 0:
            return float("inf")
        if self._grid is not None:
            return self._min_distance_grid(p)
        return float(np.min(self._distances(p)))

    def any_within(self, p: Vec2, radius: float) -> bool:
        """True if any segment passes within ``radius`` of ``p``."""
        if self._n == 0:
            return False
        grid = self._grid
        if grid is not None:
            # Any segment with dist(p, s) < radius has its closest point
            # inside the query disk, hence its bbox overlaps the disk's
            # bbox, hence it is bucketed in one of these cells.
            idx = grid.box_candidates(
                p.x - radius, p.y - radius, p.x + radius, p.y + radius
            )
            if idx is None:
                return False
            return bool(np.any(self._distances_at(p, idx) < radius))
        return bool(np.any(self._distances(p) < radius))

    def _min_distance_grid(self, p: Vec2) -> float:
        """Doubling-box nearest search over the bucketed cells.

        The cell cover of the query box ``[p - r, p + r]`` contains
        every segment within Euclidean distance ``r`` of ``p``, so a
        candidate minimum ``d <= r`` is the exact global minimum. When
        the nearest gathered segment is farther than ``r``, one final
        gather at radius ``d`` is exact (every segment closer than ``d``
        lies inside that cover). Empty covers double ``r`` until they
        catch geometry or span the whole grid.
        """
        grid = self._grid
        r = grid.cell_min
        while True:
            ix0, ix1 = grid._ix(p.x - r), grid._ix(p.x + r)
            iy0, iy1 = grid._iy(p.y - r), grid._iy(p.y + r)
            idx = grid.gather_range(ix0, ix1, iy0, iy1)
            full = grid.full_cover(ix0, ix1, iy0, iy1)
            if idx is None:
                if full:
                    return math.inf
                r *= 2.0
                continue
            d = float(np.min(self._distances_at(p, idx)))
            if d <= r or full:
                return d
            idx = self._grid.box_candidates(p.x - d, p.y - d, p.x + d, p.y + d)
            return float(np.min(self._distances_at(p, idx)))

    def _distances_at(self, p: Vec2, idx: np.ndarray) -> np.ndarray:
        """:meth:`_distances` restricted to the segments in ``idx``.

        Same elementwise expressions on gathered operands, so each entry
        is bit-identical to the matching full-array lane.
        """
        ax = self._ax[idx]
        ay = self._ay[idx]
        dx = self._dx[idx]
        dy = self._dy[idx]
        t = (p.x - ax) * dx
        t += (p.y - ay) * dy
        t /= self._len_sq[idx]
        np.clip(t, 0.0, 1.0, out=t)
        u = t * dx
        u += ax
        u -= p.x
        t *= dy
        t += ay
        t -= p.y
        return np.hypot(u, t, out=u)

    def _distances(self, p: Vec2) -> np.ndarray:
        # t = clamp((p - a) . d / |d|^2, 0, 1); dist = |a + t*d - p|
        wx = np.subtract(p.x, self._ax, out=self._wx)
        wy = np.subtract(p.y, self._ay, out=self._wy)
        t = np.multiply(wx, self._dx, out=self._t)
        u = np.multiply(wy, self._dy, out=self._u)
        t += u
        t /= self._len_sq
        np.clip(t, 0.0, 1.0, out=t)
        # closest point (a + t*d) minus p, matching Segment.point_at +
        # distance_to term-for-term (see the class docstring for the
        # one hypot ulp caveat).
        np.multiply(t, self._dx, out=self._u)
        self._u += self._ax
        self._u -= p.x
        np.multiply(t, self._dy, out=self._t)
        self._t += self._ay
        self._t -= p.y
        return np.hypot(self._u, self._t, out=self._u)


class Room:
    """A rectangular room with walls and optional interior obstacles."""

    def __init__(
        self,
        width: float,
        length: float,
        obstacles: Optional[Sequence[Obstacle]] = None,
        accel: str = "auto",
    ):
        """Create a room spanning ``[0, width] x [0, length]`` metres.

        Args:
            width: extent along x, in metres.
            length: extent along y, in metres.
            obstacles: interior obstacles; must lie fully inside the walls.
            accel: acceleration mode (``"auto"``, ``"grid"`` or
                ``"none"``), forwarded to :class:`RayCaster` and applied
                to the point-query fields: ``"auto"`` buckets free-space
                queries above :data:`POINT_GRID_THRESHOLD` segments /
                :data:`OBSTACLE_GRID_THRESHOLD` obstacles, ``"none"``
                keeps the full-array reference path. Grid and reference
                answers are bit-identical.
        """
        if width <= 0.0 or length <= 0.0:
            raise WorldError(f"non-positive room dimensions {width} x {length}")
        self._bounds = AABB(0.0, 0.0, width, length)
        self._obstacles: List[Obstacle] = list(obstacles or [])
        for obs in self._obstacles:
            self._check_inside(obs)
        self._raycaster = RayCaster(self.all_segments(), accel=accel)
        self._build_query_arrays(accel)

    def _build_query_arrays(self, accel: str) -> None:
        """Flatten obstacle geometry for the vectorized free-space tests."""
        point_grid = accel != "none"
        force = accel == "grid"
        obstacle_segments: List[Segment] = []
        for obs in self._obstacles:
            obstacle_segments.extend(obs.segments())
        self._obstacle_field = _SegmentDistanceField(
            obstacle_segments, grid=point_grid, force_grid=force
        )
        self._all_field = _SegmentDistanceField(
            self._bounds.boundary_segments() + obstacle_segments,
            grid=point_grid,
            force_grid=force,
        )
        # Bucket obstacles by bounding box so the ``contains`` scan of
        # ``is_free`` checks O(cell) candidates instead of every
        # obstacle. Conservative superset + exact per-obstacle test =
        # the same boolean the full scan produces.
        self._obstacle_index: Optional[_BBoxBuckets] = None
        n_obs = len(self._obstacles)
        if accel == "grid" or (accel == "auto" and n_obs >= OBSTACLE_GRID_THRESHOLD):
            if n_obs:
                boxes = [_shape_bbox(o.shape) for o in self._obstacles]
                self._obstacle_index = _BBoxBuckets(
                    np.array([b[0] for b in boxes]),
                    np.array([b[1] for b in boxes]),
                    np.array([b[2] for b in boxes]),
                    np.array([b[3] for b in boxes]),
                )

    @property
    def bounds(self) -> AABB:
        """The wall rectangle."""
        return self._bounds

    @property
    def width(self) -> float:
        return self._bounds.width

    @property
    def length(self) -> float:
        return self._bounds.height

    @property
    def obstacles(self) -> List[Obstacle]:
        """Interior obstacles (copy)."""
        return list(self._obstacles)

    @property
    def raycaster(self) -> RayCaster:
        """Ray caster over walls + obstacle boundaries."""
        return self._raycaster

    def all_segments(self) -> List[Segment]:
        """Walls plus every obstacle boundary."""
        segs = self._bounds.boundary_segments()
        for obs in self._obstacles:
            segs.extend(obs.segments())
        return segs

    def center(self) -> Vec2:
        """Geometric centre of the room."""
        return self._bounds.center

    def is_free(self, p: Vec2, margin: float = 0.0) -> bool:
        """True if ``p`` is inside the walls and outside every obstacle.

        Args:
            p: the point to test.
            margin: clearance required from walls and obstacle boundaries.
        """
        if not self._bounds.contains(p, margin=margin):
            return False
        index = self._obstacle_index
        if index is None:
            for obs in self._obstacles:
                if obs.contains(p):
                    return False
        else:
            candidates = index.box_candidates(p.x, p.y, p.x, p.y)
            if candidates is not None:
                obstacles = self._obstacles
                for i in candidates:
                    if obstacles[i].contains(p):
                        return False
        if margin > 0.0 and self._obstacle_field.any_within(p, margin):
            return False
        return True

    def is_free_many(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        margin: float = 0.0,
    ) -> np.ndarray:
        """Vectorized :meth:`is_free` over ``N`` points, as a bool array.

        Entry ``i`` equals ``is_free(Vec2(xs[i], ys[i]), margin)``
        exactly. Obstacle-free rooms (the paper room, the empty arena --
        the worlds fleet throughput is measured on) reduce to four
        vectorized wall comparisons with the same ``xmin + margin``
        thresholds the scalar test evaluates; rooms with obstacles fall
        back to the scalar query per point, which keeps the answer
        trivially bit-identical to the serial collision checker.
        """
        x_arr = np.asarray(xs, dtype=np.float64)
        y_arr = np.asarray(ys, dtype=np.float64)
        if not self._obstacles:
            b = self._bounds
            lo_x = b.xmin + margin
            hi_x = b.xmax - margin
            lo_y = b.ymin + margin
            hi_y = b.ymax - margin
            out: np.ndarray = (x_arr >= lo_x) & (x_arr <= hi_x)
            out &= y_arr >= lo_y
            out &= y_arr <= hi_y
            return out
        is_free = self.is_free
        return np.array(
            [
                is_free(Vec2(x, y), margin)
                for x, y in zip(x_arr.tolist(), y_arr.tolist())
            ],
            dtype=bool,
        )

    def clearance(self, p: Vec2) -> float:
        """Distance from ``p`` to the nearest wall or obstacle boundary.

        Points outside the walls or inside an obstacle report clearance 0.
        """
        if not self.is_free(p):
            return 0.0
        return self._all_field.min_distance(p)

    def _check_inside(self, obs: Obstacle) -> None:
        for seg in obs.segments():
            for endpoint in (seg.a, seg.b):
                if not self._bounds.contains(endpoint):
                    raise WorldError(
                        f"obstacle {obs.name or obs.shape} extends outside the walls"
                    )
