"""Scene objects that the detection CNN is trained to find.

The paper places three *bottles* and three *tin cans* in the testing room
(one of each near the centre, four near the corners) and measures the
closed-loop detection rate over 3-minute flights.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.geometry.vec import Vec2


class ObjectClass(enum.Enum):
    """The two object categories the SSD CNN is trained on."""

    BOTTLE = "bottle"
    TIN_CAN = "tin_can"

    @property
    def label_id(self) -> int:
        """Integer label used by the detector (0 = bottle, 1 = tin can)."""
        return _LABEL_IDS[self]

    @staticmethod
    def from_label_id(label_id: int) -> "ObjectClass":
        """Inverse of :attr:`label_id`."""
        for cls, idx in _LABEL_IDS.items():
            if idx == label_id:
                return cls
        raise ValueError(f"unknown label id {label_id}")


_LABEL_IDS = {ObjectClass.BOTTLE: 0, ObjectClass.TIN_CAN: 1}

#: Physical sizes used both for rendering and for the camera projection
#: model: (height m, radius m). A wine bottle is ~30 cm tall, a tin can
#: ~11 cm.
OBJECT_DIMENSIONS = {
    ObjectClass.BOTTLE: (0.30, 0.040),
    ObjectClass.TIN_CAN: (0.11, 0.033),
}


@dataclass
class SceneObject:
    """A physical object placed on the floor of the room.

    Attributes:
        object_class: bottle or tin can.
        position: ground-plane position of the object's axis.
        name: optional identifier used in mission event logs.
    """

    object_class: ObjectClass
    position: Vec2
    name: str = field(default="")

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"{self.object_class.value}@({self.position.x:.2f},{self.position.y:.2f})"

    @property
    def height_m(self) -> float:
        """Physical height of the object."""
        return OBJECT_DIMENSIONS[self.object_class][0]

    @property
    def radius_m(self) -> float:
        """Physical radius of the object."""
        return OBJECT_DIMENSIONS[self.object_class][1]
