"""Standard room and object layouts from the paper's evaluation.

The testing room is 6.5 m x 5.5 m (Sec. III-C), discretized into
0.5 m x 0.5 m cells (143 cells, Sec. IV-B). The closed-loop evaluation
(Sec. IV-C) places three bottles and three tin cans: one of each near the
centre, the remaining four near the corners.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.geometry.shapes import AABB, Circle
from repro.geometry.vec import Vec2
from repro.world.objects import ObjectClass, SceneObject
from repro.world.room import Obstacle, Room

#: Dimensions of the paper's motion-capture testing room, in metres.
PAPER_ROOM_WIDTH_M = 6.5
PAPER_ROOM_LENGTH_M = 5.5


def paper_room() -> Room:
    """The empty 6.5 m x 5.5 m testing room of Sec. III-C."""
    return Room(PAPER_ROOM_WIDTH_M, PAPER_ROOM_LENGTH_M)


def paper_object_layout() -> List[SceneObject]:
    """Six target objects in the paper's arrangement (Sec. IV-C).

    One bottle and one tin can close to the centre, the other four near
    the corners, at ~0.75 m clearance from the walls so the drone can pass
    between object and wall.
    """
    cx = PAPER_ROOM_WIDTH_M / 2.0
    cy = PAPER_ROOM_LENGTH_M / 2.0
    margin = 0.75
    w = PAPER_ROOM_WIDTH_M
    h = PAPER_ROOM_LENGTH_M
    return [
        SceneObject(ObjectClass.BOTTLE, Vec2(cx - 0.4, cy), name="bottle-center"),
        SceneObject(ObjectClass.TIN_CAN, Vec2(cx + 0.4, cy), name="can-center"),
        SceneObject(ObjectClass.BOTTLE, Vec2(margin, margin), name="bottle-sw"),
        SceneObject(ObjectClass.BOTTLE, Vec2(w - margin, h - margin), name="bottle-ne"),
        SceneObject(ObjectClass.TIN_CAN, Vec2(w - margin, margin), name="can-se"),
        SceneObject(ObjectClass.TIN_CAN, Vec2(margin, h - margin), name="can-nw"),
    ]


def cluttered_room(
    n_obstacles: int = 4,
    seed: Optional[int] = None,
    width: float = PAPER_ROOM_WIDTH_M,
    length: float = PAPER_ROOM_LENGTH_M,
) -> Room:
    """A room with random box/cylinder clutter for stress-testing policies.

    Obstacles are kept away from the walls (>= 1 m) and from each other
    (>= 1 m centre distance) so that every layout remains navigable.

    Args:
        n_obstacles: how many obstacles to place.
        seed: RNG seed for a reproducible layout.
        width: room width in metres.
        length: room length in metres.
    """
    rng = np.random.default_rng(seed)
    obstacles: List[Obstacle] = []
    centers: List[Vec2] = []
    attempts = 0
    while len(obstacles) < n_obstacles and attempts < 200:
        attempts += 1
        x = rng.uniform(1.2, width - 1.2)
        y = rng.uniform(1.2, length - 1.2)
        c = Vec2(x, y)
        if any(c.distance_to(other) < 1.0 for other in centers):
            continue
        if rng.uniform() < 0.5:
            r = rng.uniform(0.10, 0.25)
            shape = Circle(c, r)
        else:
            hw = rng.uniform(0.10, 0.30)
            hh = rng.uniform(0.10, 0.30)
            shape = AABB(x - hw, y - hh, x + hw, y + hh)
        obstacles.append(Obstacle(shape, name=f"clutter-{len(obstacles)}"))
        centers.append(c)
    return Room(width, length, obstacles)
