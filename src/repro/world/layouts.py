"""Standard room and object layouts from the paper's evaluation.

The testing room is 6.5 m x 5.5 m (Sec. III-C), discretized into
0.5 m x 0.5 m cells (143 cells, Sec. IV-B). The closed-loop evaluation
(Sec. IV-C) places three bottles and three tin cans: one of each near the
centre, the remaining four near the corners.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import WorldError
from repro.geometry.shapes import AABB, Circle
from repro.geometry.vec import Vec2
from repro.world.objects import ObjectClass, SceneObject
from repro.world.room import Obstacle, Room

#: Dimensions of the paper's motion-capture testing room, in metres.
PAPER_ROOM_WIDTH_M = 6.5
PAPER_ROOM_LENGTH_M = 5.5


def paper_room() -> Room:
    """The empty 6.5 m x 5.5 m testing room of Sec. III-C."""
    return Room(PAPER_ROOM_WIDTH_M, PAPER_ROOM_LENGTH_M)


def paper_object_layout() -> List[SceneObject]:
    """Six target objects in the paper's arrangement (Sec. IV-C).

    One bottle and one tin can close to the centre, the other four near
    the corners, at ~0.75 m clearance from the walls so the drone can pass
    between object and wall.
    """
    cx = PAPER_ROOM_WIDTH_M / 2.0
    cy = PAPER_ROOM_LENGTH_M / 2.0
    margin = 0.75
    w = PAPER_ROOM_WIDTH_M
    h = PAPER_ROOM_LENGTH_M
    return [
        SceneObject(ObjectClass.BOTTLE, Vec2(cx - 0.4, cy), name="bottle-center"),
        SceneObject(ObjectClass.TIN_CAN, Vec2(cx + 0.4, cy), name="can-center"),
        SceneObject(ObjectClass.BOTTLE, Vec2(margin, margin), name="bottle-sw"),
        SceneObject(ObjectClass.BOTTLE, Vec2(w - margin, h - margin), name="bottle-ne"),
        SceneObject(ObjectClass.TIN_CAN, Vec2(w - margin, margin), name="can-se"),
        SceneObject(ObjectClass.TIN_CAN, Vec2(margin, h - margin), name="can-nw"),
    ]


def empty_arena_room(width: float = 12.0, length: float = 9.0) -> Room:
    """A large empty arena, stressing coverage at scale.

    Roughly 3x the paper room's floor area: policies that rely on wall
    contact (wall-following, spiral) degrade here while the pseudo-random
    policy keeps exploring, making it a useful contrast scenario.
    """
    return Room(width, length)


#: Thickness of the interior partition walls, metres.
PARTITION_THICKNESS_M = 0.15


def door_wall_obstacles(
    axis: str,
    position: float,
    start: float,
    end: float,
    door_start: float,
    door_width: float,
    thickness: float = PARTITION_THICKNESS_M,
    names: Optional[Tuple[str, str]] = None,
    min_piece: float = 1e-9,
) -> List[Obstacle]:
    """A straight partition wall with a doorway gap, as box obstacles.

    Shared by the fixed apartment preset and the procedural generators
    (:mod:`repro.sim.generators`): one wall line with a door cut out of
    it is the building block of every multi-room layout.

    Args:
        axis: ``"x"`` for a wall at ``x = position`` running along y,
            ``"y"`` for a wall at ``y = position`` running along x.
        position: wall centre line coordinate on ``axis``.
        start: wall span start along the perpendicular axis.
        end: wall span end along the perpendicular axis.
        door_start: doorway start along the span.
        door_width: doorway width; the gap is
            ``[door_start, door_start + door_width]``.
        thickness: wall thickness, metres.
        names: optional names for the (before-door, after-door) pieces.
        min_piece: pieces shorter than this are dropped (a door flush
            with the span end produces no sliver wall).

    Returns:
        Zero, one or two :class:`~repro.world.room.Obstacle` boxes.

    Raises:
        WorldError: for an unknown ``axis``.
    """
    if axis not in ("x", "y"):
        raise WorldError(f"unknown wall axis {axis!r}")
    lo_name, hi_name = names if names is not None else ("wall-a", "wall-b")
    door_end = door_start + door_width
    pieces: List[Obstacle] = []
    if door_start - start > min_piece:
        if axis == "x":
            box = AABB(position - thickness / 2.0, start, position + thickness / 2.0, door_start)
        else:
            box = AABB(start, position - thickness / 2.0, door_start, position + thickness / 2.0)
        pieces.append(Obstacle(box, name=lo_name))
    if end - door_end > min_piece:
        if axis == "x":
            box = AABB(position - thickness / 2.0, door_end, position + thickness / 2.0, end)
        else:
            box = AABB(door_end, position - thickness / 2.0, end, position + thickness / 2.0)
        pieces.append(Obstacle(box, name=hi_name))
    return pieces


def corridor_maze_room(width: float = 9.0, length: float = 7.0) -> Room:
    """An S-shaped corridor maze built from two interior partition walls.

    One partition grows from the south wall, the next from the north
    wall, leaving ~2 m gaps, so the drone must snake through three
    corridor legs to cover the floor.
    """
    t = PARTITION_THICKNESS_M
    x1 = width / 3.0
    x2 = 2.0 * width / 3.0
    gap = 2.0
    walls = [
        Obstacle(AABB(x1 - t / 2.0, 0.0, x1 + t / 2.0, length - gap), name="maze-south"),
        Obstacle(AABB(x2 - t / 2.0, gap, x2 + t / 2.0, length), name="maze-north"),
    ]
    return Room(width, length, walls)


def apartment_room(width: float = 10.0, length: float = 8.0) -> Room:
    """A multi-room apartment: two bedrooms, a hallway and an open area.

    A vertical partition splits the flat in half with a central doorway;
    a horizontal partition splits the left half into two rooms connected
    by a second doorway. Every room stays reachable through >= 1.2 m
    doors, so all four policies can (eventually) visit every cell.
    """
    x_split = width / 2.0
    y_split = length / 2.0
    door = 1.2
    door_y = y_split - door / 2.0
    door_x = x_split / 2.0 - door / 2.0
    # Vertical partition with a central doorway, then a horizontal
    # partition across the left half with a doorway near the centre.
    walls = door_wall_obstacles(
        "x", x_split, 0.0, length, door_y, door,
        names=("partition-south", "partition-north"),
    )
    walls += door_wall_obstacles(
        "y", y_split, 0.0, x_split - PARTITION_THICKNESS_M / 2.0, door_x, door,
        names=("partition-west", "partition-east"),
    )
    return Room(width, length, walls)


def scattered_object_layout(
    room: Room,
    n_objects: int = 6,
    seed: int = 0,
    margin: float = 0.6,
    min_spacing: float = 0.8,
) -> List[SceneObject]:
    """Deterministically scatter objects over the free space of ``room``.

    Alternates bottles and tin cans (like the paper's 3+3 layout),
    rejecting positions inside or too close to obstacles and positions
    crowding an already-placed object.

    Args:
        room: the environment to populate.
        n_objects: how many objects to place.
        seed: RNG seed; the same seed always yields the same layout.
        margin: clearance from walls and obstacles, metres.
        min_spacing: minimum centre distance between objects, metres.

    Raises:
        WorldError: if the attempt budget runs out before ``n_objects``
            fit -- a silently smaller object set would skew every
            detection-rate denominator computed over the layout.
    """
    rng = np.random.default_rng(seed)
    classes = (ObjectClass.BOTTLE, ObjectClass.TIN_CAN)
    objects: List[SceneObject] = []
    attempts = 0
    while len(objects) < n_objects and attempts < 1000:
        attempts += 1
        p = Vec2(
            rng.uniform(margin, room.width - margin),
            rng.uniform(margin, room.length - margin),
        )
        if not room.is_free(p, margin=margin):
            continue
        if any(p.distance_to(o.position) < min_spacing for o in objects):
            continue
        cls = classes[len(objects) % 2]
        objects.append(SceneObject(cls, p, name=f"{cls.value}-{len(objects)}"))
    if len(objects) < n_objects:
        raise WorldError(
            f"could only place {len(objects)}/{n_objects} objects in the "
            f"{room.width:g} x {room.length:g} m room (margin {margin:g}, "
            f"spacing {min_spacing:g}); relax the constraints"
        )
    return objects


def cluttered_room(
    n_obstacles: int = 4,
    seed: Optional[int] = None,
    width: float = PAPER_ROOM_WIDTH_M,
    length: float = PAPER_ROOM_LENGTH_M,
) -> Room:
    """A room with random box/cylinder clutter for stress-testing policies.

    Obstacles are kept away from the walls (>= 1 m) and from each other
    (>= 1 m centre distance) so that every layout remains navigable.

    Args:
        n_obstacles: how many obstacles to place.
        seed: RNG seed for a reproducible layout.
        width: room width in metres.
        length: room length in metres.
    """
    rng = np.random.default_rng(seed)
    obstacles: List[Obstacle] = []
    centers: List[Vec2] = []
    attempts = 0
    while len(obstacles) < n_obstacles and attempts < 200:
        attempts += 1
        x = rng.uniform(1.2, width - 1.2)
        y = rng.uniform(1.2, length - 1.2)
        c = Vec2(x, y)
        if any(c.distance_to(other) < 1.0 for other in centers):
            continue
        if rng.uniform() < 0.5:
            r = rng.uniform(0.10, 0.25)
            shape = Circle(c, r)
        else:
            hw = rng.uniform(0.10, 0.30)
            hh = rng.uniform(0.10, 0.30)
            shape = AABB(x - hw, y - hh, x + hw, y + hh)
        obstacles.append(Obstacle(shape, name=f"clutter-{len(obstacles)}"))
        centers.append(c)
    return Room(width, length, obstacles)
