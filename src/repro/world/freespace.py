"""Free-space rasters, flood fill, and reachable-cell masks.

The scenario generators (:mod:`repro.sim.generators`) introduced a
vectorized free-space raster plus a frontier flood fill to prove that
every generated world is flyable. The same primitives answer a second
question the exploration metrics need: *which cells of a coverage grid
can the drone actually reach from its start pose?* A coverage metric
that divides by ``nx * ny`` counts cells inside shelves, walls and
sealed pockets against the drone, so generated mazes and warehouses can
never report 1.0 and numbers are not comparable across scenarios. This
module therefore lives in :mod:`repro.world`, below both consumers:

- :func:`free_space_mask` -- conservative margin-aware raster of a room,
- :func:`flood_fill` -- the 4-connected component of a seed cell,
- :func:`reachable_free_mask` -- both steps fused, seeded at a pose,
- :func:`reachable_cell_mask` -- the reachable set projected onto a
  coverage grid (what :class:`~repro.mapping.occupancy.OccupancyGrid`
  normalizes by).

``free_space_mask`` and ``flood_fill`` moved here verbatim from
``repro.sim.generators`` (which re-exports them): the rasters, and
therefore every generated world's ``Scenario.content_hash()``, are
bit-identical to the pre-extraction ones.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.errors import SimError
from repro.geometry.shapes import AABB, Circle
from repro.geometry.vec import Vec2
from repro.world.room import Room

#: Clearance (metres) the validity raster requires from walls and
#: obstacles -- matches the start-pose margin of ``Scenario.validate``
#: and exceeds the Crazyflie collision radius (0.07 m).
VALIDATION_MARGIN_M = 0.1

#: Finest raster edge used when projecting reachability onto a coverage
#: grid; at or below the generators' wall thickness (0.1 m) so thin
#: partition walls always block at least one raster row/column.
FINE_RESOLUTION_M = 0.1


def free_space_mask(
    room: Room, resolution: float, margin: float = VALIDATION_MARGIN_M
) -> np.ndarray:
    """Conservative free-space raster of ``room`` at ``resolution``.

    A cell is marked free only when its centre keeps at least ``margin``
    clearance from the walls and every obstacle (axis-aligned boxes are
    inflated by ``margin`` on each side, a conservative superset of the
    true Euclidean margin band). Used by the generator validity checks,
    object placement and coverage normalization.

    Args:
        room: the world to rasterize.
        resolution: approximate cell edge, metres.
        margin: required clearance, metres.

    Returns:
        A ``(ny, nx)`` boolean array; entry ``[iy, ix]`` covers the cell
        centred at ``((ix + 0.5) * width / nx, (iy + 0.5) * length / ny)``.
    """
    nx = max(1, int(math.ceil(room.width / resolution)))
    ny = max(1, int(math.ceil(room.length / resolution)))
    xs = (np.arange(nx) + 0.5) * (room.width / nx)
    ys = (np.arange(ny) + 0.5) * (room.length / ny)
    free = np.ones((ny, nx), dtype=bool)
    free &= ((xs >= margin) & (xs <= room.width - margin))[None, :]
    free &= (((ys >= margin) & (ys <= room.length - margin))[:, None])
    for obs in room.obstacles:
        shape = obs.shape
        if isinstance(shape, AABB):
            xm = (xs >= shape.xmin - margin) & (xs <= shape.xmax + margin)
            ym = (ys >= shape.ymin - margin) & (ys <= shape.ymax + margin)
            if xm.any() and ym.any():
                free[np.ix_(ym, xm)] = False
        elif isinstance(shape, Circle):
            r = shape.radius + margin
            xm = (xs >= shape.center.x - r) & (xs <= shape.center.x + r)
            ym = (ys >= shape.center.y - r) & (ys <= shape.center.y + r)
            if xm.any() and ym.any():
                dx = xs[xm] - shape.center.x
                dy = ys[ym] - shape.center.y
                free[np.ix_(ym, xm)] &= (
                    dy[:, None] ** 2 + dx[None, :] ** 2 > r * r
                )
        else:  # pragma: no cover - no other shapes exist
            raise SimError(f"cannot rasterize shape {type(shape).__name__}")
    return free


def flood_fill(free: np.ndarray, start: Tuple[int, int]) -> np.ndarray:
    """Cells 4-connected to ``start`` through the free mask.

    Args:
        free: boolean free-space raster (``(ny, nx)``).
        start: seed cell as ``(iy, ix)``.

    Returns:
        A boolean mask of the reachable component (all-``False`` when
        the seed cell itself is blocked).
    """
    ny, nx = free.shape
    flat = free.ravel()
    reach = np.zeros(ny * nx, dtype=bool)
    s = start[0] * nx + start[1]
    if not flat[s]:
        return reach.reshape(ny, nx)
    reach[s] = True
    frontier = np.array([s], dtype=np.intp)
    while frontier.size:
        steps = [
            frontier[frontier % nx != 0] - 1,
            frontier[frontier % nx != nx - 1] + 1,
            frontier[frontier >= nx] - nx,
            frontier[frontier < (ny - 1) * nx] + nx,
        ]
        cand = np.concatenate(steps)
        cand = cand[flat[cand] & ~reach[cand]]
        if not cand.size:
            break
        cand = np.unique(cand)
        reach[cand] = True
        frontier = cand
    return reach.reshape(ny, nx)


def reachable_free_mask(
    room: Room,
    start: Vec2,
    resolution: float,
    margin: float = VALIDATION_MARGIN_M,
) -> np.ndarray:
    """Free-space raster restricted to the component reachable from ``start``.

    The flood fill is seeded at the raster cell containing ``start``;
    when that cell is blocked (a start pose hugging a wall closer than
    ``margin``), the nearest free cell seeds instead, so a valid pose
    never reports an empty reachable set by quantization accident.

    Args:
        room: the world to rasterize.
        start: the pose reachability is measured from.
        resolution: approximate raster cell edge, metres.
        margin: required clearance, metres.

    Returns:
        A ``(ny, nx)`` boolean mask (same raster geometry as
        :func:`free_space_mask`); all-``False`` when the room has no
        free cell at all.
    """
    free = free_space_mask(room, resolution, margin)
    ny, nx = free.shape
    ex = room.width / nx
    ey = room.length / ny
    iy = min(ny - 1, max(0, int(start.y / ey)))
    ix = min(nx - 1, max(0, int(start.x / ex)))
    if not free[iy, ix]:
        cells = np.argwhere(free)
        if cells.size == 0:
            return free  # nothing is free: empty reachable set
        cx = (cells[:, 1] + 0.5) * ex
        cy = (cells[:, 0] + 0.5) * ey
        nearest = int(np.argmin((cx - start.x) ** 2 + (cy - start.y) ** 2))
        iy, ix = int(cells[nearest, 0]), int(cells[nearest, 1])
    return flood_fill(free, (iy, ix))


def reachable_cell_mask(
    room: Room,
    start: Vec2,
    cell_size: float,
    shape: Tuple[int, int],
    margin: float = VALIDATION_MARGIN_M,
    resolution: Optional[float] = None,
) -> np.ndarray:
    """Which cells of a coverage grid are reachable from ``start``.

    The room is rasterized well below ``cell_size`` (so thin walls and
    narrow passages are resolved), flood-filled from ``start``, and the
    reachable fine cells are projected up: a coverage cell counts as
    reachable when *any* reachable fine-cell centre falls inside it.
    Coverage cells wholly inside obstacles, inside sealed pockets, or
    past the room's walls (the ``ceil`` overshoot of a grid whose pitch
    does not divide the room) come back ``False``.

    The ``margin`` is deliberately conservative (it exceeds the drone's
    0.07 m collision radius): a cell whose only free space lies inside
    the margin band is excluded from the denominator, and a metric that
    also excludes such cells from its numerator stays ``<= 1`` -- but
    may then credit slightly less than a wall-hugging flight earned, so
    ``coverage >= coverage_raw`` is *not* an invariant, merely typical.

    Args:
        room: the world the coverage grid discretizes.
        start: the drone's start pose.
        cell_size: coverage-grid cell edge, metres.
        shape: coverage-grid shape ``(ny, nx)``; cell ``[iy, ix]``
            spans ``[ix * cell_size, (ix + 1) * cell_size) x [iy *
            cell_size, (iy + 1) * cell_size)``.
        margin: clearance the fine raster requires, metres.
        resolution: fine raster edge override; defaults to
            ``min(FINE_RESOLUTION_M, cell_size / 2)``.

    Returns:
        A ``(ny, nx)`` boolean mask over the coverage grid. When the
        room rasterizes to no free space at all (degenerate worlds),
        every cell is reported reachable so a downstream
        ``visited / reachable`` metric degrades to the raw fraction
        instead of dividing by zero.
    """
    ny, nx = shape
    if resolution is None:
        resolution = min(FINE_RESOLUTION_M, cell_size / 2.0)
    reach_fine = reachable_free_mask(room, start, resolution, margin)
    if not reach_fine.any():
        return np.ones((ny, nx), dtype=bool)
    fny, fnx = reach_fine.shape
    ex = room.width / fnx
    ey = room.length / fny
    ys, xs = np.nonzero(reach_fine)
    gx = np.minimum(nx - 1, ((xs + 0.5) * ex / cell_size).astype(np.intp))
    gy = np.minimum(ny - 1, ((ys + 0.5) * ey / cell_size).astype(np.intp))
    mask = np.zeros((ny, nx), dtype=bool)
    mask[gy, gx] = True
    return mask
