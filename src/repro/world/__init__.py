"""World model: rooms, obstacles and the objects placed for search missions."""

from repro.world.objects import ObjectClass, SceneObject
from repro.world.room import Obstacle, Room
from repro.world.layouts import (
    PAPER_ROOM_LENGTH_M,
    PAPER_ROOM_WIDTH_M,
    cluttered_room,
    paper_object_layout,
    paper_room,
)

__all__ = [
    "ObjectClass",
    "SceneObject",
    "Obstacle",
    "Room",
    "PAPER_ROOM_LENGTH_M",
    "PAPER_ROOM_WIDTH_M",
    "paper_room",
    "paper_object_layout",
    "cluttered_room",
]
