"""World model: rooms, obstacles and the objects placed for search missions."""

from repro.world.objects import ObjectClass, SceneObject
from repro.world.room import Obstacle, Room
from repro.world.freespace import (
    FINE_RESOLUTION_M,
    VALIDATION_MARGIN_M,
    flood_fill,
    free_space_mask,
    reachable_cell_mask,
    reachable_free_mask,
)
from repro.world.layouts import (
    PAPER_ROOM_LENGTH_M,
    PAPER_ROOM_WIDTH_M,
    apartment_room,
    cluttered_room,
    corridor_maze_room,
    empty_arena_room,
    paper_object_layout,
    paper_room,
    scattered_object_layout,
)

__all__ = [
    "ObjectClass",
    "SceneObject",
    "Obstacle",
    "Room",
    "FINE_RESOLUTION_M",
    "VALIDATION_MARGIN_M",
    "flood_fill",
    "free_space_mask",
    "reachable_cell_mask",
    "reachable_free_mask",
    "PAPER_ROOM_LENGTH_M",
    "PAPER_ROOM_WIDTH_M",
    "paper_room",
    "paper_object_layout",
    "apartment_room",
    "cluttered_room",
    "corridor_maze_room",
    "empty_arena_room",
    "scattered_object_layout",
]
