"""SeedSequence plumbing shared by the missions and the campaign engine.

Historically each consumer derived its RNG with ad-hoc arithmetic
(``seed + run_idx`` for runs, ``seed + 10_000`` for the detector), which
gives no independence guarantee: two streams seeded ``k`` apart can be
correlated, and parallel runs could collide with a neighbouring run's
detector stream. Everything now flows through
:class:`numpy.random.SeedSequence`, whose ``spawn`` mechanism produces
provably independent child streams, so a mission executed serially and
the same mission executed inside a worker process draw bit-identical
random numbers.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

#: Anything a mission accepts as its seed: ``None`` (nondeterministic),
#: an integer, or an already-derived :class:`~numpy.random.SeedSequence`.
SeedLike = Union[None, int, np.random.SeedSequence]

#: Seed of the fallback initializer RNG that modules construct when the
#: caller passes ``rng=None`` (layer weight init, placeholder policy
#: state). One named constant instead of ``default_rng(0)`` literals
#: scattered per call site: the value is part of the reproducibility
#: contract -- changing it re-initializes every default-constructed
#: network -- so it must have exactly one home. Enforced by lint rule
#: ``RPR101`` (magic literal seeds are findings).
DEFAULT_INIT_SEED: int = 0


def as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Wrap ``seed`` into a :class:`~numpy.random.SeedSequence`.

    ``None`` keeps numpy's behaviour of gathering fresh OS entropy, so
    unseeded runs stay nondeterministic exactly as before.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def spawn_streams(seed: SeedLike, n: int) -> List[np.random.SeedSequence]:
    """``n`` independent child streams derived from ``seed``.

    Children are constructed from explicit spawn keys rather than via
    ``seed.spawn(n)``, which would advance the caller's
    ``n_children_spawned`` state: deriving streams from the same
    ``SeedSequence`` instance twice must yield the same children, or
    re-running a mission with a shared sequence silently diverges.
    """
    root = as_seed_sequence(seed)
    return [
        np.random.SeedSequence(
            entropy=root.entropy,
            spawn_key=root.spawn_key + (i,),
            pool_size=root.pool_size,
        )
        for i in range(n)
    ]


def seed_provenance(
    seq: np.random.SeedSequence,
) -> Tuple[Optional[int], Tuple[int, ...]]:
    """The ``(entropy, spawn_key)`` pair that reconstructs ``seq``.

    The execution layer persists a job's randomness as exactly this
    pair (:class:`repro.exec.JobSpec` hashes it, the mission payload
    round-trips through it): ``SeedSequence(entropy,
    spawn_key=spawn_key)`` rebuilds a stream drawing the same numbers
    in any process.

    Example:
        >>> import numpy as np
        >>> from repro.seeding import seed_provenance
        >>> seed_provenance(np.random.SeedSequence(7, spawn_key=(3,)))
        (7, (3,))
    """
    entropy = seq.entropy
    if isinstance(entropy, (list, tuple)):  # pragma: no cover - exotic seeds
        entropy = entropy[0] if len(entropy) == 1 else None
    return entropy, tuple(int(k) for k in seq.spawn_key)
