"""Portable graymap (PGM) export for occupancy heatmaps.

PGM is a trivial uncompressed image format every viewer understands; it
lets the examples dump Fig. 3-style heatmaps without any imaging
dependency.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.mapping.occupancy import OccupancyGrid

PathLike = Union[str, "os.PathLike[str]"]


def heatmap_to_pgm(
    grid: OccupancyGrid, cap_seconds: float = 18.0, cell_px: int = 16
) -> np.ndarray:
    """Render an occupancy grid to a grayscale uint8 image.

    Unvisited cells are black (like the paper's Fig. 3); occupancy time
    maps linearly onto 64..255.

    Args:
        grid: the occupancy grid to render.
        cap_seconds: saturation point of the color scale.
        cell_px: rendered pixels per grid cell.

    Returns:
        ``(ny * cell_px, nx * cell_px)`` uint8 array, north-up.
    """
    capped = grid.heatmap(cap_seconds)
    visited = grid.visited_mask
    levels = np.where(
        visited, 64.0 + 191.0 * capped / cap_seconds, 0.0
    ).astype(np.uint8)
    # Flip vertically: row 0 of the grid is the room's south edge.
    levels = levels[::-1]
    return np.kron(levels, np.ones((cell_px, cell_px), dtype=np.uint8))


def write_pgm(image: np.ndarray, path: PathLike) -> None:
    """Write a 2-D uint8 array as a binary PGM (P5) file."""
    if image.ndim != 2 or image.dtype != np.uint8:
        raise ValueError("write_pgm expects a 2-D uint8 array")
    h, w = image.shape
    with open(path, "wb") as f:
        f.write(f"P5\n{w} {h}\n255\n".encode("ascii"))
        f.write(image.tobytes())
