"""SVG rendering of flight trajectories in a room.

Produces a self-contained SVG showing the walls, obstacles, placed
objects, the flown path (colored by time), and detection events -- the
kind of figure the paper's supplementary video summarizes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.geometry.shapes import AABB, Circle
from repro.mapping.mocap import TrackedSample
from repro.mission.closed_loop import DetectionEvent
from repro.world.objects import ObjectClass, SceneObject
from repro.world.room import Room

_SCALE = 80.0  # pixels per metre
_MARGIN = 20.0


def _px(x: float) -> float:
    return _MARGIN + x * _SCALE


def _py(y: float, room: Room) -> float:
    # SVG y grows downward; room y grows northward.
    return _MARGIN + (room.length - y) * _SCALE


def trajectory_to_svg(
    room: Room,
    samples: Sequence[TrackedSample],
    objects: Sequence[SceneObject] = (),
    events: Sequence[DetectionEvent] = (),
    title: str = "",
) -> str:
    """Render a flight into an SVG document string.

    Args:
        room: the flown room (walls + obstacles drawn).
        samples: mocap samples of the trajectory.
        objects: target objects to mark (bottles green, cans red).
        events: detection events; drawn as rings around the objects.
        title: optional caption.
    """
    width = room.width * _SCALE + 2 * _MARGIN
    height = room.length * _SCALE + 2 * _MARGIN
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        f'<rect x="0" y="0" width="{width:.0f}" height="{height:.0f}" fill="#ffffff"/>',
        f'<rect x="{_px(0):.1f}" y="{_py(room.length, room):.1f}" '
        f'width="{room.width * _SCALE:.1f}" height="{room.length * _SCALE:.1f}" '
        'fill="#f8f8f4" stroke="#222" stroke-width="3"/>',
    ]
    for obstacle in room.obstacles:
        shape = obstacle.shape
        if isinstance(shape, AABB):
            parts.append(
                f'<rect x="{_px(shape.xmin):.1f}" y="{_py(shape.ymax, room):.1f}" '
                f'width="{shape.width * _SCALE:.1f}" height="{shape.height * _SCALE:.1f}" '
                'fill="#c0c0c0" stroke="#555"/>'
            )
        elif isinstance(shape, Circle):
            parts.append(
                f'<circle cx="{_px(shape.center.x):.1f}" cy="{_py(shape.center.y, room):.1f}" '
                f'r="{shape.radius * _SCALE:.1f}" fill="#c0c0c0" stroke="#555"/>'
            )
    if samples:
        t_end = max(samples[-1].time, 1e-9)
        points = []
        for s in samples:
            points.append(f"{_px(s.position.x):.1f},{_py(s.position.y, room):.1f}")
        # Split into a handful of segments colored from blue (early) to
        # orange (late) so the time direction is readable.
        n_seg = 8
        seg_len = max(2, len(points) // n_seg)
        for i in range(0, len(points) - 1, seg_len):
            frac = i / max(len(points) - 1, 1)
            r = int(40 + 215 * frac)
            b = int(220 - 180 * frac)
            chunk = points[i : i + seg_len + 1]
            parts.append(
                f'<polyline points="{" ".join(chunk)}" fill="none" '
                f'stroke="rgb({r},120,{b})" stroke-width="2" stroke-opacity="0.85"/>'
            )
        start = samples[0].position
        parts.append(
            f'<circle cx="{_px(start.x):.1f}" cy="{_py(start.y, room):.1f}" r="6" '
            'fill="#1060d0"/>'
        )
    detected_names = {e.object_name for e in events}
    for obj in objects:
        color = "#2a9d2a" if obj.object_class is ObjectClass.BOTTLE else "#d03030"
        cx, cy = _px(obj.position.x), _py(obj.position.y, room)
        parts.append(f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="7" fill="{color}"/>')
        if obj.name in detected_names:
            parts.append(
                f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="12" fill="none" '
                f'stroke="{color}" stroke-width="2.5"/>'
            )
    if title:
        parts.append(
            f'<text x="{_MARGIN:.0f}" y="{height - 4:.0f}" '
            f'font-family="monospace" font-size="13">{title}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)
