"""SVG rendering of flight trajectories in a room.

Produces a self-contained SVG showing the walls, obstacles, placed
objects, the flown path (colored by time), and detection events -- the
kind of figure the paper's supplementary video summarizes. Also hosts
the small standalone renderers the campaign report is assembled from:
coverage sparklines (:func:`sparkline_to_svg`) and visited-cell
heatmaps (:func:`grid_heatmap_to_svg`).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.geometry.shapes import AABB, Circle
from repro.mapping.mocap import TrackedSample
from repro.mission.closed_loop import DetectionEvent
from repro.world.objects import ObjectClass, SceneObject
from repro.world.room import Room

_SCALE = 80.0  # pixels per metre
_MARGIN = 20.0


def _px(x: float) -> float:
    return _MARGIN + x * _SCALE


def _py(y: float, room: Room) -> float:
    # SVG y grows downward; room y grows northward.
    return _MARGIN + (room.length - y) * _SCALE


def trajectory_to_svg(
    room: Room,
    samples: Sequence[TrackedSample],
    objects: Sequence[SceneObject] = (),
    events: Sequence[DetectionEvent] = (),
    title: str = "",
) -> str:
    """Render a flight into an SVG document string.

    Args:
        room: the flown room (walls + obstacles drawn).
        samples: mocap samples of the trajectory.
        objects: target objects to mark (bottles green, cans red).
        events: detection events; drawn as rings around the objects.
        title: optional caption.
    """
    width = room.width * _SCALE + 2 * _MARGIN
    height = room.length * _SCALE + 2 * _MARGIN
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        f'<rect x="0" y="0" width="{width:.0f}" height="{height:.0f}" fill="#ffffff"/>',
        f'<rect x="{_px(0):.1f}" y="{_py(room.length, room):.1f}" '
        f'width="{room.width * _SCALE:.1f}" height="{room.length * _SCALE:.1f}" '
        'fill="#f8f8f4" stroke="#222" stroke-width="3"/>',
    ]
    for obstacle in room.obstacles:
        shape = obstacle.shape
        if isinstance(shape, AABB):
            parts.append(
                f'<rect x="{_px(shape.xmin):.1f}" y="{_py(shape.ymax, room):.1f}" '
                f'width="{shape.width * _SCALE:.1f}" height="{shape.height * _SCALE:.1f}" '
                'fill="#c0c0c0" stroke="#555"/>'
            )
        elif isinstance(shape, Circle):
            parts.append(
                f'<circle cx="{_px(shape.center.x):.1f}" cy="{_py(shape.center.y, room):.1f}" '
                f'r="{shape.radius * _SCALE:.1f}" fill="#c0c0c0" stroke="#555"/>'
            )
    if samples:
        t_end = max(samples[-1].time, 1e-9)
        points = []
        for s in samples:
            points.append(f"{_px(s.position.x):.1f},{_py(s.position.y, room):.1f}")
        # Split into a handful of segments colored from blue (early) to
        # orange (late) so the time direction is readable.
        n_seg = 8
        seg_len = max(2, len(points) // n_seg)
        for i in range(0, len(points) - 1, seg_len):
            frac = i / max(len(points) - 1, 1)
            r = int(40 + 215 * frac)
            b = int(220 - 180 * frac)
            chunk = points[i : i + seg_len + 1]
            parts.append(
                f'<polyline points="{" ".join(chunk)}" fill="none" '
                f'stroke="rgb({r},120,{b})" stroke-width="2" stroke-opacity="0.85"/>'
            )
        start = samples[0].position
        parts.append(
            f'<circle cx="{_px(start.x):.1f}" cy="{_py(start.y, room):.1f}" r="6" '
            'fill="#1060d0"/>'
        )
    detected_names = {e.object_name for e in events}
    for obj in objects:
        color = "#2a9d2a" if obj.object_class is ObjectClass.BOTTLE else "#d03030"
        cx, cy = _px(obj.position.x), _py(obj.position.y, room)
        parts.append(f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="7" fill="{color}"/>')
        if obj.name in detected_names:
            parts.append(
                f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="12" fill="none" '
                f'stroke="{color}" stroke-width="2.5"/>'
            )
    if title:
        parts.append(
            f'<text x="{_MARGIN:.0f}" y="{height - 4:.0f}" '
            f'font-family="monospace" font-size="13">{title}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def sparkline_to_svg(
    times: Sequence[float],
    values: Sequence[float],
    width: float = 240.0,
    height: float = 48.0,
    y_max: Optional[float] = None,
    stroke: str = "#1060d0",
) -> str:
    """Render a time series as a small inline sparkline SVG.

    Used by the campaign report for per-mission coverage-over-time
    curves. The y axis spans ``[0, y_max]`` (default: the series
    maximum, or 1.0 for an all-zero series) and the x axis spans
    ``[0, max(times)]``; a 2 px padding keeps the stroke inside the
    viewBox.

    Args:
        times: sample times, ascending.
        values: one value per time.
        width: SVG width in pixels.
        height: SVG height in pixels.
        y_max: fixed y-axis ceiling (e.g. 1.0 for fractions); ``None``
            auto-scales to the data.
        stroke: polyline color.
    """
    if len(times) != len(values):
        raise ValueError(
            f"times and values must align, got {len(times)} vs {len(values)}"
        )
    pad = 2.0
    top = y_max if y_max is not None else max(list(values) or [0.0]) or 1.0
    t_end = max(list(times) or [0.0]) or 1.0
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        f'<rect x="0" y="0" width="{width:.0f}" height="{height:.0f}" '
        'fill="#fbfbf8" stroke="#ddd"/>',
    ]
    if times:
        points = " ".join(
            f"{pad + (t / t_end) * (width - 2 * pad):.1f},"
            f"{height - pad - (min(v, top) / top) * (height - 2 * pad):.1f}"
            for t, v in zip(times, values)
        )
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{stroke}" '
            'stroke-width="1.5"/>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def grid_heatmap_to_svg(
    cells: Sequence[Sequence[float]],
    cell_px: float = 12.0,
    title: str = "",
) -> str:
    """Render a 2-D cell array as a heatmap SVG (row 0 = south).

    Used by the campaign report for the full-room visited-cell heatmap:
    ``cells[iy][ix]`` is seconds spent (or visit count) in that cell,
    matching the layout of
    :meth:`repro.mapping.occupancy.OccupancyGrid.heatmap`. Zero cells
    draw dark (never visited); positive cells ramp white-to-orange with
    intensity relative to the array maximum. Rows render north-up.

    Args:
        cells: rectangular 2-D array of non-negative cell values.
        cell_px: pixel edge length per cell.
        title: optional caption below the grid.
    """
    rows = [list(row) for row in cells]
    if not rows or not rows[0]:
        raise ValueError("heatmap needs a non-empty 2-D cell array")
    nx = len(rows[0])
    if any(len(row) != nx for row in rows):
        raise ValueError("heatmap rows must have equal lengths")
    ny = len(rows)
    peak = max(max(row) for row in rows)
    width = nx * cell_px
    height = ny * cell_px + (18.0 if title else 0.0)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
    ]
    for iy, row in enumerate(rows):
        # Row 0 is the southernmost cells; SVG y grows downward.
        y = (ny - 1 - iy) * cell_px
        for ix, value in enumerate(row):
            if value <= 0.0 or peak <= 0.0:
                fill = "#30343a"
            else:
                frac = min(value / peak, 1.0)
                r = 255
                g = int(250 - 120 * frac)
                b = int(235 - 200 * frac)
                fill = f"rgb({r},{g},{b})"
            parts.append(
                f'<rect x="{ix * cell_px:.1f}" y="{y:.1f}" '
                f'width="{cell_px:.1f}" height="{cell_px:.1f}" fill="{fill}"/>'
            )
    if title:
        parts.append(
            f'<text x="2" y="{height - 5:.0f}" font-family="monospace" '
            f'font-size="12">{title}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)
