"""Dependency-free visualization: PGM heatmaps and SVG trajectory plots."""

from repro.viz.pgm import heatmap_to_pgm, write_pgm
from repro.viz.svg import trajectory_to_svg

__all__ = ["heatmap_to_pgm", "write_pgm", "trajectory_to_svg"]
