"""Dependency-free visualization: PGM heatmaps and SVG trajectory plots."""

from repro.viz.pgm import heatmap_to_pgm, write_pgm
from repro.viz.svg import grid_heatmap_to_svg, sparkline_to_svg, trajectory_to_svg

__all__ = [
    "grid_heatmap_to_svg",
    "heatmap_to_pgm",
    "sparkline_to_svg",
    "trajectory_to_svg",
    "write_pgm",
]
