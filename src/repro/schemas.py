"""Central registry of the repo's versioned schema tokens.

Every persisted artifact -- cache entries, broker databases, flight
traces, campaign result files, job ``version`` stamps -- carries a
token of the form ``"<family>/v<N>"`` that ties on-disk bytes to the
code that can read them. Until this module existed those tokens were
string literals scattered across four subsystems, which made three
mistakes possible: two families colliding on one name, a version bump
editing one copy of a literal but not another, and a new artifact kind
shipping with no token at all.

All tokens now live here, constructed through :func:`register`, which
enforces uniqueness and the ``family/vN`` shape at import time. The
static analyzer (``python -m repro.lint``, rule ``RPR105``) closes the
loop by rejecting any ``repro.*/vN`` string literal outside this
module, so the registry is the single point a reviewer has to read to
see every on-disk format the repo speaks -- and bumping a version is a
one-line diff next to all its siblings.

Example:
    >>> from repro import schemas
    >>> schemas.CACHE_SCHEMA
    'repro.exec.result/v1'
    >>> schemas.family(schemas.RESULT_SCHEMA)
    'repro.sim.campaign-result'
    >>> schemas.version(schemas.RESULT_SCHEMA)
    2
    >>> schemas.is_registered("repro.exec.result/v1")
    True
"""

from __future__ import annotations

import re
from typing import Dict, Tuple

from repro.errors import ReproError


class SchemaError(ReproError):
    """A malformed, duplicate, or unknown schema token."""


#: Shape every family name must take: a dotted ``repro.``-rooted path,
#: lowercase, with ``-`` allowed inside a segment (the campaign-result
#: family predates this module and uses it).
_FAMILY_RE = re.compile(r"^repro\.[a-z0-9_.-]+[a-z0-9]$")

#: Shape of a full token, used by :func:`parse` and the lint rule.
TOKEN_RE = re.compile(r"^(repro\.[a-z0-9_.-]+[a-z0-9])/v(\d+)$")

#: family -> registered version. One version per family: the token is
#: the *current* writer format; readers that accept older versions do
#: so by parsing the family out of the stored token (see
#: ``repro.sim.results``).
_REGISTRY: Dict[str, int] = {}


def register(name: str, version: int) -> str:
    """Register schema family ``name`` at ``version``; return the token.

    Args:
        name: the family, e.g. ``"repro.exec.result"``.
        version: positive integer format version.

    Returns:
        The canonical token string ``"<name>/v<version>"``.

    Raises:
        SchemaError: for a malformed name, a non-positive version, or a
            family that is already registered (token collisions must be
            impossible, not merely unlikely).
    """
    if not _FAMILY_RE.match(name):
        raise SchemaError(
            f"schema family {name!r} must match {_FAMILY_RE.pattern}"
        )
    if not isinstance(version, int) or isinstance(version, bool) or version < 1:
        raise SchemaError(f"{name}: version must be a positive int, got {version!r}")
    if name in _REGISTRY:
        raise SchemaError(f"schema family {name!r} registered twice")
    _REGISTRY[name] = version
    return f"{name}/v{version}"


def parse(token: str) -> Tuple[str, int]:
    """Split a token into ``(family, version)``.

    Raises:
        SchemaError: when ``token`` does not have the ``family/vN`` shape.
    """
    match = TOKEN_RE.match(token)
    if match is None:
        raise SchemaError(f"not a schema token: {token!r}")
    return match.group(1), int(match.group(2))


def family(token: str) -> str:
    """The family part of ``token`` (``"repro.obs.trace/v1"`` -> ``"repro.obs.trace"``)."""
    return parse(token)[0]


def version(token: str) -> int:
    """The integer version of ``token``."""
    return parse(token)[1]


def is_registered(token: str) -> bool:
    """Whether ``token`` is exactly a currently-registered token."""
    try:
        name, ver = parse(token)
    except SchemaError:
        return False
    return _REGISTRY.get(name) == ver


def registered_tokens() -> Tuple[str, ...]:
    """All registered tokens, sorted (stable for reports and tests)."""
    return tuple(f"{name}/v{ver}" for name, ver in sorted(_REGISTRY.items()))


# -- the tokens ------------------------------------------------------------
#
# Values are frozen history: changing any string here re-keys artifacts
# on disk. Bump a version (and migrate readers) instead of editing a
# family name.

#: :class:`repro.exec.executor.JobFailure` plain-data envelope.
FAILURE_SCHEMA = register("repro.exec.failure", 1)

#: SQLite work-queue broker database (``repro.exec.queue``).
BROKER_SCHEMA = register("repro.exec.queue", 1)

#: Persistent :class:`repro.exec.cache.ResultCache` entry files.
CACHE_SCHEMA = register("repro.exec.result", 1)

#: Flight-trace artifacts (``repro.obs.trace``); independent of the
#: result-cache schema so a trace-format bump never invalidates results.
TRACE_SCHEMA = register("repro.obs.trace", 1)

#: Campaign result files (``repro.sim.results``). v2 added the
#: reachable-free-space coverage normalization; v1 files still load.
RESULT_SCHEMA = register("repro.sim.campaign-result", 2)

#: Job ``version`` stamp for campaign mission jobs
#: (``repro.sim.runner``). Decoupled from :data:`RESULT_SCHEMA` (which
#: tracks the result *file* format): a change that redraws mission
#: randomness without touching the file shape bumps this token only.
#: History: v1/v2 rode on the campaign-result token; v3 = per-sensor
#: spawned seed streams (flow, gyro, ranger dropout, ranger noise),
#: which re-keys every cached mission once.
MISSION_JOB_VERSION = register("repro.sim.mission-job", 3)

#: Job ``version`` stamp for the paper-experiment jobs
#: (``repro.experiments.jobs``): training, deployment plans, fig3.
EXPERIMENT_JOB_VERSION = register("repro.experiments.jobs", 1)

#: ``python -m repro.lint --format json`` report documents.
LINT_REPORT_SCHEMA = register("repro.lint.report", 1)

#: Committed lint baseline files (grandfathered findings).
LINT_BASELINE_SCHEMA = register("repro.lint.baseline", 1)
