"""Observability: flight recording, deterministic replay, reporting.

The package splits along the circular-import boundary with the sim
layer: this module exports only the *capture* side (trace format,
recorder, store, progress line), which the mission and sim modules
import freely. The *consumption* side -- :mod:`repro.obs.replay` and
:mod:`repro.obs.report` -- imports the sim layer itself and is
therefore only ever imported as a submodule, by the CLIs.

See ``docs/observability.md`` for the trace schema and the replay
determinism contract.
"""

from repro.obs.progress import ProgressLine
from repro.obs.recorder import FlightRecorder
from repro.obs.store import TRACE_SUFFIX, TraceStats, TraceStore
from repro.obs.trace import TICK_COLUMNS, TRACE_SCHEMA, MissionTrace

__all__ = [
    "FlightRecorder",
    "MissionTrace",
    "ProgressLine",
    "TICK_COLUMNS",
    "TRACE_SCHEMA",
    "TRACE_SUFFIX",
    "TraceStats",
    "TraceStore",
]
