"""Self-contained HTML campaign reports built on :mod:`repro.viz`.

One document per campaign result: a summary header, executor/cache
statistics, and a per-mission gallery. Missions with a recorded flight
trace render a full panel -- trajectory SVG (walls, obstacles, objects,
path), coverage sparkline, and a full-room visited-cell heatmap binned
from the per-tick telemetry; missions without a trace fall back to the
sparkline the scalar record already carries. The mission whose primary
metric is best and the one whose is worst are highlighted, and rows
more than two population standard deviations from the campaign mean
are flagged as outliers.

Like :mod:`repro.obs.replay`, this module imports the sim layer and is
only ever imported as a submodule (never from ``repro.obs.__init__``).
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mapping.mocap import TrackedSample
from repro.mapping.occupancy import CELL_SIZE_M
from repro.geometry.vec import Vec2
from repro.mission.closed_loop import DetectionEvent
from repro.obs.store import TraceStore
from repro.obs.trace import MissionTrace
from repro.sim.campaign import Campaign, MissionSpec
from repro.sim.results import CampaignResult, MissionRecord
from repro.viz import grid_heatmap_to_svg, sparkline_to_svg, trajectory_to_svg

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 1.5em;
       color: #222; background: #fff; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table.stats { border-collapse: collapse; font-size: 0.9em; }
table.stats td, table.stats th { border: 1px solid #ccc; padding: 3px 9px;
       text-align: left; }
.mission { border: 1px solid #ddd; border-radius: 6px; padding: 0.8em;
       margin: 0.9em 0; }
.mission.best { border-color: #2a9d2a; box-shadow: 0 0 4px #2a9d2a55; }
.mission.worst { border-color: #d03030; box-shadow: 0 0 4px #d0303055; }
.mission h3 { margin: 0 0 0.4em 0; font-size: 1.0em; font-family: monospace; }
.badge { font-size: 0.75em; padding: 1px 7px; border-radius: 8px;
       color: #fff; margin-left: 0.6em; vertical-align: middle; }
.badge.best { background: #2a9d2a; } .badge.worst { background: #d03030; }
.badge.outlier { background: #d08a20; }
.panels { display: flex; flex-wrap: wrap; gap: 1em; align-items: flex-start; }
.panel { font-size: 0.8em; color: #555; }
.note { color: #888; font-style: italic; font-size: 0.85em; }
"""


def _primary_metric(result: CampaignResult) -> str:
    return (
        "detection_rate"
        if result.campaign.get("kind", "search") == "search"
        else "coverage"
    )


def _trace_samples(trace: MissionTrace) -> List[TrackedSample]:
    cols = trace.columns
    return [
        TrackedSample(time=t, position=Vec2(x, y), heading=h)
        for t, x, y, h in zip(cols["t"], cols["x"], cols["y"], cols["heading"])
    ]


def _trace_heatmap(
    trace: MissionTrace, width: float, length: float
) -> List[List[float]]:
    """Seconds spent per cell over the whole room, binned from telemetry.

    Mirrors the occupancy grid's layout (row 0 = south) at the standard
    cell size, so the rendered heatmap spans the full room including
    never-visited cells.
    """
    nx = max(1, int(np.ceil(width / CELL_SIZE_M)))
    ny = max(1, int(np.ceil(length / CELL_SIZE_M)))
    seconds = np.zeros((ny, nx), dtype=np.float64)
    times = np.asarray(trace.columns["t"], dtype=np.float64)
    xs = np.asarray(trace.columns["x"], dtype=np.float64)
    ys = np.asarray(trace.columns["y"], dtype=np.float64)
    if len(times) == 0:
        return seconds.tolist()
    dts = np.diff(times, prepend=0.0)
    ix = np.clip((xs / CELL_SIZE_M).astype(int), 0, nx - 1)
    iy = np.clip((ys / CELL_SIZE_M).astype(int), 0, ny - 1)
    np.add.at(seconds, (iy, ix), dts)
    return seconds.tolist()


def _mission_events(record: MissionRecord) -> List[DetectionEvent]:
    return [
        DetectionEvent(
            object_name=name, object_class=cls, time_s=t, distance_m=d
        )
        for name, cls, t, d in record.events
    ]


def _stats_rows(
    result: CampaignResult, cache_dir: Optional[str], traced: int
) -> List[Tuple[str, str]]:
    rows: List[Tuple[str, str]] = [
        ("campaign", result.name),
        ("campaign hash", result.campaign_hash[:16]),
        ("missions", str(len(result))),
        ("recorded traces", str(traced)),
    ]
    if result.execution is not None:
        report = result.execution
        rows.append(("execution", report.summary()))
        timings = report.timings_summary()
        if timings:
            rows.append(("timings", timings))
    else:
        rows.append(("execution", "n/a (loaded result; no live run)"))
    if cache_dir is not None:
        from repro.exec import ResultCache

        stats = ResultCache(cache_dir).stats()
        rows.append(
            (
                "result cache",
                f"{stats.entries} entries, {stats.total_bytes / 1e6:.2f} MB "
                f"({cache_dir})",
            )
        )
        tstats = TraceStore(cache_dir).stats()
        rows.append(
            (
                "trace store",
                f"{tstats.traces} traces, {tstats.total_bytes / 1e6:.2f} MB",
            )
        )
    return rows


def _select_highlights(
    result: CampaignResult, metric: str
) -> Tuple[Optional[int], Optional[int], set]:
    """Indices of the best and worst record plus the >2-sigma outliers."""
    if not result.records:
        return None, None, set()
    values = np.asarray([getattr(r, metric) for r in result.records])
    best = int(result.records[int(np.argmax(values))].index)
    worst = int(result.records[int(np.argmin(values))].index)
    outliers: set = set()
    if len(values) >= 3:
        mean, std = float(values.mean()), float(values.std())
        if std > 0.0:
            outliers = {
                r.index
                for r, v in zip(result.records, values)
                if abs(v - mean) > 2.0 * std
            }
    return best, worst, outliers


def render_report(
    result: CampaignResult, cache_dir: Optional[str] = None
) -> str:
    """Render ``result`` into one self-contained HTML document.

    Args:
        result: the campaign to report (live or loaded from disk).
        cache_dir: the shared cache/trace directory; ``None`` skips
            trace-backed panels (trajectories, heatmaps) and cache
            statistics, leaving the scalar gallery.
    """
    metric = _primary_metric(result)
    store = TraceStore(cache_dir) if cache_dir is not None else None

    # Missions align with records by index; specs provide the rooms and
    # objects the trajectory renderer draws. A result whose campaign
    # definition no longer expands (old schema) degrades to no panels.
    specs: Dict[int, MissionSpec] = {}
    hashes: Dict[int, str] = {}
    try:
        campaign = Campaign.from_dict(result.campaign)
        from repro.sim.runner import mission_job

        for spec in campaign.missions():
            specs[spec.index] = spec
            hashes[spec.index] = mission_job(spec).content_hash()
    except Exception:  # noqa: BLE001 - degraded report beats no report
        pass

    traces: Dict[int, MissionTrace] = {}
    if store is not None:
        for index, h in hashes.items():
            if store.has(h):
                traces[index] = store.get(h)

    best, worst, outliers = _select_highlights(result, metric)
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>campaign report: {html.escape(result.name)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>Campaign report: {html.escape(result.name)}</h1>",
        "<h2>Run statistics</h2>",
        "<table class='stats'>",
    ]
    for key, value in _stats_rows(result, cache_dir, len(traces)):
        parts.append(
            f"<tr><th>{html.escape(key)}</th>"
            f"<td>{html.escape(value)}</td></tr>"
        )
    parts.append("</table>")

    parts.append("<h2>Missions</h2>")
    if not result.records:
        parts.append("<p class='note'>empty campaign result</p>")
    for record in result.records:
        classes = ["mission"]
        badges = []
        if record.index == best:
            classes.append("best")
            badges.append("<span class='badge best'>best</span>")
        if record.index == worst:
            classes.append("worst")
            badges.append("<span class='badge worst'>worst</span>")
        if record.index in outliers:
            badges.append("<span class='badge outlier'>outlier &gt;2&sigma;</span>")
        title = (
            f"#{record.index} {record.scenario}/{record.policy}"
            f"@{record.speed:g} run {record.run_idx}"
        )
        metric_line = f"{metric.replace('_', ' ')} {getattr(record, metric):.1%}"
        detail = (
            f"coverage {record.coverage:.1%}, {record.collisions} collisions, "
            f"{record.distance_flown_m:.1f} m flown"
        )
        if record.kind == "search":
            detail = (
                f"detection {record.detection_rate:.1%}, " + detail
                + f", {record.frames_processed} frames"
            )
        if record.index in hashes:
            # the replay handle: `python -m repro.sim replay <prefix>`
            detail += f" · job {hashes[record.index][:12]}"
        parts.append(f"<div class='{' '.join(classes)}'>")
        parts.append(
            f"<h3>{html.escape(title)} &mdash; {html.escape(metric_line)}"
            f"{''.join(badges)}</h3>"
        )
        parts.append(f"<p class='panel'>{html.escape(detail)}</p>")
        parts.append("<div class='panels'>")
        trace = traces.get(record.index)
        spec = specs.get(record.index)
        if trace is not None and spec is not None:
            room = spec.scenario.build_room()
            objects = spec.scenario.build_objects()
            parts.append(
                "<div class='panel'>trajectory<br>"
                + trajectory_to_svg(
                    room,
                    _trace_samples(trace),
                    objects=objects,
                    events=_mission_events(record),
                )
                + "</div>"
            )
            parts.append(
                "<div class='panel'>visited cells<br>"
                + grid_heatmap_to_svg(
                    _trace_heatmap(trace, room.width, room.length)
                )
                + "</div>"
            )
        parts.append(
            "<div class='panel'>coverage over time<br>"
            + sparkline_to_svg(
                list(record.series_times),
                list(record.series_coverage),
                y_max=1.0,
            )
            + "</div>"
        )
        parts.append("</div>")
        if trace is None:
            parts.append(
                "<p class='note'>no flight trace recorded for this "
                "mission (re-run with --record)</p>"
            )
        parts.append("</div>")
    parts.append("</body></html>")
    return "\n".join(parts)


def write_report(
    result: CampaignResult, path: str, cache_dir: Optional[str] = None
) -> str:
    """Render and write the report; returns ``path``."""
    import os

    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_report(result, cache_dir=cache_dir))
    return path
