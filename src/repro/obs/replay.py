"""Deterministic replay of recorded missions.

Reconstructs a flight from the artifacts beside the result cache: the
cache entry (``<hash>.json``) holds the full job -- and therefore the
mission spec and seed provenance -- while the trace artifact
(``<hash>.trace.json.gz``) holds the telemetry. Replay cross-checks the
two without re-flying; ``verify=True`` additionally re-flies the
mission from the reconstructed spec and asserts bit-identity between
the live and the recorded telemetry (fingerprints over the canonical
telemetry JSON, wall-clock timings excluded -- the contract documented
in ``docs/observability.md``).

This module imports the sim layer and must therefore never be imported
from :mod:`repro.obs`'s ``__init__`` (the sim layer imports the capture
side of the package); the CLIs import it as a submodule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ObsError
from repro.exec import JobSpec, ResultCache, json_roundtrip
from repro.obs.store import TraceStore
from repro.obs.trace import MissionTrace
from repro.sim.campaign import Campaign, MissionSpec
from repro.sim.results import CampaignResult
from repro.sim.runner import fly_mission, mission_job


@dataclass(frozen=True)
class ReplayOutcome:
    """What replaying one recorded mission established.

    ``verified`` is ``None`` when no re-flight was requested, ``True``
    when the re-flight was bit-identical (a mismatch raises instead of
    reporting ``False`` -- a broken determinism contract is an error,
    not a result).
    """

    content_hash: str
    label: str
    kind: str
    n_ticks: int
    fingerprint: str
    verified: Optional[bool]

    def summary(self) -> str:
        """One human line, e.g. for the CLI."""
        state = "verified bit-identical" if self.verified else "consistent"
        return (
            f"{self.content_hash[:12]} {self.label}: {self.kind}, "
            f"{self.n_ticks} ticks, {state}"
        )


def mission_spec_from_entry(entry: dict) -> MissionSpec:
    """Rebuild the mission spec a cache entry's job flew.

    The stored job payload is the seed-free spec dict with provenance
    lifted onto the job (see :func:`repro.sim.runner.mission_job`);
    this reverses that lift.

    Raises:
        ObsError: when the entry's job is not a mission job.
    """
    job = JobSpec.from_dict(entry["job"])
    if "spec" not in job.kwargs:
        raise ObsError(
            f"cache entry for {job.fn!r} is not a mission job; "
            "only campaign missions can be replayed"
        )
    data = dict(job.kwargs["spec"])
    data["seed_entropy"] = job.seed_entropy
    data["spawn_key"] = list(job.spawn_key)
    return MissionSpec.from_dict(data)


def _check_final_against_result(trace: MissionTrace, result: dict, h: str) -> None:
    """The trace's scalar summary must agree with the cached record."""
    for key, value in trace.final.items():
        stored = result.get(key)
        if json_roundtrip(value) != json_roundtrip(stored):
            raise ObsError(
                f"trace/result mismatch for {h[:12]}: "
                f"trace.final[{key!r}] = {value!r} but the cached record "
                f"has {stored!r}"
            )


def replay_mission(
    content_hash: str,
    cache_dir: str,
    verify: bool = False,
) -> ReplayOutcome:
    """Replay one recorded mission from its artifacts.

    Without ``verify`` this reconstructs the mission spec from the
    cache entry, loads the trace, and cross-checks the trace's scalar
    summary against the cached record -- no flying involved. With
    ``verify`` the mission is re-flown from the reconstructed spec and
    both the scalar record and the telemetry fingerprint must be
    bit-identical to what is stored.

    Args:
        content_hash: full job content hash (resolve prefixes with
            :meth:`~repro.obs.store.TraceStore.find` first).
        cache_dir: the shared cache/trace directory.
        verify: re-fly and assert bit-identity.

    Raises:
        ObsError: on missing artifacts, trace/record disagreement, or
            a failed bit-identity check.
    """
    store = TraceStore(cache_dir)
    cache = ResultCache(cache_dir)
    trace = store.get(content_hash)
    entry = cache.load_entry(content_hash)
    if entry is None:
        raise ObsError(
            f"trace {content_hash[:12]} has no matching result cache "
            f"entry in {cache_dir}; the cache may have been cleared"
        )
    spec = mission_spec_from_entry(entry)
    if mission_job(spec).content_hash() != content_hash:
        raise ObsError(
            f"cache entry {content_hash[:12]} does not round-trip to its "
            "own hash; refusing to replay a tampered artifact"
        )
    stored_result = entry.get("result") or {}
    _check_final_against_result(trace, stored_result, content_hash)
    label = mission_job(spec).label
    verified: Optional[bool] = None
    if verify:
        record, live_trace = fly_mission(spec, record=True)
        if json_roundtrip(record.to_dict()) != stored_result:
            raise ObsError(
                f"re-flight of {content_hash[:12]} produced a different "
                "scalar record than the cache holds -- determinism broken "
                "or code changed without a version bump"
            )
        if live_trace.fingerprint() != trace.fingerprint():
            raise ObsError(
                f"re-flight of {content_hash[:12]} produced different "
                "telemetry than the stored trace (fingerprint "
                f"{live_trace.fingerprint()[:12]} != "
                f"{trace.fingerprint()[:12]})"
            )
        verified = True
    return ReplayOutcome(
        content_hash=content_hash,
        label=label,
        kind=trace.kind,
        n_ticks=trace.n_ticks,
        fingerprint=trace.fingerprint(),
        verified=verified,
    )


def campaign_hashes(result: CampaignResult) -> List[str]:
    """The job content hashes of a saved campaign result, in mission order.

    Re-expands the persisted campaign definition into mission specs and
    derives each mission's job hash -- the key under which both the
    cached record and the trace live.
    """
    campaign = Campaign.from_dict(result.campaign)
    return [mission_job(spec).content_hash() for spec in campaign.missions()]


def replay_target_hashes(target: str, cache_dir: str) -> List[str]:
    """Resolve a CLI replay target to full content hashes.

    ``target`` is either a (possibly abbreviated) job hash or the path
    to a saved campaign result file; a file target expands to every
    mission of the campaign.

    Raises:
        ObsError: when nothing matches.
    """
    import os

    if os.path.isfile(target):
        return campaign_hashes(CampaignResult.load(target))
    store = TraceStore(cache_dir)
    full = store.find(target)
    if full is None:
        raise ObsError(
            f"no recorded trace matches {target!r} in {cache_dir}; "
            "run the campaign with --record first (`cache stats` lists "
            "trace counts)"
        )
    return [full]
