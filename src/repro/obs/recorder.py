"""In-flight telemetry capture for recorded missions.

A :class:`FlightRecorder` rides along a mission's control loop and
accumulates the columnar telemetry that becomes a
:class:`~repro.obs.trace.MissionTrace` when the flight ends. The
mission calls it once per control tick with the objects it already has
in hand (true state, estimate, set-point, ranger reading), plus event
hooks for camera frames, detections and coverage samples. The hot path
is deliberately minimal -- :meth:`FlightRecorder.tick` appends a single
row tuple, and nothing is transposed or copied until
:meth:`FlightRecorder.finish` -- so that recording stays a few percent
of a mission's wall clock (``benchmarks/bench_campaign_throughput.py``
asserts the ceiling).

Phase timing uses :func:`time.perf_counter` -- wall clock, stored in
the trace's ``timings`` section only, which the replay bit-identity
contract deliberately ignores (see :mod:`repro.obs.trace`). Mission
loops accumulate per-phase seconds in local variables and hand the
totals to :meth:`FlightRecorder.add_phase` once per phase; the
:meth:`FlightRecorder.phase` context manager offers the same
accounting for code outside the per-tick hot path.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, List, Tuple

from repro.obs.trace import TICK_COLUMNS, MissionTrace


class FlightRecorder:
    """Accumulates one mission's telemetry, tick by tick.

    Args:
        kind: ``"explore"`` or ``"search"`` -- which mission family the
            trace describes.

    Example:
        >>> rec = FlightRecorder("explore")
        >>> with rec.phase("policy"):
        ...     pass
        >>> rec.n_ticks
        0
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._rows: List[Tuple[float, ...]] = []
        self.frames: Dict[str, List[float]] = {"t": [], "visible": []}
        self.detections: List[List[Any]] = []
        self.coverage: Dict[str, List[float]] = {"t": [], "value": []}
        self.phases: Dict[str, float] = {}

    @property
    def n_ticks(self) -> int:
        """Ticks recorded so far."""
        return len(self._rows)

    def tick(self, state, estimate, setpoint, reading, collisions: int) -> None:
        """Record one control tick.

        Args:
            state: the true :class:`~repro.drone.dynamics.DroneState`
                *after* the step.
            estimate: the drone's
                :class:`~repro.drone.state_estimator.EstimatedState` the
                policy acted on this tick.
            setpoint: the commanded
                :class:`~repro.drone.controller.SetPoint`.
            reading: the
                :class:`~repro.sensors.multiranger.RangerReading` the
                policy saw.
            collisions: cumulative collision count after the step.
        """
        pos = state.position
        est_pos = estimate.position
        self._rows.append(
            (
                state.time,
                pos.x,
                pos.y,
                state.heading,
                est_pos.x,
                est_pos.y,
                estimate.heading,
                setpoint.forward,
                setpoint.side,
                setpoint.yaw_rate,
                reading.front,
                reading.back,
                reading.left,
                reading.right,
                collisions,
            )
        )

    def coverage_sample(self, t: float, value: float) -> None:
        """Record one point of the coverage-over-time series."""
        self.coverage["t"].append(t)
        self.coverage["value"].append(value)

    def frame(self, t: float, visible: int) -> None:
        """Record one camera frame event (time, objects in view)."""
        self.frames["t"].append(t)
        self.frames["visible"].append(visible)

    def detection(
        self, name: str, object_class: str, t: float, distance_m: float
    ) -> None:
        """Record one first-detection event."""
        self.detections.append([name, object_class, t, distance_m])

    def add_phase(self, name: str, seconds: float) -> None:
        """Accumulate wall-clock ``seconds`` into phase ``name``."""
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    @contextmanager
    def phase(self, name: str):
        """Accumulate wall-clock seconds into phase ``name``.

        Usable as ``with recorder.phase("policy"): ...`` around each
        stage; repeated entries sum. Mission tick loops use
        :meth:`add_phase` with locally accumulated totals instead --
        a generator frame per tick is measurable at control rate.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_phase(name, time.perf_counter() - start)

    def finish(self, final: Dict[str, Any]) -> MissionTrace:
        """Seal the recording into a :class:`MissionTrace`.

        Transposes the accumulated row tuples into the trace's columnar
        layout -- the one deferred O(ticks) pass of the recorder.

        Args:
            final: scalar summary of the flight (what the mission's
                result record reports).
        """
        if self._rows:
            transposed = list(zip(*self._rows))
            columns = {
                name: list(values)
                for name, values in zip(TICK_COLUMNS, transposed)
            }
        else:
            columns = {name: [] for name in TICK_COLUMNS}
        return MissionTrace(
            kind=self.kind,
            columns=columns,
            frames=self.frames,
            detections=self.detections,
            coverage=self.coverage,
            final=final,
            timings={"ticks": self.n_ticks, "phases": dict(self.phases)},
        )
