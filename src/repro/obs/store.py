"""On-disk trace store, sharing layout with the result cache.

Traces live *beside* their result-cache entries, keyed by the same job
content hash and sharded the same way::

    <cache-dir>/
        ab/
            ab3f...9c.json            result entry (repro.exec.cache)
            ab3f...9c.trace.json.gz   flight trace  (this module)

The ``.trace.json.gz`` suffix keeps traces invisible to the result
cache's entry scan (which only considers bare ``.json`` files), so
recording never perturbs cache statistics or ``clear()``; symmetric,
:meth:`TraceStore.clear` only removes traces. Writes are atomic
(temp file + ``os.replace``), like cache entries.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, NamedTuple, Optional

from repro.errors import ObsError
from repro.exec.cache import TRACE_SUFFIX
from repro.obs.trace import MissionTrace

__all__ = ["TRACE_SUFFIX", "TraceStats", "TraceStore"]


class TraceStats(NamedTuple):
    """Point-in-time size of the trace side of a cache directory."""

    traces: int  #: number of trace artifacts
    total_bytes: int  #: bytes on disk across them
    orphans: int = 0  #: abandoned ``.tmp-*.gz`` files from crashed writers


@dataclass
class TraceStore:
    """Flight traces on disk, keyed by job content hash.

    Shares a directory with the :class:`~repro.exec.cache.ResultCache`
    so one job hash locates both the scalar result and the telemetry
    behind it.
    """

    directory: str

    def __post_init__(self) -> None:
        if not self.directory:
            raise ObsError("trace store needs a directory")

    # -- paths ------------------------------------------------------------

    def path(self, content_hash: str) -> str:
        """Where the trace for ``content_hash`` lives (existing or not)."""
        if len(content_hash) < 3:
            raise ObsError(f"implausible content hash {content_hash!r}")
        return os.path.join(
            self.directory, content_hash[:2], f"{content_hash}{TRACE_SUFFIX}"
        )

    def has(self, content_hash: str) -> bool:
        """Whether a trace artifact exists for ``content_hash``."""
        return os.path.isfile(self.path(content_hash))

    # -- I/O --------------------------------------------------------------

    def put(self, content_hash: str, trace: MissionTrace) -> str:
        """Store ``trace`` under ``content_hash``; returns the path.

        Atomic via a sibling temp file + ``os.replace``. The temp name
        is derived from the content hash rather than randomized
        (``mkstemp``): the hash already makes it unique per job, two
        writers of the same job write identical telemetry, and skipping
        the secure-name dance keeps ``put`` off the recorded mission's
        overhead budget.
        """
        path = self.path(content_hash)
        shard = os.path.dirname(path)
        os.makedirs(shard, exist_ok=True)
        tmp = os.path.join(shard, f".tmp-{content_hash}.gz")
        try:
            with open(tmp, "wb") as fh:
                fh.write(trace.to_bytes())
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):  # pragma: no cover - cleanup path
                os.unlink(tmp)
            raise
        return path

    def get(self, content_hash: str) -> MissionTrace:
        """Load the trace for ``content_hash``.

        Raises:
            ObsError: when no trace exists or the artifact is corrupt.
        """
        path = self.path(content_hash)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError as exc:
            raise ObsError(
                f"no flight trace for {content_hash[:12]}... "
                f"(expected at {path}); re-run the campaign with --record"
            ) from exc
        return MissionTrace.from_bytes(blob)

    # -- discovery --------------------------------------------------------

    def _trace_files(self):
        if not os.path.isdir(self.directory):
            return
        for shard in sorted(os.listdir(self.directory)):
            shard_dir = os.path.join(self.directory, shard)
            if len(shard) != 2 or not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(TRACE_SUFFIX) and not name.startswith("."):
                    yield os.path.join(shard_dir, name)

    def _orphan_files(self):
        """Abandoned ``.tmp-*.gz`` files from crashed trace writers."""
        if not os.path.isdir(self.directory):
            return
        for shard in sorted(os.listdir(self.directory)):
            shard_dir = os.path.join(self.directory, shard)
            if len(shard) != 2 or not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.startswith(".tmp-") and name.endswith(".gz"):
                    yield os.path.join(shard_dir, name)

    def hashes(self) -> List[str]:
        """Content hashes of every stored trace, sorted."""
        return sorted(
            os.path.basename(path)[: -len(TRACE_SUFFIX)]
            for path in self._trace_files()
        )

    def find(self, prefix: str) -> Optional[str]:
        """Resolve a (possibly abbreviated) content hash to a full one.

        Returns ``None`` when no stored trace matches.

        Raises:
            ObsError: when the prefix is ambiguous.
        """
        matches = [h for h in self.hashes() if h.startswith(prefix)]
        if not matches:
            return None
        if len(matches) > 1:
            raise ObsError(
                f"trace hash prefix {prefix!r} is ambiguous: "
                f"{[m[:12] for m in matches]}"
            )
        return matches[0]

    def stats(self) -> TraceStats:
        """Trace count, bytes on disk, and crashed-writer orphan count."""
        traces = 0
        total = 0
        for path in self._trace_files():
            try:
                size = os.path.getsize(path)
            except OSError:  # pragma: no cover - racing deletion
                continue
            traces += 1
            total += size
        orphans = sum(1 for _ in self._orphan_files())
        return TraceStats(traces=traces, total_bytes=total, orphans=orphans)

    def clear(self) -> int:
        """Delete every trace artifact and orphaned temp file; returns
        how many files were removed.

        Result-cache entries in the shared directory are untouched.
        """
        removed = 0
        targets = list(self._trace_files())
        targets.extend(self._orphan_files())
        for path in targets:
            try:
                os.unlink(path)
                removed += 1
            except OSError:  # pragma: no cover - racing deletion
                continue
        return removed
