"""Live progress line for the campaign and experiment CLIs.

A :class:`ProgressLine` is an executor
:data:`~repro.exec.executor.ProgressCallback` that rewrites one
terminal line in place (carriage return, no newline) as jobs complete::

    campaign obs-pin:  7/20 jobs (3 cached, 4 executed), ETA 12s

The ETA extrapolates from the mean wall clock of the *executed* jobs
only -- cache hits arrive in a burst up front and would otherwise make
the estimate absurdly optimistic. Output goes to ``stderr`` by default
so piping a CLI's stdout (JSON output, reports) stays clean.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Optional, TextIO

from repro.exec.jobspec import JobSpec


def _format_eta(seconds: float) -> str:
    """Compact duration: ``"42s"``, ``"3m10s"``, ``"2h05m"``."""
    seconds = max(0, int(round(seconds)))
    if seconds < 60:
        return f"{seconds}s"
    minutes, sec = divmod(seconds, 60)
    if minutes < 60:
        return f"{minutes}m{sec:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressLine:
    """Executor progress callback that maintains a single live line.

    Args:
        label: prefix naming what is running (campaign or experiment).
        stream: where to write; ``None`` means ``sys.stderr``.

    The instance is callable with the executor's ``(done, total, job,
    result, cached)`` signature; call :meth:`finish` afterwards to
    terminate the line with a newline (safe when nothing was printed).
    """

    def __init__(self, label: str, stream: Optional[TextIO] = None):
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.started = time.perf_counter()
        self.hits = 0
        self.executed = 0
        self._dirty = False

    def __call__(
        self, done: int, total: int, job: JobSpec, result: Any, cached: bool
    ) -> None:
        if cached:
            self.hits += 1
        else:
            self.executed += 1
        line = (
            f"{self.label}: {done}/{total} jobs "
            f"({self.hits} cached, {self.executed} executed)"
        )
        eta = self._eta(done, total)
        if eta is not None:
            line += f", ETA {_format_eta(eta)}"
        self.stream.write(f"\r{line:<79}")
        self.stream.flush()
        self._dirty = True

    def _eta(self, done: int, total: int) -> Optional[float]:
        """Remaining seconds, or ``None`` while there is no basis."""
        remaining = total - done
        if remaining <= 0 or self.executed == 0:
            return None
        per_job = (time.perf_counter() - self.started) / self.executed
        return remaining * per_job

    def finish(self) -> None:
        """Terminate the live line with a newline, if one was printed."""
        if self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False
