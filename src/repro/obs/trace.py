"""The flight-trace artifact: per-tick telemetry of one recorded mission.

A :class:`MissionTrace` is what the :class:`~repro.obs.recorder.FlightRecorder`
produces at the end of a recorded flight: columnar per-tick telemetry
(true and estimated pose, the commanded set-point, the Multi-ranger
beams, the cumulative collision count), the camera frame and detection
events of a search mission, the coverage-over-time series, a scalar
summary, and wall-clock phase timings of the tick loop.

Two identity domains live in one artifact:

- **Telemetry** is deterministic: the same mission spec and seed stream
  produce bit-identical columns in any process (the replay ``--verify``
  contract). :meth:`MissionTrace.fingerprint` hashes exactly this part.
- **Timings** are wall clock and therefore never reproducible; they are
  stored for profiling but excluded from the fingerprint and from every
  replay comparison.

Traces serialize as gzip-compressed canonical JSON with a fixed mtime,
carrying their own ``schema`` token (:data:`TRACE_SCHEMA`) so a
trace-format bump invalidates traces without touching the result cache
(whose entries live in sibling ``.json`` files under a different
schema). Inside the JSON document the dense float series -- the tick
columns and the coverage series -- are packed as base64-encoded
little-endian float64 arrays rather than JSON number lists: packing is
exact (the fingerprint is bit-identity over the raw IEEE 754 words) and
keeps serialization off a recorded mission's critical path, which is
what holds the ``--record`` overhead under the benchmark's ceiling.
"""

from __future__ import annotations

import base64
import gzip
import hashlib
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro import schemas
from repro.errors import ObsError
from repro.exec.jobspec import canonical_json, json_roundtrip

#: Trace-artifact schema token; bump when the layout below changes so
#: stale traces read as errors instead of mis-parsing. Deliberately
#: independent of the result-cache schema: a trace-format bump must not
#: bust cached mission results.
TRACE_SCHEMA = schemas.TRACE_SCHEMA

#: The per-tick telemetry columns, in storage order. ``collisions`` is
#: the cumulative collision count after the tick, so collision *events*
#: are its increments.
TICK_COLUMNS = (
    "t",
    "x",
    "y",
    "heading",
    "est_x",
    "est_y",
    "est_heading",
    "set_forward",
    "set_side",
    "set_yaw_rate",
    "ranger_front",
    "ranger_back",
    "ranger_left",
    "ranger_right",
    "collisions",
)


def _pack_f64(values: List[float]) -> str:
    """Base64 of the values as little-endian float64 -- exact and fast."""
    return base64.b64encode(
        struct.pack(f"<{len(values)}d", *values)
    ).decode("ascii")


def _unpack_f64(blob: str) -> List[float]:
    raw = base64.b64decode(blob.encode("ascii"))
    if len(raw) % 8:
        raise ObsError(f"packed float series has {len(raw)} bytes (not / 8)")
    return list(struct.unpack(f"<{len(raw) // 8}d", raw))


@dataclass
class MissionTrace:
    """Columnar telemetry of one recorded mission.

    Attributes:
        kind: ``"explore"`` or ``"search"``.
        columns: per-tick telemetry, one equal-length list per
            :data:`TICK_COLUMNS` entry.
        frames: camera frame events as ``{"t": [...], "visible": [...]}``
            (frame time, number of visible objects); empty columns on
            exploration missions.
        detections: first-detection events as
            ``[name, object_class, time_s, distance_m]`` rows.
        coverage: the coverage-over-time series as
            ``{"t": [...], "value": [...]}`` (mocap-rate samples).
        final: scalar summary of the flight (coverage, collisions,
            distance flown, ...) -- what the mission record reports,
            duplicated here so a trace is self-describing.
        timings: wall-clock profile ``{"ticks": n, "phases": {name:
            seconds}}``; never part of the trace identity.
        schema: the artifact schema token this trace was built with.
    """

    kind: str
    columns: Dict[str, List[float]]
    frames: Dict[str, List[float]] = field(default_factory=lambda: {"t": [], "visible": []})
    detections: List[List[Any]] = field(default_factory=list)
    coverage: Dict[str, List[float]] = field(default_factory=lambda: {"t": [], "value": []})
    final: Dict[str, Any] = field(default_factory=dict)
    timings: Dict[str, Any] = field(default_factory=dict)
    schema: str = TRACE_SCHEMA

    def __post_init__(self) -> None:
        missing = [c for c in TICK_COLUMNS if c not in self.columns]
        if missing:
            raise ObsError(f"trace is missing telemetry columns: {missing}")
        lengths = {len(self.columns[c]) for c in TICK_COLUMNS}
        if len(lengths) > 1:
            raise ObsError(
                f"telemetry columns have unequal lengths: "
                f"{ {c: len(self.columns[c]) for c in TICK_COLUMNS} }"
            )

    @property
    def n_ticks(self) -> int:
        """Number of recorded control ticks."""
        return len(self.columns["t"])

    # -- identity ---------------------------------------------------------

    def telemetry_dict(self) -> dict:
        """The deterministic part of the trace, in storage form.

        Everything except ``timings``, with the dense float series
        packed (see the module docstring): this is the payload the
        replay ``--verify`` bit-identity contract is defined over.
        """
        return {
            "schema": self.schema,
            "kind": self.kind,
            "columns": {
                name: _pack_f64(values) for name, values in self.columns.items()
            },
            "frames": json_roundtrip(self.frames),
            "detections": json_roundtrip(self.detections),
            "coverage": {
                name: _pack_f64(values) for name, values in self.coverage.items()
            },
            "final": json_roundtrip(self.final),
        }

    def _canonical_telemetry_body(self) -> str:
        """Canonical JSON of :meth:`telemetry_dict`, sans closing brace.

        Byte-for-byte what ``canonical_json(self.telemetry_dict())``
        produces (keys in sorted order, compact separators), assembled
        by hand: the packed column strings are base64 and can never
        need JSON escaping, so routing a quarter-megabyte of them
        through ``json.dumps``'s escape scan would dominate the
        serialization cost. Callers close the document (``"}"``) or
        splice the ``timings`` member in first (:meth:`to_bytes`).
        """
        dump = canonical_json
        cols = ",".join(
            f'"{name}":"{_pack_f64(self.columns[name])}"'
            for name in sorted(self.columns)
        )
        cov = ",".join(
            f'"{name}":"{_pack_f64(self.coverage[name])}"'
            for name in sorted(self.coverage)
        )
        return (
            f'{{"columns":{{{cols}}},"coverage":{{{cov}}},'
            f'"detections":{dump(self.detections)},'
            f'"final":{dump(self.final)},'
            f'"frames":{dump(self.frames)},'
            f'"kind":{dump(self.kind)},'
            f'"schema":{dump(self.schema)}'
        )

    def fingerprint(self) -> str:
        """SHA-256 over the canonical telemetry (timings excluded).

        Two recordings of the same mission (same spec, same seed
        stream, any process) have equal fingerprints; their wall-clock
        timings will differ. Float series are fingerprinted over their
        packed IEEE 754 words, so equality means bit-identical floats.
        """
        blob = self._canonical_telemetry_body() + "}"
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        """Full storage form, timings included."""
        data = self.telemetry_dict()
        data["timings"] = json_roundtrip(self.timings)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "MissionTrace":
        """Inverse of :meth:`to_dict` (unpacks the float series).

        Raises:
            ObsError: on a schema mismatch or malformed columns.
        """
        if not isinstance(data, dict) or data.get("schema") != TRACE_SCHEMA:
            raise ObsError(
                f"not a {TRACE_SCHEMA} trace (schema "
                f"{data.get('schema') if isinstance(data, dict) else None!r})"
            )
        try:
            columns = {
                name: _unpack_f64(blob) for name, blob in data["columns"].items()
            }
            coverage = {
                name: _unpack_f64(blob)
                for name, blob in data.get("coverage", {}).items()
            } or {"t": [], "value": []}
        except (ValueError, TypeError) as exc:
            raise ObsError(f"corrupt trace columns: {exc}") from exc
        return cls(
            kind=data["kind"],
            columns=columns,
            frames=data.get("frames", {"t": [], "visible": []}),
            detections=data.get("detections", []),
            coverage=coverage,
            final=data.get("final", {}),
            timings=data.get("timings", {}),
            schema=data["schema"],
        )

    def to_bytes(self, compresslevel: int = 0) -> bytes:
        """Gzip-wrapped canonical JSON (fixed mtime).

        The payload is byte-for-byte ``canonical_json(self.to_dict())``
        (assembled without the escape scan -- see
        :meth:`_canonical_telemetry_body`). The telemetry part is
        deterministic; the bytes as a whole are not (timings), which is
        why replay comparisons go through :meth:`fingerprint` instead
        of file bytes.

        Args:
            compresslevel: gzip level. The default of 0 (stored, not
                deflated) is deliberate: serialization runs on the
                recorded mission's critical path, and deflating the
                packed columns costs more wall clock than the whole
                capture loop. The artifact is a valid ``.gz`` either
                way; pass 1-9 to trade capture time for disk.
        """
        body = (
            self._canonical_telemetry_body()
            + f',"timings":{canonical_json(self.timings)}}}'
        )
        return gzip.compress(
            body.encode("utf-8"), compresslevel=compresslevel, mtime=0
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "MissionTrace":
        """Inverse of :meth:`to_bytes`.

        Raises:
            ObsError: on undecodable bytes or a schema mismatch.
        """
        import json

        try:
            data = json.loads(gzip.decompress(blob).decode("utf-8"))
        except (OSError, ValueError) as exc:
            raise ObsError(f"corrupt trace artifact: {exc}") from exc
        return cls.from_dict(data)
