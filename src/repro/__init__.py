"""Reproduction of the DATE 2023 nano-drone exploration + detection system.

The library is organised as one subpackage per subsystem of the paper:

- :mod:`repro.geometry` -- 2-D geometry and ray casting.
- :mod:`repro.world` -- rooms, obstacles and scene objects.
- :mod:`repro.sensors` -- ToF ranging, odometry and camera models.
- :mod:`repro.drone` -- the simulated Crazyflie platform.
- :mod:`repro.policies` -- the four bio-inspired exploration policies.
- :mod:`repro.mapping` -- occupancy grids and coverage metrics.
- :mod:`repro.nn` -- a from-scratch numpy neural-network stack.
- :mod:`repro.vision` -- SSD-MobileNetV2 object detection.
- :mod:`repro.quantization` -- symmetric int8 quantization and QAT.
- :mod:`repro.datasets` -- synthetic bottle/tin-can datasets.
- :mod:`repro.evaluation` -- COCO-style mAP and detection-rate metrics.
- :mod:`repro.hw` -- GAP8/STM32 cost, memory and power models.
- :mod:`repro.mission` -- exploration and closed-loop search missions.
- :mod:`repro.experiments` -- regenerators for every table and figure.
"""

from repro.version import __version__

__all__ = ["__version__"]
