"""Plain 2-D vector and angle helpers.

Angles follow the usual robotics convention: radians, measured counter-
clockwise from the +x axis, and normalized to ``(-pi, pi]`` by
:func:`normalize_angle`.
"""

from __future__ import annotations

import math

import numpy as np

TWO_PI = 2.0 * math.pi


class Vec2:
    """Immutable-by-convention 2-D vector for the simulator hot path.

    Hand-rolled with ``__slots__`` rather than a frozen dataclass: the
    simulator creates several vectors per control tick, and the dataclass
    ``__init__`` machinery was a measurable slice of the tick loop. Value
    semantics (equality, hashing, repr) match the previous dataclass.
    Every operation returns a new vector; nothing in the codebase mutates
    one, and neither should you (it is hashed by value).
    """

    __slots__ = ("x", "y")

    def __init__(self, x: float, y: float):
        self.x = x
        self.y = y

    def __eq__(self, other) -> bool:
        if other.__class__ is Vec2:
            return self.x == other.x and self.y == other.y
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.x, self.y))

    def __repr__(self) -> str:
        return f"Vec2(x={self.x!r}, y={self.y!r})"

    def __reduce__(self):
        return (Vec2, (self.x, self.y))

    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Vec2":
        return Vec2(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def dot(self, other: "Vec2") -> float:
        """Dot product."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Vec2") -> float:
        """2-D scalar cross product (z component of the 3-D cross)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length."""
        return math.hypot(self.x, self.y)

    def norm_sq(self) -> float:
        """Squared Euclidean length (cheaper than ``norm() ** 2``)."""
        return self.x * self.x + self.y * self.y

    def normalized(self) -> "Vec2":
        """Unit vector in the same direction.

        Raises:
            ZeroDivisionError: for the zero vector.
        """
        n = self.norm()
        if n == 0.0:
            raise ZeroDivisionError("cannot normalize the zero vector")
        return Vec2(self.x / n, self.y / n)

    def distance_to(self, other: "Vec2") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def heading(self) -> float:
        """Angle of the vector w.r.t. the +x axis, in ``(-pi, pi]``."""
        return math.atan2(self.y, self.x)

    def as_array(self) -> np.ndarray:
        """Copy into a ``(2,)`` float64 numpy array."""
        return np.array([self.x, self.y], dtype=np.float64)

    @staticmethod
    def from_array(arr) -> "Vec2":
        """Build from any length-2 sequence."""
        return Vec2(float(arr[0]), float(arr[1]))


def normalize_angle(angle: float) -> float:
    """Wrap ``angle`` (radians) into ``(-pi, pi]``."""
    wrapped = math.fmod(angle + math.pi, TWO_PI)
    if wrapped <= 0.0:
        wrapped += TWO_PI
    return wrapped - math.pi


def angle_diff(a: float, b: float) -> float:
    """Smallest signed difference ``a - b`` wrapped into ``(-pi, pi]``."""
    return normalize_angle(a - b)


def heading_to_unit(heading: float) -> Vec2:
    """Unit vector pointing along ``heading``."""
    return Vec2(math.cos(heading), math.sin(heading))


def unit_to_heading(v: Vec2) -> float:
    """Inverse of :func:`heading_to_unit` for non-zero vectors."""
    return v.heading()


def rotate(v: Vec2, angle: float) -> Vec2:
    """Rotate ``v`` counter-clockwise by ``angle`` radians."""
    c, s = math.cos(angle), math.sin(angle)
    return Vec2(c * v.x - s * v.y, s * v.x + c * v.y)
