"""Batched ray casting against a static set of segments.

The segment set is flattened into numpy arrays once, so each cast is a
vectorized intersection over all segments rather than a Python loop. This
is the hot path of the simulator: every control tick casts at least five
rays (the Multi-ranger beams) plus camera visibility rays.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

import numpy as np

from repro.errors import GeometryError
from repro.geometry.segments import Segment
from repro.geometry.vec import Vec2

_EPS = 1e-12


class RayCaster:
    """Casts rays against an immutable collection of segments."""

    def __init__(self, segments: Iterable[Segment]):
        segs: List[Segment] = list(segments)
        if not segs:
            raise GeometryError("RayCaster needs at least one segment")
        self._segments = segs
        self._ax = np.array([s.a.x for s in segs], dtype=np.float64)
        self._ay = np.array([s.a.y for s in segs], dtype=np.float64)
        self._ex = np.array([s.b.x - s.a.x for s in segs], dtype=np.float64)
        self._ey = np.array([s.b.y - s.a.y for s in segs], dtype=np.float64)

    @property
    def segments(self) -> List[Segment]:
        """The segments this caster was built from (copy)."""
        return list(self._segments)

    def cast(self, origin: Vec2, heading: float, max_range: float = math.inf) -> float:
        """Distance to the first hit along ``heading``.

        Returns:
            The hit distance, or ``max_range`` if nothing is hit within it.
        """
        d = self._cast_distance(origin, heading)
        if d is None or d > max_range:
            return max_range
        return d

    def cast_hit(self, origin: Vec2, heading: float) -> Optional[float]:
        """Like :meth:`cast` but returns ``None`` on a miss (unbounded range)."""
        return self._cast_distance(origin, heading)

    def cast_many(
        self, origin: Vec2, headings: Iterable[float], max_range: float = math.inf
    ) -> np.ndarray:
        """Cast several rays from one origin; returns an array of distances."""
        return np.array(
            [self.cast(origin, h, max_range) for h in headings], dtype=np.float64
        )

    def line_of_sight(self, a: Vec2, b: Vec2, slack: float = 1e-6) -> bool:
        """True if the open segment from ``a`` to ``b`` hits no stored segment.

        ``slack`` shortens the tested segment at the far end so that a ray
        aimed exactly at a point lying *on* an obstacle boundary (e.g. an
        object leaning against a wall) still counts as visible.
        """
        dist = a.distance_to(b)
        if dist < _EPS:
            return True
        hit = self._cast_distance(a, (b - a).heading())
        return hit is None or hit >= dist - slack

    def _cast_distance(self, origin: Vec2, heading: float) -> Optional[float]:
        dx, dy = math.cos(heading), math.sin(heading)
        denom = dx * self._ey - dy * self._ex
        ox = self._ax - origin.x
        oy = self._ay - origin.y
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            t = (ox * self._ey - oy * self._ex) / denom
            u = (ox * dy - oy * dx) / denom
        valid = (np.abs(denom) > _EPS) & (t >= 0.0) & (u >= -1e-9) & (u <= 1.0 + 1e-9)
        if not np.any(valid):
            return None
        return float(np.min(t[valid]))
