"""Batched ray casting against a static set of segments.

The segment set is flattened into numpy arrays once, so a cast is a
vectorized intersection over segments rather than a Python loop. This is
the hot path of the simulator: every control tick casts at least five
rays (the Multi-ranger beams) plus camera visibility rays.

Two execution strategies share one intersection formula:

- a *brute-force* broadcast kernel: all ``R`` rays of a query are
  intersected with all ``S`` segments in a single ``(R, S)`` numpy
  broadcast, with preallocated scratch buffers so steady-state casts
  allocate nothing but the returned ``(R,)`` result;
- a *uniform-grid* walk: segments are bucketed into grid cells once, and
  each ray steps through the cells it crosses (a DDA walk), testing only
  the segments bucketed there. Work becomes proportional to the cells
  crossed instead of the total segment count, which is what makes dense
  worlds cheap.

The two are bit-identical by construction -- both evaluate the same IEEE
expressions per (ray, segment) pair and take the same minimum; the grid
merely skips segments that cannot contain it. ``accel="auto"`` (the
default) picks the grid above :data:`GRID_SEGMENT_THRESHOLD` segments and
the broadcast kernel below it; ``accel="none"`` forces the brute-force
reference path, which the equivalence tests and benchmarks pin against.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import GeometryError
from repro.geometry.segments import Segment
from repro.geometry.vec import Vec2

_EPS = 1e-12

#: Slack on the segment parameter ``u``: rays grazing an endpoint within
#: this tolerance still count as hits (matches the historical behaviour).
_U_SLACK = 1e-9

#: Segment count at which ``accel="auto"`` switches to the uniform-grid
#: walk. On structured rooms the DDA walk terminates after a handful of
#: cells, so it overtakes the dense kernels early (measured crossover on
#: room geometry is ~10-16 segments); below it the scalar loop is cheaper.
GRID_SEGMENT_THRESHOLD = 16

#: Conservative inflation (metres) applied when bucketing segments into
#: grid cells, covering the ``u`` tolerance and boundary rounding.
_GRID_PAD = 1e-6

#: Queries with rays x segments at or below this run as a scalar Python
#: loop: below ~128 pairs the interpreter beats the ~20 us fixed overhead
#: of a numpy broadcast. Same expressions, so results stay bit-identical.
_SCALAR_MAX_PAIRS = 128


class _UniformGrid:
    """Segments bucketed into a uniform cell grid, walked per ray.

    Scalar Python arithmetic here evaluates exactly the expressions of
    the broadcast kernel, so hit distances are bit-identical; the walk
    only changes *which* segments are examined, never the result.
    """

    __slots__ = (
        "x0",
        "y0",
        "cw",
        "ch",
        "ncx",
        "ncy",
        "xmax",
        "ymax",
        "buckets",
        "ax",
        "ay",
        "ex",
        "ey",
        "stamps",
        "epoch",
    )

    def __init__(
        self, ax: np.ndarray, ay: np.ndarray, ex: np.ndarray, ey: np.ndarray
    ):
        n = ax.size
        bx = np.minimum(ax, ax + ex)
        by = np.minimum(ay, ay + ey)
        tx = np.maximum(ax, ax + ex)
        ty = np.maximum(ay, ay + ey)
        self.x0 = float(bx.min()) - _GRID_PAD
        self.y0 = float(by.min()) - _GRID_PAD
        self.xmax = float(tx.max()) + _GRID_PAD
        self.ymax = float(ty.max()) + _GRID_PAD
        width = max(self.xmax - self.x0, 1e-9)
        height = max(self.ymax - self.y0, 1e-9)
        # ~sqrt(S) cells per axis keeps a handful of segments per bucket
        # for typical room geometry without exploding bucket memory.
        cells = int(min(128, max(4, math.ceil(math.sqrt(n)))))
        self.ncx = cells
        self.ncy = cells
        self.cw = width / cells
        self.ch = height / cells
        buckets: List[List[int]] = [[] for _ in range(cells * cells)]
        for i in range(n):
            ix0 = self._clamp_x(int((bx[i] - _GRID_PAD - self.x0) / self.cw))
            ix1 = self._clamp_x(int((tx[i] + _GRID_PAD - self.x0) / self.cw))
            iy0 = self._clamp_y(int((by[i] - _GRID_PAD - self.y0) / self.ch))
            iy1 = self._clamp_y(int((ty[i] + _GRID_PAD - self.y0) / self.ch))
            for iy in range(iy0, iy1 + 1):
                row = iy * cells
                for ix in range(ix0, ix1 + 1):
                    buckets[row + ix].append(i)
        self.buckets = buckets
        # Plain Python lists index ~3x faster than numpy scalars in the
        # per-segment inner loop below.
        self.ax = ax.tolist()
        self.ay = ay.tolist()
        self.ex = ex.tolist()
        self.ey = ey.tolist()
        self.stamps = [0] * n
        self.epoch = 0

    def _clamp_x(self, ix: int) -> int:
        return 0 if ix < 0 else (self.ncx - 1 if ix >= self.ncx else ix)

    def _clamp_y(self, iy: int) -> int:
        return 0 if iy < 0 else (self.ncy - 1 if iy >= self.ncy else iy)

    def cast(self, ox: float, oy: float, dx: float, dy: float, max_t: float) -> float:
        """First-hit distance along ``(dx, dy)``, or ``inf`` beyond ``max_t``.

        Any hit at ``t <= max_t`` is reported exactly; hits beyond
        ``max_t`` may be reported as ``inf``, which every caller treats
        identically (saturated / visible).
        """
        # Clip the ray to the grid bounding box (slab test per axis).
        tmin = 0.0
        tmax = max_t
        if dx != 0.0:
            t1 = (self.x0 - ox) / dx
            t2 = (self.xmax - ox) / dx
            if t1 > t2:
                t1, t2 = t2, t1
            if t1 > tmin:
                tmin = t1
            if t2 < tmax:
                tmax = t2
        elif ox < self.x0 or ox > self.xmax:
            return math.inf
        if dy != 0.0:
            t1 = (self.y0 - oy) / dy
            t2 = (self.ymax - oy) / dy
            if t1 > t2:
                t1, t2 = t2, t1
            if t1 > tmin:
                tmin = t1
            if t2 < tmax:
                tmax = t2
        elif oy < self.y0 or oy > self.ymax:
            return math.inf
        if tmin > tmax:
            return math.inf

        px = ox + dx * tmin
        py = oy + dy * tmin
        ix = self._clamp_x(int((px - self.x0) / self.cw))
        iy = self._clamp_y(int((py - self.y0) / self.ch))
        if dx > 0.0:
            step_x = 1
            t_max_x = tmin + (self.x0 + (ix + 1) * self.cw - px) / dx
            t_delta_x = self.cw / dx
        elif dx < 0.0:
            step_x = -1
            t_max_x = tmin + (self.x0 + ix * self.cw - px) / dx
            t_delta_x = -self.cw / dx
        else:
            step_x = 0
            t_max_x = math.inf
            t_delta_x = math.inf
        if dy > 0.0:
            step_y = 1
            t_max_y = tmin + (self.y0 + (iy + 1) * self.ch - py) / dy
            t_delta_y = self.ch / dy
        elif dy < 0.0:
            step_y = -1
            t_max_y = tmin + (self.y0 + iy * self.ch - py) / dy
            t_delta_y = -self.ch / dy
        else:
            step_y = 0
            t_max_y = math.inf
            t_delta_y = math.inf

        self.epoch += 1
        epoch = self.epoch
        stamps = self.stamps
        ax, ay, ex, ey = self.ax, self.ay, self.ex, self.ey
        buckets = self.buckets
        best = math.inf
        while True:
            for i in buckets[iy * self.ncx + ix]:
                if stamps[i] == epoch:
                    continue
                stamps[i] = epoch
                sex = ex[i]
                sey = ey[i]
                denom = dx * sey - dy * sex
                if not abs(denom) > _EPS:
                    continue
                sox = ax[i] - ox
                soy = ay[i] - oy
                t = (sox * sey - soy * sex) / denom
                if not 0.0 <= t < best:
                    continue
                u = (sox * dy - soy * dx) / denom
                if -_U_SLACK <= u <= 1.0 + _U_SLACK:
                    best = t
            t_next = t_max_x if t_max_x < t_max_y else t_max_y
            # Every unexamined segment lies in a cell the ray enters at
            # t >= t_next (minus the bucketing pad), so a strictly closer
            # confirmed hit ends the walk.
            if best <= t_next - _U_SLACK:
                break
            if t_next > tmax:
                break
            if t_max_x < t_max_y:
                ix += step_x
                if ix < 0 or ix >= self.ncx:
                    break
                t_max_x += t_delta_x
            else:
                iy += step_y
                if iy < 0 or iy >= self.ncy:
                    break
                t_max_y += t_delta_y
        return best


class RayCaster:
    """Casts rays against an immutable collection of segments.

    Args:
        segments: the static geometry to cast against.
        accel: ``"auto"`` (grid above :data:`GRID_SEGMENT_THRESHOLD`
            segments), ``"grid"`` (always), or ``"none"`` (brute-force
            broadcast reference path).
        grid_threshold: segment count at which ``"auto"`` enables the
            grid.
    """

    def __init__(
        self,
        segments: Iterable[Segment],
        accel: str = "auto",
        grid_threshold: int = GRID_SEGMENT_THRESHOLD,
    ):
        segs: Tuple[Segment, ...] = tuple(segments)
        if not segs:
            raise GeometryError("RayCaster needs at least one segment")
        if accel not in ("auto", "grid", "none"):
            raise GeometryError(f"unknown accel mode {accel!r}")
        self._segments = segs
        n = len(segs)
        self._n = n
        self._ax = np.array([s.a.x for s in segs], dtype=np.float64)
        self._ay = np.array([s.a.y for s in segs], dtype=np.float64)
        self._ex = np.array([s.b.x - s.a.x for s in segs], dtype=np.float64)
        self._ey = np.array([s.b.y - s.a.y for s in segs], dtype=np.float64)
        self._grid: Optional[_UniformGrid] = None
        if accel == "grid" or (accel == "auto" and n >= grid_threshold):
            self._grid = _UniformGrid(self._ax, self._ay, self._ex, self._ey)
        self.accel = "grid" if self._grid is not None else "none"
        # Python-list mirrors for the small-problem scalar path (list
        # indexing is ~3x cheaper than numpy scalar access).
        self._lax = self._ax.tolist()
        self._lay = self._ay.tolist()
        self._lex = self._ex.tolist()
        self._ley = self._ey.tolist()
        # Scratch buffers for the broadcast kernel, grown on demand; the
        # (n,) origin-relative buffers are query-independent in size.
        self._ox = np.empty(n, dtype=np.float64)
        self._oy = np.empty(n, dtype=np.float64)
        self._tn1 = np.empty(n, dtype=np.float64)
        self._tn2 = np.empty(n, dtype=np.float64)
        self._cap_r = 0
        self._w_a = self._w_b = self._w_c = None
        self._m_a = self._m_b = None

    @property
    def segments(self) -> Tuple[Segment, ...]:
        """The segments this caster was built from (shared, not copied)."""
        return self._segments

    def _ensure_scratch(self, r: int) -> None:
        if r <= self._cap_r:
            return
        cap = max(8, 2 * self._cap_r, r)
        shape = (cap, self._n)
        self._w_a = np.empty(shape, dtype=np.float64)
        self._w_b = np.empty(shape, dtype=np.float64)
        self._w_c = np.empty(shape, dtype=np.float64)
        self._m_a = np.empty(shape, dtype=bool)
        self._m_b = np.empty(shape, dtype=bool)
        self._cap_r = cap

    def _hits_brute(
        self, origin: Vec2, dirx: np.ndarray, diry: np.ndarray
    ) -> np.ndarray:
        """Broadcast kernel: first-hit distance per ray, ``inf`` on miss."""
        r = dirx.shape[0]
        self._ensure_scratch(r)
        a = self._w_a[:r]
        b = self._w_b[:r]
        c = self._w_c[:r]
        ok = self._m_a[:r]
        tmp = self._m_b[:r]
        ox = np.subtract(self._ax, origin.x, out=self._ox)
        oy = np.subtract(self._ay, origin.y, out=self._oy)
        # t numerator is ray-independent: ox*ey - oy*ex.
        tn = np.multiply(ox, self._ey, out=self._tn1)
        tn -= np.multiply(oy, self._ex, out=self._tn2)
        cx = dirx[:, None]
        cy = diry[:, None]
        # denom = dx*ey - dy*ex
        np.multiply(cx, self._ey[None, :], out=a)
        np.multiply(cy, self._ex[None, :], out=b)
        np.subtract(a, b, out=a)
        # u numerator = ox*dy - oy*dx
        np.multiply(ox[None, :], cy, out=b)
        np.multiply(oy[None, :], cx, out=c)
        np.subtract(b, c, out=b)
        np.abs(a, out=c)
        np.greater(c, _EPS, out=ok)
        # (np.errstate is single-use in numpy 2.x, so build it per call;
        # this kernel only runs for batches large enough to amortize it.)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            c.fill(np.inf)
            np.divide(tn[None, :], a, out=c, where=ok)  # t (inf where denom ~ 0)
            np.divide(b, a, out=b, where=ok)  # u (garbage where denom ~ 0)
        np.greater_equal(c, 0.0, out=tmp)
        ok &= tmp
        np.greater_equal(b, -_U_SLACK, out=tmp)
        ok &= tmp
        np.less_equal(b, 1.0 + _U_SLACK, out=tmp)
        ok &= tmp
        np.logical_not(ok, out=tmp)
        np.copyto(c, np.inf, where=tmp)
        return c.min(axis=1)

    def _hits_scalar(
        self, origin: Vec2, dirx: Sequence[float], diry: Sequence[float]
    ) -> List[float]:
        """Scalar-loop kernel for small ray x segment products.

        Evaluates the identical IEEE expressions as :meth:`_hits_brute`
        per (ray, segment) pair, so the two paths agree bit-for-bit.
        """
        ax, ay, ex, ey = self._lax, self._lay, self._lex, self._ley
        ox_f, oy_f = origin.x, origin.y
        n = self._n
        hits = [math.inf] * len(dirx)
        for r in range(len(dirx)):
            dx = dirx[r]
            dy = diry[r]
            best = math.inf
            for i in range(n):
                sex = ex[i]
                sey = ey[i]
                denom = dx * sey - dy * sex
                if not abs(denom) > _EPS:
                    continue
                sox = ax[i] - ox_f
                soy = ay[i] - oy_f
                t = (sox * sey - soy * sex) / denom
                if not 0.0 <= t < best:
                    continue
                u = (sox * dy - soy * dx) / denom
                if -_U_SLACK <= u <= 1.0 + _U_SLACK:
                    best = t
            hits[r] = best
        return hits

    def hit_distances(
        self,
        origin: Vec2,
        dirx: Sequence[float],
        diry: Sequence[float],
        max_ts: Union[float, Sequence[float]] = math.inf,
    ) -> Sequence[float]:
        """First-hit distances for rays from one origin; ``inf`` = miss.

        Returns a float list (scalar/grid paths) or ndarray (broadcast
        kernel); callers index it. ``max_ts`` (scalar or per-ray) is a
        walk bound for the grid path: hits at ``t <= max_ts`` are exact,
        farther hits may read ``inf``. The brute path ignores it and
        reports every hit, which callers collapse to the same answer.
        """
        grid = self._grid
        if grid is None:
            if len(dirx) * self._n <= _SCALAR_MAX_PAIRS:
                return self._hits_scalar(origin, dirx, diry)
            dx = np.asarray(dirx, dtype=np.float64)
            dy = np.asarray(diry, dtype=np.float64)
            return self._hits_brute(origin, dx, dy)
        ox, oy = origin.x, origin.y
        cast = grid.cast
        if isinstance(max_ts, (int, float)):
            return [
                cast(ox, oy, dirx[i], diry[i], max_ts) for i in range(len(dirx))
            ]
        return [
            cast(ox, oy, dirx[i], diry[i], max_ts[i]) for i in range(len(dirx))
        ]

    def cast(self, origin: Vec2, heading: float, max_range: float = math.inf) -> float:
        """Distance to the first hit along ``heading``.

        Returns:
            The hit distance, or ``max_range`` if nothing is hit within it.
        """
        d = self._cast_distance(origin, heading, max_range)
        if d is None or d > max_range:
            return max_range
        return d

    def cast_hit(self, origin: Vec2, heading: float) -> Optional[float]:
        """Like :meth:`cast` but returns ``None`` on a miss (unbounded range)."""
        return self._cast_distance(origin, heading, math.inf)

    def cast_many(
        self, origin: Vec2, headings: Iterable[float], max_range: float = math.inf
    ) -> np.ndarray:
        """Cast several rays from one origin; returns an array of distances.

        One batched kernel call replaces the historical per-heading Python
        loop; each entry equals ``cast(origin, heading, max_range)``
        bit-for-bit.
        """
        return np.array(
            self.cast_many_list(origin, headings, max_range), dtype=np.float64
        )

    def cast_many_list(
        self, origin: Vec2, headings: Iterable[float], max_range: float = math.inf
    ) -> List[float]:
        """:meth:`cast_many` as a plain float list.

        The Multi-ranger read consumes individual beam distances, and
        skipping the array round-trip keeps the 20 Hz read cheap.
        """
        hs = list(headings)
        if not hs:
            return []
        dirx = [math.cos(h) for h in hs]
        diry = [math.sin(h) for h in hs]
        hits = self.hit_distances(origin, dirx, diry, max_range)
        if isinstance(hits, np.ndarray):
            hits = hits.tolist()
        return [d if d < max_range else max_range for d in hits]

    def cast_fleet(
        self,
        oxs: np.ndarray,
        oys: np.ndarray,
        dirx: np.ndarray,
        diry: np.ndarray,
        max_range: float = math.inf,
    ) -> np.ndarray:
        """First-hit distances for ``R`` rays, each with its *own* origin.

        The multi-origin companion of :meth:`hit_distances`: one call
        resolves every drone's Multi-ranger beams for a whole fleet
        tick. Entry ``i`` equals the single-origin result for ray ``i``
        bit-for-bit -- the broadcast path evaluates exactly the IEEE
        expressions of :meth:`_hits_scalar` / :meth:`_hits_brute` per
        (ray, segment) pair and collapses them with the same minimum,
        and the grid path walks the identical DDA per ray. Misses (and,
        on the grid path, hits beyond ``max_range``) read ``inf``;
        callers clamp, exactly as with :meth:`hit_distances`.
        """
        ox = np.ascontiguousarray(oxs, dtype=np.float64)
        oy = np.ascontiguousarray(oys, dtype=np.float64)
        dx = np.ascontiguousarray(dirx, dtype=np.float64)
        dy = np.ascontiguousarray(diry, dtype=np.float64)
        grid = self._grid
        if grid is not None:
            cast = grid.cast
            lox = ox.tolist()
            loy = oy.tolist()
            ldx = dx.tolist()
            ldy = dy.tolist()
            return np.array(
                [
                    cast(lox[i], loy[i], ldx[i], ldy[i], max_range)
                    for i in range(len(lox))
                ],
                dtype=np.float64,
            )
        # Broadcast kernel over (R, S) with per-ray origins. Same
        # operator sequence as the single-origin kernels: sox = ax - ox,
        # denom = dx*ey - dy*ex, t = (sox*ey - soy*ex)/denom,
        # u = (sox*dy - soy*dx)/denom.
        sox = self._ax[None, :] - ox[:, None]
        soy = self._ay[None, :] - oy[:, None]
        cx = dx[:, None]
        cy = dy[:, None]
        denom = cx * self._ey[None, :] - cy * self._ex[None, :]
        ok = np.abs(denom) > _EPS
        tnum = sox * self._ey[None, :] - soy * self._ex[None, :]
        unum = sox * cy - soy * cx
        t = np.full(denom.shape, np.inf)
        u = np.empty(denom.shape)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            np.divide(tnum, denom, out=t, where=ok)
            np.divide(unum, denom, out=u, where=ok)
        ok &= t >= 0.0
        ok &= u >= -_U_SLACK
        ok &= u <= 1.0 + _U_SLACK
        np.copyto(t, np.inf, where=~ok)
        return t.min(axis=1)

    def line_of_sight(self, a: Vec2, b: Vec2, slack: float = 1e-6) -> bool:
        """True if the open segment from ``a`` to ``b`` hits no stored segment.

        ``slack`` shortens the tested segment at the far end so that a ray
        aimed exactly at a point lying *on* an obstacle boundary (e.g. an
        object leaning against a wall) still counts as visible.
        """
        dist = a.distance_to(b)
        if dist < _EPS:
            return True
        heading = (b - a).heading()
        hit = self._cast_distance(a, heading, dist)
        return hit is None or hit >= dist - slack

    def line_of_sight_many(
        self,
        origin: Vec2,
        targets: Sequence[Vec2],
        slack: Union[float, Sequence[float]] = 1e-6,
    ) -> np.ndarray:
        """Visibility of several targets from one origin, as a bool array.

        Entry ``i`` equals ``line_of_sight(origin, targets[i], slack_i)``;
        the occlusion rays are cast in one batched kernel call, which is
        what makes a camera frame cost one cast instead of one per object.
        """
        r = len(targets)
        out = np.empty(r, dtype=bool)
        if r == 0:
            return out
        slacks = (
            [slack] * r if isinstance(slack, (int, float)) else list(slack)
        )
        dirx = [0.0] * r
        diry = [0.0] * r
        dists = [0.0] * r
        for i, t in enumerate(targets):
            d = origin.distance_to(t)
            dists[i] = d
            if d < _EPS:
                continue  # direction unused; marked visible below
            heading = math.atan2(t.y - origin.y, t.x - origin.x)
            dirx[i] = math.cos(heading)
            diry[i] = math.sin(heading)
        hits = self.hit_distances(origin, dirx, diry, dists)
        for i in range(r):
            d = dists[i]
            out[i] = d < _EPS or hits[i] >= d - slacks[i]
        return out

    def _cast_distance(
        self, origin: Vec2, heading: float, max_t: float
    ) -> Optional[float]:
        dx, dy = math.cos(heading), math.sin(heading)
        if self._grid is not None:
            d = self._grid.cast(origin.x, origin.y, dx, dy, max_t)
            return None if d == math.inf else d
        hit = float(self.hit_distances(origin, (dx,), (dy,), max_t)[0])
        return None if hit == math.inf else hit
