"""Line segments and ray/segment intersection.

Walls and obstacle boundaries are stored as segments; the single-beam ToF
sensors are rays cast against them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import GeometryError
from repro.geometry.vec import Vec2

_EPS = 1e-12


@dataclass(frozen=True)
class Segment:
    """Segment between two endpoints ``a`` and ``b``."""

    a: Vec2
    b: Vec2

    def __post_init__(self) -> None:
        if self.a.distance_to(self.b) < _EPS:
            raise GeometryError(f"degenerate segment at {self.a}")

    def length(self) -> float:
        """Segment length."""
        return self.a.distance_to(self.b)

    def direction(self) -> Vec2:
        """Unit vector from ``a`` to ``b``."""
        return (self.b - self.a).normalized()

    def midpoint(self) -> Vec2:
        """Midpoint of the segment."""
        return Vec2((self.a.x + self.b.x) / 2.0, (self.a.y + self.b.y) / 2.0)

    def point_at(self, t: float) -> Vec2:
        """Point ``a + t * (b - a)`` for ``t`` in ``[0, 1]``."""
        return Vec2(
            self.a.x + t * (self.b.x - self.a.x),
            self.a.y + t * (self.b.y - self.a.y),
        )

    def distance_to_point(self, p: Vec2) -> float:
        """Euclidean distance from ``p`` to the closest point on the segment."""
        d = self.b - self.a
        t = (p - self.a).dot(d) / d.norm_sq()
        t = min(1.0, max(0.0, t))
        return self.point_at(t).distance_to(p)


def ray_segment_intersection(
    origin: Vec2, heading: float, segment: Segment
) -> Optional[float]:
    """Distance from ``origin`` along ``heading`` to ``segment``.

    Returns:
        The non-negative distance at which the ray first meets the segment,
        or ``None`` if the ray misses it.
    """
    dx, dy = math.cos(heading), math.sin(heading)
    ex = segment.b.x - segment.a.x
    ey = segment.b.y - segment.a.y
    denom = dx * ey - dy * ex
    if abs(denom) < _EPS:
        return None  # ray parallel to the segment
    ox = segment.a.x - origin.x
    oy = segment.a.y - origin.y
    t = (ox * ey - oy * ex) / denom  # distance along the ray
    u = (ox * dy - oy * dx) / denom  # parameter along the segment
    if t < 0.0 or u < -_EPS or u > 1.0 + _EPS:
        return None
    return t
