"""Axis-aligned boxes and circles used for obstacles and collision checks."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.errors import GeometryError
from repro.geometry.segments import Segment
from repro.geometry.vec import Vec2


@dataclass(frozen=True)
class AABB:
    """Axis-aligned bounding box ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmax <= self.xmin or self.ymax <= self.ymin:
            raise GeometryError(
                f"empty AABB ({self.xmin}, {self.ymin}, {self.xmax}, {self.ymax})"
            )

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def center(self) -> Vec2:
        return Vec2((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    @property
    def area(self) -> float:
        return self.width * self.height

    def contains(self, p: Vec2, margin: float = 0.0) -> bool:
        """True if ``p`` lies inside the box shrunk by ``margin`` on each side."""
        return (
            self.xmin + margin <= p.x <= self.xmax - margin
            and self.ymin + margin <= p.y <= self.ymax - margin
        )

    def boundary_segments(self) -> List[Segment]:
        """The four edges as segments, counter-clockwise from the bottom."""
        bl = Vec2(self.xmin, self.ymin)
        br = Vec2(self.xmax, self.ymin)
        tr = Vec2(self.xmax, self.ymax)
        tl = Vec2(self.xmin, self.ymax)
        return [Segment(bl, br), Segment(br, tr), Segment(tr, tl), Segment(tl, bl)]

    def distance_to_point(self, p: Vec2) -> float:
        """Distance from ``p`` to the box boundary (0 if on it, >0 outside/inside)."""
        return min(s.distance_to_point(p) for s in self.boundary_segments())

    def inflate(self, amount: float) -> "AABB":
        """Grow (or shrink for negative ``amount``) the box on every side."""
        return AABB(
            self.xmin - amount,
            self.ymin - amount,
            self.xmax + amount,
            self.ymax + amount,
        )


@dataclass(frozen=True)
class Circle:
    """Circle used for cylindrical obstacles and the drone's footprint."""

    center: Vec2
    radius: float

    def __post_init__(self) -> None:
        if self.radius <= 0.0:
            raise GeometryError(f"non-positive circle radius {self.radius}")

    def contains(self, p: Vec2) -> bool:
        return self.center.distance_to(p) <= self.radius

    def boundary_segments(self, sides: int = 16) -> List[Segment]:
        """Polygonal approximation of the boundary with ``sides`` segments."""
        if sides < 3:
            raise GeometryError("a circle approximation needs >= 3 sides")
        points = []
        for i in range(sides):
            theta = 2.0 * math.pi * i / sides
            points.append(
                Vec2(
                    self.center.x + self.radius * math.cos(theta),
                    self.center.y + self.radius * math.sin(theta),
                )
            )
        return [Segment(points[i], points[(i + 1) % sides]) for i in range(sides)]
