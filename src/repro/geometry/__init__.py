"""2-D geometry primitives and ray casting.

Everything in the simulator that touches space goes through this package:
the room walls and obstacles are :class:`~repro.geometry.segments.Segment`
collections, the ToF sensors and the camera visibility checks are rays cast
against them with :class:`~repro.geometry.raycast.RayCaster`.
"""

from repro.geometry.vec import (
    Vec2,
    angle_diff,
    heading_to_unit,
    normalize_angle,
    rotate,
    unit_to_heading,
)
from repro.geometry.segments import Segment, ray_segment_intersection
from repro.geometry.shapes import AABB, Circle
from repro.geometry.raycast import GRID_SEGMENT_THRESHOLD, RayCaster

__all__ = [
    "GRID_SEGMENT_THRESHOLD",
    "Vec2",
    "angle_diff",
    "heading_to_unit",
    "normalize_angle",
    "rotate",
    "unit_to_heading",
    "Segment",
    "ray_segment_intersection",
    "AABB",
    "Circle",
    "RayCaster",
]
