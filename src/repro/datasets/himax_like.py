"""The synthetic *onboard* domain standing in for the Himax dataset.

The same scene renderer as the web domain, followed by a degradation
model of the Himax HM01B0 capture chain: grayscale conversion, defocus
blur, sensor noise, vignetting and exposure error. This reproduces the
domain shift the paper shows in Fig. 4 and measures in Table I (mAP drop
of models trained only on web data, recovered by fine-tuning).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.datasets.base import DetectionDataset, LabeledImage
from repro.datasets.openimages_like import render_scene


def _box_blur(channel: np.ndarray, passes: int) -> np.ndarray:
    """Separable 3x3 box blur applied ``passes`` times (edge-padded)."""
    out = channel
    for _ in range(passes):
        padded = np.pad(out, 1, mode="edge")
        out = (
            padded[:-2, 1:-1] + padded[2:, 1:-1] + padded[1:-1, :-2]
            + padded[1:-1, 2:] + padded[1:-1, 1:-1]
        ) / 5.0
    return out


def himax_degrade(
    image_chw: np.ndarray,
    rng: np.random.Generator,
    blur_passes: int = 2,
    noise_std: float = 0.03,
    vignette_strength: float = 0.35,
) -> np.ndarray:
    """Apply the onboard-camera degradation to a clean CHW image.

    Args:
        image_chw: ``(3, H, W)`` clean image in [0, 1].
        rng: noise randomness.
        blur_passes: defocus blur strength.
        noise_std: gaussian sensor noise.
        vignette_strength: brightness falloff at the image corners.

    Returns:
        A degraded ``(3, H, W)`` image whose three channels are the
        identical grayscale signal (the Himax sensor is monochrome; the
        detector keeps a 3-channel input, as training uses grayscale
        conversion as an augmentation).
    """
    _, h, w = image_chw.shape
    gray = 0.299 * image_chw[0] + 0.587 * image_chw[1] + 0.114 * image_chw[2]
    gray = _box_blur(gray, blur_passes)
    # Exposure error and contrast loss of the tiny sensor.
    gain = rng.uniform(0.75, 1.1)
    offset = rng.uniform(-0.05, 0.1)
    gray = gray * gain * 0.85 + 0.075 + offset
    # Vignetting.
    ys = (np.arange(h) - h / 2) / (h / 2)
    xs = (np.arange(w) - w / 2) / (w / 2)
    r2 = ys[:, None] ** 2 + xs[None, :] ** 2
    gray = gray * (1.0 - vignette_strength * r2 / 2.0)
    gray = gray + rng.normal(0.0, noise_std, size=gray.shape)
    gray = np.clip(gray, 0.0, 1.0)
    return np.repeat(gray[None, :, :], 3, axis=0)


def make_himax_like(
    n_images: int,
    hw: Tuple[int, int] = (48, 64),
    seed: Optional[int] = None,
    max_objects: int = 3,
) -> DetectionDataset:
    """Build an onboard-domain dataset of ``n_images`` scenes.

    The in-field dataset is roughly class-balanced (the authors collected
    it on purpose), so objects are drawn 50/50.
    """
    rng = np.random.default_rng(seed)
    items = []
    for _ in range(n_images):
        clean = render_scene(hw, rng, bottle_fraction=0.5, max_objects=max_objects)
        items.append(
            LabeledImage(
                image=himax_degrade(clean.image, rng),
                boxes=clean.boxes,
                labels=clean.labels,
            )
        )
    return DetectionDataset(items)
