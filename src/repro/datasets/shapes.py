"""Parametric renderer for bottles and tin cans.

Images are ``(H, W, 3)`` float arrays in ``[0, 1]`` during drawing (the
dataset builders transpose to CHW at the end). Objects are drawn with
simple filled primitives but carry the class-discriminative cues a real
detector keys on: bottles are tall and narrow with a neck; cans are short
and wide with a bright metallic lid and a label band.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

BBox = Tuple[float, float, float, float]


def _fill_rect(img: np.ndarray, x0: int, y0: int, x1: int, y1: int, color) -> None:
    h, w, _ = img.shape
    x0, x1 = max(0, x0), min(w, x1)
    y0, y1 = max(0, y0), min(h, y1)
    if x1 > x0 and y1 > y0:
        img[y0:y1, x0:x1] = color


def _fill_ellipse(img: np.ndarray, cx: float, cy: float, rx: float, ry: float, color) -> None:
    h, w, _ = img.shape
    y0, y1 = max(0, int(cy - ry)), min(h, int(cy + ry) + 1)
    x0, x1 = max(0, int(cx - rx)), min(w, int(cx + rx) + 1)
    if x1 <= x0 or y1 <= y0 or rx <= 0 or ry <= 0:
        return
    ys, xs = np.mgrid[y0:y1, x0:x1]
    mask = ((xs - cx) / rx) ** 2 + ((ys - cy) / ry) ** 2 <= 1.0
    img[y0:y1, x0:x1][mask] = color


#: Bottle body colors (saturated glass/plastic tones).
BOTTLE_COLORS = (
    (0.10, 0.35, 0.12),
    (0.30, 0.16, 0.08),
    (0.08, 0.20, 0.40),
    (0.25, 0.28, 0.10),
)

#: Can body colors (metallic grays and branded reds/blues).
CAN_COLORS = (
    (0.62, 0.62, 0.65),
    (0.70, 0.15, 0.12),
    (0.15, 0.25, 0.60),
    (0.55, 0.55, 0.45),
)


def draw_bottle(
    img: np.ndarray,
    cx: float,
    base_y: float,
    height: float,
    rng: np.random.Generator,
) -> Optional[BBox]:
    """Draw a bottle standing on ``base_y`` centred at ``cx``.

    Args:
        img: HWC canvas, modified in place.
        cx: horizontal centre in pixels.
        base_y: y pixel of the bottle base (bottom).
        height: total bottle height in pixels.
        rng: randomizes colour and proportions.

    Returns:
        The pixel bounding box ``(xmin, ymin, xmax, ymax)``, or ``None``
        if the shape fell entirely outside the canvas.
    """
    h_img, w_img, _ = img.shape
    body_w = height * rng.uniform(0.26, 0.34)
    body_h = height * 0.62
    neck_w = body_w * rng.uniform(0.32, 0.42)
    neck_h = height * 0.30
    cap_h = height - body_h - neck_h
    color = np.array(BOTTLE_COLORS[rng.integers(len(BOTTLE_COLORS))])
    color = np.clip(color + rng.normal(0.0, 0.03, 3), 0.0, 1.0)

    body_top = base_y - body_h
    _fill_rect(
        img,
        int(cx - body_w / 2),
        int(body_top),
        int(cx + body_w / 2),
        int(base_y),
        color,
    )
    # Rounded shoulders: an ellipse blending body into neck.
    _fill_ellipse(img, cx, body_top, body_w / 2, height * 0.06, color)
    neck_top = body_top - neck_h
    _fill_rect(
        img,
        int(cx - neck_w / 2),
        int(neck_top),
        int(cx + neck_w / 2),
        int(body_top),
        color * 0.85,
    )
    cap_color = np.clip(color * 0.5 + 0.2, 0.0, 1.0)
    _fill_rect(
        img,
        int(cx - neck_w / 2),
        int(neck_top - cap_h),
        int(cx + neck_w / 2),
        int(neck_top),
        cap_color,
    )
    # Specular highlight strip.
    _fill_rect(
        img,
        int(cx - body_w * 0.30),
        int(body_top + body_h * 0.1),
        int(cx - body_w * 0.15),
        int(base_y - body_h * 0.1),
        np.clip(color + 0.25, 0.0, 1.0),
    )
    xmin = max(0.0, cx - body_w / 2)
    xmax = min(float(w_img), cx + body_w / 2)
    ymin = max(0.0, neck_top - cap_h)
    ymax = min(float(h_img), base_y)
    if xmax - xmin < 2.0 or ymax - ymin < 2.0:
        return None
    return (xmin, ymin, xmax, ymax)


def draw_can(
    img: np.ndarray,
    cx: float,
    base_y: float,
    height: float,
    rng: np.random.Generator,
) -> Optional[BBox]:
    """Draw a tin can standing on ``base_y`` centred at ``cx``.

    Same contract as :func:`draw_bottle`.
    """
    h_img, w_img, _ = img.shape
    width = height * rng.uniform(0.62, 0.75)
    color = np.array(CAN_COLORS[rng.integers(len(CAN_COLORS))])
    color = np.clip(color + rng.normal(0.0, 0.03, 3), 0.0, 1.0)
    top_y = base_y - height
    _fill_rect(
        img,
        int(cx - width / 2),
        int(top_y),
        int(cx + width / 2),
        int(base_y),
        color,
    )
    # Bright metallic lid.
    lid = np.array((0.85, 0.85, 0.88))
    _fill_ellipse(img, cx, top_y, width / 2, height * 0.10, lid)
    # Label band around the middle.
    band_color = np.clip(1.0 - color, 0.0, 1.0)
    _fill_rect(
        img,
        int(cx - width / 2),
        int(top_y + height * 0.38),
        int(cx + width / 2),
        int(top_y + height * 0.62),
        band_color,
    )
    xmin = max(0.0, cx - width / 2)
    xmax = min(float(w_img), cx + width / 2)
    ymin = max(0.0, top_y - height * 0.10)
    ymax = min(float(h_img), base_y)
    if xmax - xmin < 2.0 or ymax - ymin < 2.0:
        return None
    return (xmin, ymin, xmax, ymax)


def draw_background(img: np.ndarray, rng: np.random.Generator) -> None:
    """Fill the canvas with a wall/floor scene plus low-contrast clutter."""
    h, w, _ = img.shape
    horizon = int(h * rng.uniform(0.55, 0.75))
    wall = rng.uniform(0.45, 0.75)
    floor = rng.uniform(0.25, 0.5)
    tint = rng.normal(0.0, 0.02, 3)
    img[:horizon] = np.clip(wall + tint, 0.0, 1.0)
    img[horizon:] = np.clip(floor + tint * 0.5, 0.0, 1.0)
    # Vertical shading gradient.
    grad = np.linspace(-0.06, 0.06, h)[:, None, None]
    np.clip(img + grad, 0.0, 1.0, out=img)
    # Clutter: low-contrast rectangles (furniture, shadows, posters).
    for _ in range(rng.integers(2, 6)):
        cw = int(w * rng.uniform(0.05, 0.25))
        ch = int(h * rng.uniform(0.05, 0.25))
        x0 = int(rng.uniform(0, w - cw))
        y0 = int(rng.uniform(0, h - ch))
        shade = np.clip(
            img[min(y0, h - 1), min(x0, w - 1)] + rng.normal(0.0, 0.10, 3), 0.0, 1.0
        )
        _fill_rect(img, x0, y0, x0 + cw, y0 + ch, shade)
