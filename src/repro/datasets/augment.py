"""Training-time augmentations (paper Sec. IV-A).

"During training, the images are extended with photometric
augmentations, such as flipping, brightness adjustment, random cropping,
and grayscale conversion, individually applied with a probability of
0.5." The class rebalancing by horizontal translation (Sec. III-D) is
also implemented here.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.datasets.base import DetectionDataset, LabeledImage


def flip_horizontal(image: np.ndarray, boxes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Mirror the image and its boxes left-right."""
    flipped = image[:, :, ::-1].copy()
    new_boxes = boxes.copy()
    if boxes.size:
        new_boxes[:, 0] = 1.0 - boxes[:, 2]
        new_boxes[:, 2] = 1.0 - boxes[:, 0]
    return flipped, new_boxes


def adjust_brightness(image: np.ndarray, factor: float) -> np.ndarray:
    """Scale brightness, clipping to [0, 1]."""
    return np.clip(image * factor, 0.0, 1.0)


def to_grayscale(image: np.ndarray) -> np.ndarray:
    """Luma conversion replicated onto all three channels."""
    gray = 0.299 * image[0] + 0.587 * image[1] + 0.114 * image[2]
    return np.repeat(gray[None], 3, axis=0)


def random_crop(
    image: np.ndarray,
    boxes: np.ndarray,
    labels: np.ndarray,
    rng: np.random.Generator,
    min_keep: float = 0.75,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Crop a random window keeping >= ``min_keep`` of each side.

    The crop is resized back to the original resolution by nearest
    neighbour; boxes are re-normalized and objects whose centre leaves the
    window are dropped.
    """
    _, h, w = image.shape
    keep_h = rng.uniform(min_keep, 1.0)
    keep_w = rng.uniform(min_keep, 1.0)
    ch, cw = max(2, int(h * keep_h)), max(2, int(w * keep_w))
    y0 = int(rng.uniform(0, h - ch)) if h > ch else 0
    x0 = int(rng.uniform(0, w - cw)) if w > cw else 0
    window = image[:, y0 : y0 + ch, x0 : x0 + cw]
    # Nearest-neighbour resize back to (h, w).
    yi = np.clip((np.arange(h) * ch / h).astype(int), 0, ch - 1)
    xi = np.clip((np.arange(w) * cw / w).astype(int), 0, cw - 1)
    resized = window[:, yi][:, :, xi]
    new_boxes: List[List[float]] = []
    new_labels: List[int] = []
    for box, label in zip(boxes, labels):
        cx = (box[0] + box[2]) / 2.0 * w
        cy = (box[1] + box[3]) / 2.0 * h
        if not (x0 <= cx <= x0 + cw and y0 <= cy <= y0 + ch):
            continue
        xmin = (np.clip(box[0] * w, x0, x0 + cw) - x0) / cw
        xmax = (np.clip(box[2] * w, x0, x0 + cw) - x0) / cw
        ymin = (np.clip(box[1] * h, y0, y0 + ch) - y0) / ch
        ymax = (np.clip(box[3] * h, y0, y0 + ch) - y0) / ch
        if xmax - xmin > 1e-3 and ymax - ymin > 1e-3:
            new_boxes.append([xmin, ymin, xmax, ymax])
            new_labels.append(int(label))
    return (
        resized,
        np.array(new_boxes, dtype=np.float64).reshape(-1, 4),
        np.array(new_labels, dtype=int),
    )


def photometric_augment(
    item: LabeledImage, rng: np.random.Generator, p: float = 0.5
) -> LabeledImage:
    """Apply each of the paper's four augmentations with probability ``p``."""
    image, boxes, labels = item.image, item.boxes, item.labels
    if rng.uniform() < p:
        image, boxes = flip_horizontal(image, boxes)
    if rng.uniform() < p:
        image = adjust_brightness(image, rng.uniform(0.6, 1.4))
    if rng.uniform() < p:
        image, boxes, labels = random_crop(image, boxes, labels, rng)
    if rng.uniform() < p:
        image = to_grayscale(image)
    return LabeledImage(image=image, boxes=boxes, labels=labels)


def translate_horizontal(
    item: LabeledImage, rng: np.random.Generator, max_fraction: float = 0.10
) -> LabeledImage:
    """Shift the image horizontally by up to ``max_fraction`` of its width.

    This is the paper's rebalancing transform for the tin-can class
    ("horizontal translation up to 10% of the image's width"). The
    vacated strip is edge-padded; boxes are shifted and clipped.
    """
    _, h, w = item.image.shape
    shift = int(round(rng.uniform(-max_fraction, max_fraction) * w))
    image = np.roll(item.image, shift, axis=2)
    if shift > 0:
        image[:, :, :shift] = image[:, :, shift : shift + 1]
    elif shift < 0:
        image[:, :, shift:] = image[:, :, shift - 1 : shift]
    boxes = item.boxes.copy()
    if boxes.size:
        boxes[:, [0, 2]] = np.clip(boxes[:, [0, 2]] + shift / w, 0.0, 1.0)
    keep = (boxes[:, 2] - boxes[:, 0]) > 1e-3 if boxes.size else np.array([], dtype=bool)
    return LabeledImage(
        image=image,
        boxes=boxes[keep] if boxes.size else boxes,
        labels=item.labels[keep] if boxes.size else item.labels,
    )


def rebalance_with_translation(
    dataset: DetectionDataset,
    minority_class: int = 1,
    seed: Optional[int] = None,
    num_classes: int = 2,
) -> DetectionDataset:
    """Balance class instance counts by duplicating minority-class images.

    Mirrors Sec. III-D: additional tin-can images are generated through
    horizontal translation until the instance counts are roughly equal.
    """
    rng = np.random.default_rng(seed)
    counts = dataset.class_counts(num_classes)
    majority = max(counts)
    minority_items = [
        item for item in dataset if minority_class in set(item.labels.tolist())
    ]
    items = list(dataset)
    if not minority_items:
        return DetectionDataset(items)
    while counts[minority_class] < majority * 0.9:
        source = minority_items[int(rng.integers(len(minority_items)))]
        new_item = translate_horizontal(source, rng)
        items.append(new_item)
        for label in new_item.labels:
            counts[int(label)] += 1
    return DetectionDataset(items)
