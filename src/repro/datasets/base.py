"""Dataset containers shared by both synthetic domains."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ShapeError


@dataclass
class LabeledImage:
    """One image with its ground truth.

    Attributes:
        image: ``(3, H, W)`` float array in ``[0, 1]``.
        boxes: ``(G, 4)`` normalized corner boxes.
        labels: ``(G,)`` zero-based class ids (0 = bottle, 1 = tin can).
    """

    image: np.ndarray
    boxes: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.image.ndim != 3 or self.image.shape[0] != 3:
            raise ShapeError(f"image must be (3, H, W), got {self.image.shape}")
        self.boxes = np.asarray(self.boxes, dtype=np.float64).reshape(-1, 4)
        self.labels = np.asarray(self.labels, dtype=int).reshape(-1)
        if self.boxes.shape[0] != self.labels.shape[0]:
            raise ShapeError("boxes and labels disagree")


class DetectionDataset:
    """An in-memory list of labeled images with batching helpers."""

    def __init__(self, items: Sequence[LabeledImage]):
        self._items: List[LabeledImage] = list(items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> LabeledImage:
        return self._items[index]

    def __iter__(self) -> Iterator[LabeledImage]:
        return iter(self._items)

    def subset(self, indices: Sequence[int]) -> "DetectionDataset":
        """New dataset holding the selected items."""
        return DetectionDataset([self._items[i] for i in indices])

    def split(
        self, fractions: Sequence[float], seed: Optional[int] = None
    ) -> List["DetectionDataset"]:
        """Random partition into ``len(fractions)`` datasets.

        Args:
            fractions: positive weights summing to 1 (within tolerance).
            seed: shuffling seed.
        """
        if abs(sum(fractions) - 1.0) > 1e-6:
            raise ValueError("fractions must sum to 1")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self._items))
        splits = []
        start = 0
        for i, frac in enumerate(fractions):
            if i == len(fractions) - 1:
                count = len(self._items) - start
            else:
                count = int(round(frac * len(self._items)))
            splits.append(self.subset(order[start : start + count].tolist()))
            start += count
        return splits

    def class_counts(self, num_classes: int = 2) -> List[int]:
        """Ground-truth instance count per class."""
        counts = [0] * num_classes
        for item in self._items:
            for label in item.labels:
                counts[int(label)] += 1
        return counts

    def batches(
        self, batch_size: int, rng: Optional[np.random.Generator] = None
    ) -> Iterator[Tuple[np.ndarray, List[np.ndarray], List[np.ndarray]]]:
        """Yield ``(images, boxes_list, labels_list)`` minibatches.

        Shuffles when ``rng`` is given; the final partial batch is kept.
        """
        order = np.arange(len(self._items))
        if rng is not None:
            rng.shuffle(order)
        for start in range(0, len(order), batch_size):
            chunk = [self._items[i] for i in order[start : start + batch_size]]
            images = np.stack([c.image for c in chunk])
            yield images, [c.boxes for c in chunk], [c.labels for c in chunk]

    def extend(self, items: Sequence[LabeledImage]) -> None:
        """Append more items in place."""
        self._items.extend(items)
