"""Synthetic bottle / tin-can detection datasets.

Substitute for the paper's OpenImages subset and in-field Himax dataset:
a parametric renderer draws bottles and tin cans into cluttered scenes;
the *web* domain (:mod:`repro.datasets.openimages_like`) produces clean,
colorful images while the *onboard* domain
(:mod:`repro.datasets.himax_like`) applies the grayscale / blur / noise /
vignette degradation of the nano-drone camera, reproducing the domain
shift that drives Table I.
"""

from repro.datasets.base import DetectionDataset, LabeledImage
from repro.datasets.shapes import draw_bottle, draw_can
from repro.datasets.openimages_like import make_openimages_like
from repro.datasets.himax_like import himax_degrade, make_himax_like
from repro.datasets.augment import photometric_augment, rebalance_with_translation

__all__ = [
    "DetectionDataset",
    "LabeledImage",
    "draw_bottle",
    "draw_can",
    "make_openimages_like",
    "make_himax_like",
    "himax_degrade",
    "photometric_augment",
    "rebalance_with_translation",
]
