"""The synthetic *web* domain standing in for the OpenImages subset.

Clean, colorful, sharp images. The class imbalance of the paper's subset
(11306 bottle vs 1306 tin-can images, i.e. roughly 9:1) is reproduced via
``bottle_fraction`` so the rebalancing-by-translation step of the paper
has the same job to do here.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.datasets.base import DetectionDataset, LabeledImage
from repro.datasets.shapes import draw_background, draw_bottle, draw_can

#: Bottle/(bottle+can) image fraction in the paper's raw training subset.
PAPER_BOTTLE_FRACTION = 11306 / (11306 + 1306)


def render_scene(
    hw: Tuple[int, int],
    rng: np.random.Generator,
    bottle_fraction: float = PAPER_BOTTLE_FRACTION,
    max_objects: int = 3,
) -> LabeledImage:
    """Render one clean scene with 1..max_objects objects.

    Args:
        hw: image ``(height, width)``.
        rng: scene randomness.
        bottle_fraction: probability that each object is a bottle.
        max_objects: upper bound on objects per image.
    """
    h, w = hw
    img = np.zeros((h, w, 3), dtype=np.float64)
    draw_background(img, rng)
    n_objects = int(rng.integers(1, max_objects + 1))
    boxes, labels = [], []
    occupied_x: list = []
    for _ in range(n_objects):
        is_bottle = rng.uniform() < bottle_fraction
        height = h * (rng.uniform(0.35, 0.8) if is_bottle else rng.uniform(0.2, 0.5))
        for _attempt in range(8):
            cx = rng.uniform(0.12 * w, 0.88 * w)
            if all(abs(cx - ox) > 0.18 * w for ox in occupied_x):
                break
        base_y = rng.uniform(0.55 * h, 0.97 * h)
        if is_bottle:
            bbox = draw_bottle(img, cx, base_y, height, rng)
            label = 0
        else:
            bbox = draw_can(img, cx, base_y, height, rng)
            label = 1
        if bbox is None:
            continue
        occupied_x.append(cx)
        xmin, ymin, xmax, ymax = bbox
        boxes.append([xmin / w, ymin / h, xmax / w, ymax / h])
        labels.append(label)
    if not boxes:
        # Guarantee at least one object so every image is a training signal.
        bbox = draw_bottle(img, w / 2, 0.9 * h, 0.6 * h, rng)
        if bbox is not None:
            xmin, ymin, xmax, ymax = bbox
            boxes.append([xmin / w, ymin / h, xmax / w, ymax / h])
            labels.append(0)
    return LabeledImage(
        image=np.ascontiguousarray(img.transpose(2, 0, 1)),
        boxes=np.array(boxes, dtype=np.float64).reshape(-1, 4),
        labels=np.array(labels, dtype=int),
    )


def make_openimages_like(
    n_images: int,
    hw: Tuple[int, int] = (48, 64),
    seed: Optional[int] = None,
    bottle_fraction: float = PAPER_BOTTLE_FRACTION,
    max_objects: int = 3,
) -> DetectionDataset:
    """Build a web-domain dataset of ``n_images`` scenes."""
    rng = np.random.default_rng(seed)
    return DetectionDataset(
        [
            render_scene(hw, rng, bottle_fraction=bottle_fraction, max_objects=max_objects)
            for _ in range(n_images)
        ]
    )
