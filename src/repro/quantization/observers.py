"""Range observers for symmetric quantization."""

from __future__ import annotations

import numpy as np

from repro.errors import QuantizationError


def symmetric_scale(max_abs: float, bits: int = 8) -> float:
    """Scale mapping ``[-max_abs, max_abs]`` onto the signed integer grid.

    Args:
        max_abs: largest magnitude to represent.
        bits: total bit width (8 -> levels in [-127, 127]).
    """
    if bits < 2:
        raise QuantizationError("need at least 2 bits")
    qmax = 2 ** (bits - 1) - 1
    if max_abs <= 0.0:
        return 1.0 / qmax  # degenerate tensor; any scale represents zeros
    return max_abs / qmax


class MinMaxObserver:
    """Tracks the running absolute maximum of observed tensors.

    Symmetric ranges only need the absolute maximum; the paper uses
    symmetric quantization because the GAP8 kernels require it.
    """

    def __init__(self, bits: int = 8):
        self.bits = bits
        self.max_abs = 0.0
        self.observed = False

    def observe(self, x: np.ndarray) -> None:
        """Update the range from one tensor."""
        if x.size:
            self.max_abs = max(self.max_abs, float(np.abs(x).max()))
            self.observed = True

    @property
    def scale(self) -> float:
        """Quantization scale; raises if nothing was observed."""
        if not self.observed:
            raise QuantizationError("observer has seen no data")
        return symmetric_scale(self.max_abs, self.bits)
