"""Int8 inference: exact integer kernels and whole-detector conversion.

Two levels of fidelity are provided:

- :func:`int8_conv2d` / :func:`int8_depthwise_conv2d` -- exact
  integer-arithmetic kernels (int8 operands, int32 accumulation) for a
  single layer, matching what the GAP8 executes;
- :func:`quantize_detector` -- converts a trained float detector into an
  int8-*simulated* model: BatchNorms folded, every conv weight replaced
  by its int8 grid value and every conv output re-quantized to its
  calibrated activation scale. Per-tensor symmetric scales make the
  simulated path numerically identical to the integer path up to the
  bias term (verified in the test suite), while staying fast in numpy.
"""

from __future__ import annotations

import copy
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import QuantizationError
from repro.nn.conv import Conv2d, DepthwiseConv2d
from repro.nn.functional import im2col
from repro.nn.module import Module
from repro.quantization.fakequant import dequantize, fake_quantize, quantize
from repro.quantization.folding import fold_batchnorms
from repro.quantization.observers import MinMaxObserver, symmetric_scale
from repro.vision.ssd import SSDDetector


def int8_conv2d(
    x_q: np.ndarray,
    w_q: np.ndarray,
    x_scale: float,
    w_scale: float,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Exact integer dense convolution.

    Args:
        x_q: ``(N, C, H, W)`` int32 activations on the int8 grid.
        w_q: ``(O, C, k, k)`` int32 weights on the int8 grid.
        x_scale: activation scale.
        w_scale: weight scale.
        bias: optional float bias added after dequantization.
        stride: spatial stride.
        padding: symmetric zero padding.

    Returns:
        Float output ``x_scale * w_scale * (x_q * w_q) + bias``; int32
        accumulation is exact for int8 operands.
    """
    if x_q.dtype.kind != "i" or w_q.dtype.kind != "i":
        raise QuantizationError("integer kernel requires integer inputs")
    k = w_q.shape[2]
    cols, out_h, out_w = im2col(x_q.astype(np.int64), k, k, stride, padding)
    n = x_q.shape[0]
    flat = cols.reshape(n, -1, out_h * out_w)
    w2d = w_q.astype(np.int64).reshape(w_q.shape[0], -1)
    acc = np.einsum("oc,ncl->nol", w2d, flat)  # exact in int64
    out = acc.astype(np.float64) * (x_scale * w_scale)
    if bias is not None:
        out += bias[None, :, None]
    return out.reshape(n, w_q.shape[0], out_h, out_w)


def int8_depthwise_conv2d(
    x_q: np.ndarray,
    w_q: np.ndarray,
    x_scale: float,
    w_scale: float,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    padding: int = 1,
) -> np.ndarray:
    """Exact integer depthwise convolution (same contract as above).

    ``w_q`` has shape ``(C, k, k)``.
    """
    if x_q.dtype.kind != "i" or w_q.dtype.kind != "i":
        raise QuantizationError("integer kernel requires integer inputs")
    k = w_q.shape[1]
    cols, out_h, out_w = im2col(x_q.astype(np.int64), k, k, stride, padding)
    n, c = x_q.shape[0], x_q.shape[1]
    flat = cols.reshape(n, c, k * k, out_h * out_w)
    wflat = w_q.astype(np.int64).reshape(c, k * k)
    acc = np.einsum("nckl,ck->ncl", flat, wflat)
    out = acc.astype(np.float64) * (x_scale * w_scale)
    if bias is not None:
        out += bias[None, :, None]
    return out.reshape(n, c, out_h, out_w)


class ActivationQuantShim(Module):
    """Wraps a conv layer: quantizes its weights and output activations.

    Modes:
        ``"observe"`` -- float forward while recording input/output ranges;
        ``"quantize"`` -- weights fake-quantized to the int8 grid, input
        and output snapped to their calibrated activation grids.
    """

    def __init__(self, inner: Module, bits: int = 8):
        super().__init__()
        self.register_child("inner", inner)
        self.bits = bits
        self.mode = "observe"
        self.in_observer = MinMaxObserver(bits)
        self.out_observer = MinMaxObserver(bits)
        self._weight_quantized = False

    def freeze(self) -> None:
        """Switch from calibration to int8-simulated inference."""
        if not (self.in_observer.observed and self.out_observer.observed):
            raise QuantizationError("freeze() before calibration data was seen")
        inner = self._children["inner"]
        w_scale = symmetric_scale(float(np.abs(inner.weight.data).max()), self.bits)
        inner.weight.data = fake_quantize(inner.weight.data, w_scale, self.bits)
        self.weight_scale = w_scale
        self._weight_quantized = True
        self.mode = "quantize"

    def forward(self, x: np.ndarray) -> np.ndarray:
        inner = self._children["inner"]
        if self.mode == "observe":
            self.in_observer.observe(x)
            out = inner(x)
            self.out_observer.observe(out)
            return out
        x = fake_quantize(x, self.in_observer.scale, self.bits)
        out = inner(x)
        return fake_quantize(out, self.out_observer.scale, self.bits)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        # Straight-through: quantization treated as identity for gradients.
        return self._children["inner"].backward(grad_out)


def _wrap_convs(module: Module, bits: int) -> List[ActivationQuantShim]:
    """Replace every conv child with a shim, recursively."""
    shims: List[ActivationQuantShim] = []
    for name, child in list(module._children.items()):
        if isinstance(child, (Conv2d, DepthwiseConv2d)):
            shim = ActivationQuantShim(child, bits)
            module._children[name] = shim
            object.__setattr__(module, name, shim)
            shims.append(shim)
        else:
            shims.extend(_wrap_convs(child, bits))
    return shims


def quantize_detector(
    detector: SSDDetector,
    calibration_images: np.ndarray,
    bits: int = 8,
    batch_size: int = 8,
) -> SSDDetector:
    """Convert a trained float detector to int8-simulated inference.

    The input detector is left untouched; a deep copy is folded,
    calibrated on ``calibration_images`` and frozen.

    Args:
        detector: trained float model (eval-mode statistics are used).
        calibration_images: ``(N, 3, H, W)`` batch for activation ranges.
        bits: quantization bit width.
        batch_size: calibration batch size.

    Returns:
        A detector whose ``forward``/``predict`` run on the int8 grid.
    """
    if calibration_images.ndim != 4 or calibration_images.shape[0] == 0:
        raise QuantizationError("calibration images must be a non-empty NCHW batch")
    q = copy.deepcopy(detector)
    q.eval()
    fold_batchnorms(q)
    shims = _wrap_convs(q, bits)
    if not shims:
        raise QuantizationError("no convolution layers found to quantize")
    for start in range(0, calibration_images.shape[0], batch_size):
        q.forward(calibration_images[start : start + batch_size])
    for shim in shims:
        shim.freeze()
    return q
