"""BatchNorm folding.

The GAP8 integer kernels execute conv+BN as a single fused operation, so
quantization starts by folding every BatchNorm into the convolution that
precedes it. Folding walks the module tree looking for (conv, BN) pairs
inside :class:`~repro.nn.module.Sequential` containers -- which is where
every BN in this library lives -- scales the conv weights, absorbs the
shift into the conv bias and replaces the BN with an identity.
"""

from __future__ import annotations

import numpy as np

from repro.nn.conv import Conv2d, DepthwiseConv2d
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.norm import BatchNorm2d


class Identity(Module):
    """Pass-through module left behind by BN folding."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


def _fold_pair(conv, bn: BatchNorm2d) -> None:
    scale, shift = bn.fold_scale_shift()
    if isinstance(conv, Conv2d):
        conv.weight.data = conv.weight.data * scale[:, None, None, None]
    else:  # DepthwiseConv2d
        conv.weight.data = conv.weight.data * scale[:, None, None]
    if conv.bias is None:
        conv.bias = Parameter(np.zeros(scale.shape[0]))
    conv.bias.data = conv.bias.data * scale + shift


def fold_batchnorms(module: Module) -> int:
    """Fold every (conv, BN) pair under ``module`` in place.

    Returns:
        The number of BatchNorms folded. The model must be in eval mode
        conceptually (folding uses the running statistics); training a
        folded model would diverge from the original.
    """
    folded = 0
    if isinstance(module, Sequential):
        names = module._order
        for i in range(len(names) - 1):
            first = module._children[names[i]]
            second = module._children[names[i + 1]]
            if isinstance(first, (Conv2d, DepthwiseConv2d)) and isinstance(
                second, BatchNorm2d
            ):
                _fold_pair(first, second)
                identity = Identity()
                module._children[names[i + 1]] = identity
                object.__setattr__(module, names[i + 1], identity)
                folded += 1
    for child in module.children():
        folded += fold_batchnorms(child)
    return folded
