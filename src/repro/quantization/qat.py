"""Quantization-aware training via straight-through weight quantization.

During each QAT step the convolution/linear weights are replaced by
their int8 fake-quantized values for the forward and backward passes,
while the optimizer update is applied to the retained full-precision
weights (the straight-through estimator). Activations are bounded by
ReLU6 throughout the network, which keeps their quantization benign;
their ranges are calibrated at conversion time.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator

import numpy as np

from repro.nn.module import Module
from repro.quantization.fakequant import fake_quantize
from repro.quantization.observers import symmetric_scale


class QATWeightQuantizer:
    """Context-manager factory applying STE weight quantization.

    Args:
        bits: weight bit width (8 in the paper).
    """

    def __init__(self, bits: int = 8):
        self.bits = bits

    @contextlib.contextmanager
    def quantized_weights(self, model: Module) -> Iterator[None]:
        """Temporarily replace all weights with fake-quantized copies.

        Gradients computed inside the context flow to the quantized
        weights but are applied (by the caller's optimizer) to the
        restored full-precision weights -- the straight-through estimator.
        """
        stashed: Dict[int, np.ndarray] = {}
        params = [
            p for name, p in model.named_parameters() if name.endswith("weight")
        ]
        for i, p in enumerate(params):
            stashed[i] = p.data
            scale = symmetric_scale(float(np.abs(p.data).max()), self.bits)
            p.data = fake_quantize(p.data, scale, self.bits)
        try:
            yield
        finally:
            for i, p in enumerate(params):
                p.data = stashed[i]
