"""Quantize / dequantize / fake-quantize primitives."""

from __future__ import annotations

import numpy as np

from repro.errors import QuantizationError


def _qmax(bits: int) -> int:
    if bits < 2:
        raise QuantizationError("need at least 2 bits")
    return 2 ** (bits - 1) - 1


def quantize(x: np.ndarray, scale: float, bits: int = 8) -> np.ndarray:
    """Round to the symmetric integer grid; returns an int32 array."""
    if scale <= 0.0:
        raise QuantizationError("scale must be positive")
    q = _qmax(bits)
    return np.clip(np.rint(x / scale), -q, q).astype(np.int32)


def dequantize(x_q: np.ndarray, scale: float) -> np.ndarray:
    """Back to float."""
    return x_q.astype(np.float64) * scale


def fake_quantize(x: np.ndarray, scale: float, bits: int = 8) -> np.ndarray:
    """Quantize-dequantize in float (the QAT forward transform)."""
    return dequantize(quantize(x, scale, bits), scale)
