"""Symmetric int8 quantization: observers, fake-quant, QAT and conversion.

The paper quantizes the SSDs to 8-bit with symmetric ranges (the GAP8
kernels require symmetric integer ranges) and runs quantization-aware
training (QAT) to recover the mAP lost in conversion. This package
provides that flow for the numpy models:

1. train float -> 2. fine-tune with :class:`QATWeightQuantizer` ->
3. :func:`quantize_detector` (folds BN, calibrates activations, switches
   every conv to the int8-simulated path).
"""

from repro.quantization.observers import MinMaxObserver, symmetric_scale
from repro.quantization.fakequant import dequantize, fake_quantize, quantize
from repro.quantization.qat import QATWeightQuantizer
from repro.quantization.folding import fold_batchnorms
from repro.quantization.int8 import (
    ActivationQuantShim,
    int8_conv2d,
    int8_depthwise_conv2d,
    quantize_detector,
)

__all__ = [
    "MinMaxObserver",
    "symmetric_scale",
    "fake_quantize",
    "quantize",
    "dequantize",
    "QATWeightQuantizer",
    "fold_batchnorms",
    "ActivationQuantShim",
    "int8_conv2d",
    "int8_depthwise_conv2d",
    "quantize_detector",
]
