"""Minimal IMU model: a yaw-rate gyro with bias and noise.

The exploration policies command yaw rates, and the state estimator
integrates the gyro to track heading, so the gyro is the only IMU channel
the 2-D simulation needs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SensorError


class Gyro:
    """Yaw-rate gyro with constant bias and white noise.

    Args:
        noise_std: 1-sigma white noise on the rate, rad/s.
        bias_std: 1-sigma of the constant per-unit bias, rad/s.
        rng: noise generator; ``None`` disables noise and bias.
    """

    def __init__(
        self,
        noise_std: float = 0.005,
        bias_std: float = 0.002,
        rng: Optional[np.random.Generator] = None,
    ):
        if noise_std < 0.0 or bias_std < 0.0:
            raise SensorError("negative gyro noise")
        self._rng = rng
        self.noise_std = noise_std
        self.bias = 0.0 if rng is None else float(rng.normal(0.0, bias_std))

    def read(self, true_yaw_rate: float, z: Optional[float] = None) -> float:
        """Measure the true yaw rate (rad/s).

        Args:
            true_yaw_rate: ground-truth yaw rate.
            z: optional pre-drawn standard normal from the gyro's stream;
                scaling it reproduces the scalar ``normal(0, std)`` draw
                bit-for-bit (see :meth:`FlowDeck.read`).
        """
        if self._rng is None:
            return true_yaw_rate
        if z is None:
            return true_yaw_rate + self.bias + self._rng.normal(0.0, self.noise_std)
        return true_yaw_rate + self.bias + self.noise_std * float(z)
