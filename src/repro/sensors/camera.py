"""Model of the AI-deck's Himax HM01B0 camera.

The camera is a grayscale QVGA (320 x 240) sensor. The model provides:

- a pinhole intrinsics description (focal length derived from the
  horizontal field of view),
- a *visibility* test for scene objects (inside the FOV cone, within a
  usable range, line of sight not occluded), and
- the projected bounding box of an object on the image plane, which the
  synthetic Himax renderer and the closed-loop detector model both use.

The drone flies at a roughly constant height with the camera looking
forward, so the projection treats objects as upright cylinders seen from
their side: the horizontal extent comes from the physical radius and the
vertical extent from the physical height.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import List, Optional, Sequence, Tuple

from repro.errors import SensorError
from repro.geometry.raycast import RayCaster
from repro.geometry.vec import Vec2, angle_diff
from repro.world.objects import SceneObject

#: Native Himax HM01B0 resolution used by the paper (QVGA).
HIMAX_WIDTH_PX = 320
HIMAX_HEIGHT_PX = 240

#: Horizontal field of view of the AI-deck camera assembly, radians.
HIMAX_HFOV_RAD = math.radians(65.0)

#: Default flight height of the Crazyflie in the paper's experiments, m.
DEFAULT_FLIGHT_HEIGHT_M = 0.5


@dataclass(frozen=True)
class CameraIntrinsics:
    """Pinhole intrinsics of a camera with square pixels."""

    width_px: int
    height_px: int
    hfov_rad: float

    def __post_init__(self) -> None:
        if self.width_px <= 0 or self.height_px <= 0:
            raise SensorError("non-positive image size")
        if not 0.0 < self.hfov_rad < math.pi:
            raise SensorError("horizontal FOV must be in (0, pi)")

    @cached_property
    def focal_px(self) -> float:
        """Focal length in pixels (same horizontally and vertically).

        Cached: intrinsics are frozen and this sits in the per-frame
        projection path.
        """
        return (self.width_px / 2.0) / math.tan(self.hfov_rad / 2.0)

    @cached_property
    def vfov_rad(self) -> float:
        """Vertical field of view implied by the aspect ratio (cached)."""
        return 2.0 * math.atan((self.height_px / 2.0) / self.focal_px)

    def scaled(self, width_px: int, height_px: int) -> "CameraIntrinsics":
        """Same FOV at a different resolution (for reduced-scale models)."""
        return CameraIntrinsics(width_px, height_px, self.hfov_rad)


#: The paper's camera.
HIMAX_INTRINSICS = CameraIntrinsics(HIMAX_WIDTH_PX, HIMAX_HEIGHT_PX, HIMAX_HFOV_RAD)


@dataclass(frozen=True)
class ObjectObservation:
    """A scene object as seen by the camera at one pose.

    Attributes:
        obj: the observed object.
        distance_m: ground-plane distance from the camera to the object axis.
        bearing_rad: object bearing relative to the camera axis (+ left).
        bbox: pixel bounding box ``(xmin, ymin, xmax, ymax)`` clipped to the
            image.
    """

    obj: SceneObject
    distance_m: float
    bearing_rad: float
    bbox: Tuple[float, float, float, float]

    @property
    def bbox_area_px(self) -> float:
        """Area of the clipped bounding box, px^2."""
        xmin, ymin, xmax, ymax = self.bbox
        return max(0.0, xmax - xmin) * max(0.0, ymax - ymin)


class HimaxCamera:
    """Forward-looking camera rigidly mounted on the drone.

    Args:
        intrinsics: pinhole parameters; defaults to the paper's QVGA setup.
        min_range: objects closer than this are too blurred/defocused to
            detect and are not reported.
        max_range: objects beyond this project to only a few pixels on the
            QVGA sensor (a tin can at 2.2 m is ~12 px tall) and are not
            reported.
        height_m: flight (and thus camera) height over the floor.
        batched: when False, :meth:`observe` uses the historical
            per-object path (the reference the equivalence tests pin
            against); ``None`` keeps the class default. Results are
            bit-identical either way.
    """

    #: Class-level default for the ``batched`` switch; benchmarks may
    #: flip it to cover cameras constructed without an explicit choice.
    batched = True

    def __init__(
        self,
        intrinsics: CameraIntrinsics = HIMAX_INTRINSICS,
        min_range: float = 0.3,
        max_range: float = 2.2,
        height_m: float = DEFAULT_FLIGHT_HEIGHT_M,
        batched: Optional[bool] = None,
    ):
        if min_range < 0.0 or max_range <= min_range:
            raise SensorError("invalid camera range band")
        self.intrinsics = intrinsics
        self.min_range = min_range
        self.max_range = max_range
        self.height_m = height_m
        if batched is not None:
            self.batched = batched

    def observe(
        self,
        caster: RayCaster,
        position: Vec2,
        heading: float,
        objects: Sequence[SceneObject],
    ) -> List[ObjectObservation]:
        """All objects visible from the given pose.

        An object is visible when its bearing falls inside the horizontal
        FOV, its distance is within ``[min_range, max_range]`` and the ray
        from the camera to the object axis is not blocked by any wall or
        obstacle. The occlusion rays of every candidate go through one
        batched :meth:`RayCaster.line_of_sight_many` call, so a camera
        frame costs a single kernel invocation instead of one cast per
        object; results are bit-identical to :meth:`observe_object`.
        """
        if not self.batched:
            visible = []
            for obj in objects:
                obs = self.observe_object(caster, position, heading, obj)
                if obs is not None:
                    visible.append(obs)
            return visible
        half_fov = self.intrinsics.hfov_rad / 2.0
        candidates = []
        for obj in objects:
            offset = obj.position - position
            distance = offset.norm()
            if not self.min_range <= distance <= self.max_range:
                continue
            bearing = angle_diff(offset.heading(), heading)
            if abs(bearing) > half_fov:
                continue
            candidates.append((obj, distance, bearing))
        if not candidates:
            return []
        unblocked = caster.line_of_sight_many(
            position,
            [obj.position for obj, _, _ in candidates],
            slack=[obj.radius_m + 0.05 for obj, _, _ in candidates],
        )
        visible = []
        for (obj, distance, bearing), clear in zip(candidates, unblocked):
            if not clear:
                continue
            bbox = self._project_bbox(distance, bearing, obj)
            if bbox is None:
                continue
            visible.append(
                ObjectObservation(
                    obj=obj, distance_m=distance, bearing_rad=bearing, bbox=bbox
                )
            )
        return visible

    def observe_object(
        self,
        caster: RayCaster,
        position: Vec2,
        heading: float,
        obj: SceneObject,
    ) -> Optional[ObjectObservation]:
        """Observation of one object, or ``None`` when it is not visible."""
        offset = obj.position - position
        distance = offset.norm()
        if not self.min_range <= distance <= self.max_range:
            return None
        bearing = angle_diff(offset.heading(), heading)
        half_fov = self.intrinsics.hfov_rad / 2.0
        if abs(bearing) > half_fov:
            return None
        if not caster.line_of_sight(position, obj.position, slack=obj.radius_m + 0.05):
            return None
        bbox = self._project_bbox(distance, bearing, obj)
        if bbox is None:
            return None
        return ObjectObservation(obj=obj, distance_m=distance, bearing_rad=bearing, bbox=bbox)

    def _project_bbox(
        self, distance: float, bearing: float, obj: SceneObject
    ) -> Optional[Tuple[float, float, float, float]]:
        """Pinhole projection of an upright cylinder to a pixel box."""
        intr = self.intrinsics
        f = intr.focal_px
        depth = distance * math.cos(bearing)
        if depth <= 1e-6:
            return None
        cx = intr.width_px / 2.0
        cy = intr.height_px / 2.0
        # Image x grows to the right while bearing grows to the left.
        u_center = cx - f * math.tan(bearing)
        half_w = f * obj.radius_m / depth
        # The object stands on the floor; the camera sits at height_m
        # looking horizontally, so the object's base is height_m below the
        # optical axis and its top is (height - height_m) above it. Image y
        # grows downward.
        v_top = cy - f * (obj.height_m - self.height_m) / depth
        v_bottom = cy + f * self.height_m / depth
        xmin = max(0.0, u_center - half_w)
        xmax = min(float(intr.width_px), u_center + half_w)
        ymin = max(0.0, min(v_top, v_bottom))
        ymax = min(float(intr.height_px), max(v_top, v_bottom))
        if xmax - xmin < 1.0 or ymax - ymin < 1.0:
            return None
        return (xmin, ymin, xmax, ymax)
