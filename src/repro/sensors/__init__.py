"""Sensor models for the simulated Crazyflie platform.

- :class:`~repro.sensors.tof.ToFSensor` -- one VL53L1x single-beam ranger.
- :class:`~repro.sensors.multiranger.MultiRangerDeck` -- the 5-beam deck.
- :class:`~repro.sensors.flowdeck.FlowDeck` -- optical-flow odometry.
- :class:`~repro.sensors.imu.Gyro` -- yaw-rate gyro.
- :class:`~repro.sensors.camera.HimaxCamera` -- the AI-deck camera model.
"""

from repro.sensors.tof import ToFSensor, VL53L1X_MAX_RANGE_M, VL53L1X_RATE_HZ
from repro.sensors.multiranger import MultiRangerDeck, RangerReading
from repro.sensors.flowdeck import FlowDeck, OdometrySample
from repro.sensors.imu import Gyro
from repro.sensors.camera import CameraIntrinsics, HimaxCamera, ObjectObservation

__all__ = [
    "ToFSensor",
    "VL53L1X_MAX_RANGE_M",
    "VL53L1X_RATE_HZ",
    "MultiRangerDeck",
    "RangerReading",
    "FlowDeck",
    "OdometrySample",
    "Gyro",
    "CameraIntrinsics",
    "HimaxCamera",
    "ObjectObservation",
]
