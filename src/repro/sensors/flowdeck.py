"""Flow-deck odometry model.

The real Flow deck measures ground-relative optical flow and height; the
Crazyflie fuses it into a velocity estimate. We model the end product: a
body-frame velocity measurement with multiplicative scale error and
additive noise, which the state estimator integrates into a drifting
position estimate -- exactly the kind of odometry the paper's policies
have to live with (none of them relies on absolute position).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import SensorError


class OdometrySample:
    """One odometry measurement in the body frame.

    Attributes:
        vx: forward velocity estimate, m/s.
        vy: left velocity estimate, m/s.
        height: height-over-ground estimate, m.

    A ``__slots__`` value class: one is created per control tick.
    """

    __slots__ = ("vx", "vy", "height")

    def __init__(self, vx: float, vy: float, height: float):
        self.vx = vx
        self.vy = vy
        self.height = height

    def __eq__(self, other) -> bool:
        if other.__class__ is OdometrySample:
            return (
                self.vx == other.vx
                and self.vy == other.vy
                and self.height == other.height
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.vx, self.vy, self.height))

    def __repr__(self) -> str:
        return (
            f"OdometrySample(vx={self.vx!r}, vy={self.vy!r}, "
            f"height={self.height!r})"
        )


class FlowDeck:
    """Optical-flow velocity sensor.

    Args:
        velocity_noise_std: additive 1-sigma noise on each velocity axis.
        scale_error: multiplicative bias (e.g. 0.02 -> velocities read 2%
            long); drawn once per deck instance to mimic a per-unit
            calibration error.
        height_noise_std: 1-sigma noise on the height measurement.
        rng: noise generator; ``None`` disables all noise.
    """

    def __init__(
        self,
        velocity_noise_std: float = 0.02,
        scale_error: float = 0.01,
        height_noise_std: float = 0.005,
        rng: Optional[np.random.Generator] = None,
    ):
        if velocity_noise_std < 0.0 or height_noise_std < 0.0:
            raise SensorError("negative noise std")
        self._rng = rng
        self.velocity_noise_std = velocity_noise_std
        self.height_noise_std = height_noise_std
        if rng is None:
            self.scale = 1.0
        else:
            self.scale = 1.0 + rng.normal(0.0, scale_error)

    def read(
        self,
        vx_body: float,
        vy_body: float,
        height: float,
        z: Optional[Sequence[float]] = None,
    ) -> OdometrySample:
        """Measure the true body-frame velocity and height.

        Args:
            vx_body: true forward velocity, m/s.
            vy_body: true left velocity, m/s.
            height: true height over ground, m.
            z: optional three pre-drawn standard normals (vx, vy, height)
                from the deck's stream. Passing a block avoids three
                scalar generator calls per control tick while consuming
                the bit stream in exactly the same order, so readings are
                bit-identical either way.
        """
        if self._rng is None:
            return OdometrySample(vx_body, vy_body, height)
        if z is None:
            return OdometrySample(
                vx=self.scale * vx_body
                + self._rng.normal(0.0, self.velocity_noise_std),
                vy=self.scale * vy_body
                + self._rng.normal(0.0, self.velocity_noise_std),
                height=height + self._rng.normal(0.0, self.height_noise_std),
            )
        # normal(0, s) is 0.0 + s * standard_normal() internally, so
        # scaling the pre-drawn block reproduces the scalar draws.
        return OdometrySample(
            vx=self.scale * vx_body + self.velocity_noise_std * float(z[0]),
            vy=self.scale * vy_body + self.velocity_noise_std * float(z[1]),
            height=height + self.height_noise_std * float(z[2]),
        )
