"""Flow-deck odometry model.

The real Flow deck measures ground-relative optical flow and height; the
Crazyflie fuses it into a velocity estimate. We model the end product: a
body-frame velocity measurement with multiplicative scale error and
additive noise, which the state estimator integrates into a drifting
position estimate -- exactly the kind of odometry the paper's policies
have to live with (none of them relies on absolute position).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import SensorError


@dataclass(frozen=True)
class OdometrySample:
    """One odometry measurement in the body frame."""

    vx: float  #: forward velocity estimate, m/s
    vy: float  #: left velocity estimate, m/s
    height: float  #: height-over-ground estimate, m


class FlowDeck:
    """Optical-flow velocity sensor.

    Args:
        velocity_noise_std: additive 1-sigma noise on each velocity axis.
        scale_error: multiplicative bias (e.g. 0.02 -> velocities read 2%
            long); drawn once per deck instance to mimic a per-unit
            calibration error.
        height_noise_std: 1-sigma noise on the height measurement.
        rng: noise generator; ``None`` disables all noise.
    """

    def __init__(
        self,
        velocity_noise_std: float = 0.02,
        scale_error: float = 0.01,
        height_noise_std: float = 0.005,
        rng: Optional[np.random.Generator] = None,
    ):
        if velocity_noise_std < 0.0 or height_noise_std < 0.0:
            raise SensorError("negative noise std")
        self._rng = rng
        self.velocity_noise_std = velocity_noise_std
        self.height_noise_std = height_noise_std
        if rng is None:
            self._scale = 1.0
        else:
            self._scale = 1.0 + rng.normal(0.0, scale_error)

    def read(self, vx_body: float, vy_body: float, height: float) -> OdometrySample:
        """Measure the true body-frame velocity and height."""
        if self._rng is None:
            return OdometrySample(vx_body, vy_body, height)
        return OdometrySample(
            vx=self._scale * vx_body + self._rng.normal(0.0, self.velocity_noise_std),
            vy=self._scale * vy_body + self._rng.normal(0.0, self.velocity_noise_std),
            height=height + self._rng.normal(0.0, self.height_noise_std),
        )
