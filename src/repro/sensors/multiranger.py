"""The Bitcraze Multi-ranger deck: five VL53L1x sensors.

The deck mounts sensors front / back / left / right / up. The exploration
policies of the paper use only the front, left and right beams
(Sec. III-C); the up beam always saturates in our 2-D world and is kept
for interface completeness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.geometry.raycast import RayCaster
from repro.geometry.vec import Vec2
from repro.sensors.tof import ToFSensor, VL53L1X_MAX_RANGE_M, VL53L1X_RATE_HZ


@dataclass(frozen=True)
class RangerReading:
    """One synchronized reading of the whole deck, in metres."""

    front: float
    back: float
    left: float
    right: float
    up: float

    def as_dict(self) -> Dict[str, float]:
        """Mapping from beam name to distance."""
        return {
            "front": self.front,
            "back": self.back,
            "left": self.left,
            "right": self.right,
            "up": self.up,
        }

    def min_horizontal(self) -> float:
        """Closest obstacle over the four horizontal beams."""
        return min(self.front, self.back, self.left, self.right)


#: Beam directions in the body frame (radians from the heading).
BEAM_ANGLES = {
    "front": 0.0,
    "left": math.pi / 2.0,
    "back": math.pi,
    "right": -math.pi / 2.0,
}


class MultiRangerDeck:
    """Five-beam ToF deck sampled at 20 Hz.

    Args:
        noise_std: per-beam gaussian range noise (metres).
        dropout_prob: per-beam dropout probability.
        rng: shared RNG; ``None`` gives noise-free beams.
        max_range: beam saturation distance.
    """

    def __init__(
        self,
        noise_std: float = 0.01,
        dropout_prob: float = 0.002,
        rng: Optional[np.random.Generator] = None,
        max_range: float = VL53L1X_MAX_RANGE_M,
    ):
        self.rate_hz = VL53L1X_RATE_HZ
        self.max_range = max_range
        self._sensors = {
            name: ToFSensor(
                angle,
                max_range=max_range,
                noise_std=noise_std,
                dropout_prob=dropout_prob,
                rng=rng,
            )
            for name, angle in BEAM_ANGLES.items()
        }

    def read(self, caster: RayCaster, position: Vec2, heading: float) -> RangerReading:
        """Sample all beams at the given pose.

        The up beam always saturates in the planar world model.
        """
        distances = {
            name: sensor.measure(caster, position, heading)
            for name, sensor in self._sensors.items()
        }
        return RangerReading(
            front=distances["front"],
            back=distances["back"],
            left=distances["left"],
            right=distances["right"],
            up=self.max_range,
        )
