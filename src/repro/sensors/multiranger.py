"""The Bitcraze Multi-ranger deck: five VL53L1x sensors.

The deck mounts sensors front / back / left / right / up. The exploration
policies of the paper use only the front, left and right beams
(Sec. III-C); the up beam always saturates in our 2-D world and is kept
for interface completeness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.geometry.raycast import RayCaster
from repro.geometry.vec import Vec2, normalize_angle
from repro.sensors.tof import ToFSensor, VL53L1X_MAX_RANGE_M, VL53L1X_RATE_HZ


@dataclass(frozen=True)
class RangerReading:
    """One synchronized reading of the whole deck, in metres."""

    front: float
    back: float
    left: float
    right: float
    up: float

    def as_dict(self) -> Dict[str, float]:
        """Mapping from beam name to distance."""
        return {
            "front": self.front,
            "back": self.back,
            "left": self.left,
            "right": self.right,
            "up": self.up,
        }

    def min_horizontal(self) -> float:
        """Closest obstacle over the four horizontal beams."""
        return min(self.front, self.back, self.left, self.right)


#: Beam directions in the body frame (radians from the heading).
BEAM_ANGLES = {
    "front": 0.0,
    "left": math.pi / 2.0,
    "back": math.pi,
    "right": -math.pi / 2.0,
}


class MultiRangerDeck:
    """Five-beam ToF deck sampled at 20 Hz.

    Args:
        noise_std: per-beam gaussian range noise (metres).
        dropout_prob: per-beam dropout probability.
        rng: shared RNG; ``None`` gives noise-free beams.
        max_range: beam saturation distance.
    """

    def __init__(
        self,
        noise_std: float = 0.01,
        dropout_prob: float = 0.002,
        rng: Optional[np.random.Generator] = None,
        max_range: float = VL53L1X_MAX_RANGE_M,
    ):
        self.rate_hz = VL53L1X_RATE_HZ
        self.max_range = max_range
        self.noise_std = noise_std
        self.dropout_prob = dropout_prob
        self._rng = rng
        self._sensors = {
            name: ToFSensor(
                angle,
                max_range=max_range,
                noise_std=noise_std,
                dropout_prob=dropout_prob,
                rng=rng,
            )
            for name, angle in BEAM_ANGLES.items()
        }
        # Normalized mount angles in beam order, so the batched read uses
        # exactly the per-sensor beam headings.
        self._mount_angles = tuple(s.mount_angle for s in self._sensors.values())

    def read(self, caster: RayCaster, position: Vec2, heading: float) -> RangerReading:
        """Sample all beams at the given pose (per-beam reference path).

        The up beam always saturates in the planar world model. This is
        the historical one-cast-per-beam implementation, kept as the
        reference :meth:`read_batched` is pinned against.
        """
        distances = {
            name: sensor.measure(caster, position, heading)
            for name, sensor in self._sensors.items()
        }
        return RangerReading(
            front=distances["front"],
            back=distances["back"],
            left=distances["left"],
            right=distances["right"],
            up=self.max_range,
        )

    def read_batched(
        self, caster: RayCaster, position: Vec2, heading: float
    ) -> RangerReading:
        """Sample all beams through one batched cast.

        Bit-identical to :meth:`read`: the four horizontal beams go
        through a single ``cast_many`` kernel call (whose entries equal
        the per-beam ``cast`` results exactly) and the noise stream is
        consumed in the same per-beam order -- one dropout uniform, then
        one gaussian only if the sample survived.
        """
        max_range = self.max_range
        cos, sin = math.cos, math.sin
        beams = [normalize_angle(heading + a) for a in self._mount_angles]
        hits = caster.hit_distances(
            position, [cos(b) for b in beams], [sin(b) for b in beams], max_range
        )
        rng = self._rng
        if rng is None:
            front, left, back, right = (
                d if d < max_range else max_range for d in hits
            )
        else:
            noisy_dists = []
            noise_std = self.noise_std
            dropout = self.dropout_prob
            for true_dist in hits:
                if true_dist > max_range:
                    true_dist = max_range
                if rng.uniform() < dropout:
                    noisy_dists.append(max_range)
                    continue
                noisy = true_dist + rng.normal(0.0, noise_std)
                if noisy < 0.0:
                    noisy = 0.0
                elif noisy > max_range:
                    noisy = max_range
                noisy_dists.append(noisy)
            front, left, back, right = noisy_dists
        return RangerReading(
            front=front, back=back, left=left, right=right, up=max_range
        )
