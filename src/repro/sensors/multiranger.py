"""The Bitcraze Multi-ranger deck: five VL53L1x sensors.

The deck mounts sensors front / back / left / right / up. The exploration
policies of the paper use only the front, left and right beams
(Sec. III-C); the up beam always saturates in our 2-D world and is kept
for interface completeness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.geometry.raycast import RayCaster
from repro.geometry.vec import Vec2, normalize_angle
from repro.sensors.tof import ToFSensor, VL53L1X_MAX_RANGE_M, VL53L1X_RATE_HZ


@dataclass(frozen=True)
class RangerReading:
    """One synchronized reading of the whole deck, in metres."""

    front: float
    back: float
    left: float
    right: float
    up: float

    def as_dict(self) -> Dict[str, float]:
        """Mapping from beam name to distance."""
        return {
            "front": self.front,
            "back": self.back,
            "left": self.left,
            "right": self.right,
            "up": self.up,
        }

    def min_horizontal(self) -> float:
        """Closest obstacle over the four horizontal beams."""
        return min(self.front, self.back, self.left, self.right)


#: Beam directions in the body frame (radians from the heading).
BEAM_ANGLES = {
    "front": 0.0,
    "left": math.pi / 2.0,
    "back": math.pi,
    "right": -math.pi / 2.0,
}


class MultiRangerDeck:
    """Five-beam ToF deck sampled at 20 Hz.

    Args:
        noise_std: per-beam gaussian range noise (metres).
        dropout_prob: per-beam dropout probability.
        rng: dropout-draw RNG; ``None`` gives noise-free beams.
        noise_rng: gaussian range-noise RNG; defaults to ``rng``. The
            drone assembly passes two independently spawned streams so a
            fleet stepper can pre-draw a whole mission's dropout block
            (``random((refreshes, 4))``) and noise block
            (``standard_normal((refreshes, 4))``) up front and still
            match the serial deck bit-for-bit.
        max_range: beam saturation distance.

    Noise discipline (part of the fleet bit-identity contract): every
    refresh consumes one ``random(4)`` block from ``rng`` and one
    ``standard_normal(4)`` block from ``noise_rng`` -- always both,
    always whole blocks -- then applies them per beam in mount order
    (front, left, back, right). Drawing unconditionally keeps each
    stream's position a pure function of the refresh count, never of
    what the beams saw, which is what lets pre-generated blocks line up
    for any trajectory.
    """

    def __init__(
        self,
        noise_std: float = 0.01,
        dropout_prob: float = 0.002,
        rng: Optional[np.random.Generator] = None,
        noise_rng: Optional[np.random.Generator] = None,
        max_range: float = VL53L1X_MAX_RANGE_M,
    ):
        self.rate_hz = VL53L1X_RATE_HZ
        self.max_range = max_range
        self.noise_std = noise_std
        self.dropout_prob = dropout_prob
        self._rng = rng
        self._noise_rng = noise_rng if noise_rng is not None else rng
        # The deck applies noise itself (see the class docstring), so the
        # per-beam sensors are noise-free geometry probes.
        self._sensors = {
            name: ToFSensor(
                angle,
                max_range=max_range,
                noise_std=noise_std,
                dropout_prob=dropout_prob,
                rng=None,
            )
            for name, angle in BEAM_ANGLES.items()
        }
        # Normalized mount angles in beam order, so the batched read uses
        # exactly the per-sensor beam headings.
        self._mount_angles = tuple(s.mount_angle for s in self._sensors.values())

    def _apply_noise(self, hits: "list[float]") -> "list[float]":
        """Dropout + gaussian noise over one refresh, in mount order."""
        max_range = self.max_range
        rng = self._rng
        if rng is None:
            return [d if d < max_range else max_range for d in hits]
        u = rng.random(4)
        z = self._noise_rng.standard_normal(4)
        noise_std = self.noise_std
        dropout = self.dropout_prob
        out = []
        for k, true_dist in enumerate(hits):
            if true_dist > max_range:
                true_dist = max_range
            if u[k] < dropout:
                out.append(max_range)
                continue
            noisy = true_dist + noise_std * float(z[k])
            if noisy < 0.0:
                noisy = 0.0
            elif noisy > max_range:
                noisy = max_range
            out.append(noisy)
        return out

    def read(self, caster: RayCaster, position: Vec2, heading: float) -> RangerReading:
        """Sample all beams at the given pose (per-beam reference path).

        The up beam always saturates in the planar world model. This is
        the one-cast-per-beam implementation, kept as the reference
        :meth:`read_batched` is pinned against; both consume the noise
        streams identically (see the class docstring).
        """
        hits = [
            sensor.measure(caster, position, heading)
            for sensor in self._sensors.values()
        ]
        front, left, back, right = self._apply_noise(hits)
        return RangerReading(
            front=front, back=back, left=left, right=right, up=self.max_range
        )

    def read_batched(
        self, caster: RayCaster, position: Vec2, heading: float
    ) -> RangerReading:
        """Sample all beams through one batched cast.

        Bit-identical to :meth:`read`: the four horizontal beams go
        through a single ``cast_many`` kernel call (whose entries equal
        the per-beam ``cast`` results exactly) and the noise blocks are
        drawn and applied exactly as in the reference path.
        """
        max_range = self.max_range
        cos, sin = math.cos, math.sin
        beams = [normalize_angle(heading + a) for a in self._mount_angles]
        hits = caster.hit_distances(
            position, [cos(b) for b in beams], [sin(b) for b in beams], max_range
        )
        front, left, back, right = self._apply_noise(
            [float(d) for d in hits]
        )
        return RangerReading(
            front=front, back=back, left=left, right=right, up=max_range
        )
