"""Model of one VL53L1x single-beam Time-of-Flight distance sensor.

Per the paper (Sec. III-A): line-of-sight distance within [0, 4] m at
20 Hz. The model adds gaussian range noise and a small probability of a
dropped measurement (the real sensor occasionally reports out-of-range);
a dropout reports the maximum range, which is also what the policies see
when there is genuinely nothing within 4 m.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SensorError
from repro.geometry.raycast import RayCaster
from repro.geometry.vec import Vec2, normalize_angle

#: Datasheet maximum ranging distance of the VL53L1x, in metres.
VL53L1X_MAX_RANGE_M = 4.0

#: Update rate used by the Multi-ranger deck, in Hz.
VL53L1X_RATE_HZ = 20.0


class ToFSensor:
    """A single-beam ranger rigidly mounted on the drone body.

    Args:
        mount_angle: beam direction relative to the drone's heading (rad);
            0 is the front sensor, +pi/2 the left one.
        max_range: saturation distance in metres.
        noise_std: 1-sigma gaussian range noise in metres.
        dropout_prob: probability that a sample is lost and reported as
            ``max_range``.
        rng: numpy Generator for noise; ``None`` gives a noise-free sensor
            regardless of ``noise_std``.
    """

    def __init__(
        self,
        mount_angle: float,
        max_range: float = VL53L1X_MAX_RANGE_M,
        noise_std: float = 0.01,
        dropout_prob: float = 0.002,
        rng: Optional[np.random.Generator] = None,
    ):
        if max_range <= 0.0:
            raise SensorError(f"non-positive max range {max_range}")
        if noise_std < 0.0 or not 0.0 <= dropout_prob <= 1.0:
            raise SensorError("invalid noise configuration")
        self.mount_angle = normalize_angle(mount_angle)
        self.max_range = max_range
        self.noise_std = noise_std
        self.dropout_prob = dropout_prob
        self._rng = rng

    def measure(self, caster: RayCaster, position: Vec2, heading: float) -> float:
        """One range sample from ``position`` with the body at ``heading``.

        Returns:
            A distance in ``[0, max_range]``; saturated readings (nothing
            within range, or a dropout) report exactly ``max_range``.
        """
        beam = normalize_angle(heading + self.mount_angle)
        true_dist = caster.cast(position, beam, max_range=self.max_range)
        if self._rng is None:
            return true_dist
        if self._rng.uniform() < self.dropout_prob:
            return self.max_range
        noisy = true_dist + self._rng.normal(0.0, self.noise_std)
        # Scalar clamp; equals np.clip bit-for-bit without the array
        # round-trip that used to show up in the tick-loop profile.
        if noisy < 0.0:
            return 0.0
        return noisy if noisy < self.max_range else self.max_range
