"""Exploration-only mission runner (paper Sec. IV-B).

Runs one policy in one room for a fixed flight time (3 minutes in the
paper), tracking the drone with the simulated mocap system and reporting
coverage statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.drone.crazyflie import Crazyflie, CrazyflieConfig
from repro.errors import MissionError
from repro.geometry.vec import Vec2
from repro.mapping.coverage import CoverageSeries
from repro.mapping.mocap import MotionCaptureTracker
from repro.mapping.occupancy import OccupancyGrid
from repro.obs import FlightRecorder, MissionTrace
from repro.policies.base import ExplorationPolicy
from repro.seeding import SeedLike, spawn_streams
from repro.world.room import Room

#: Flight time of every run in the paper's evaluation, seconds.
DEFAULT_FLIGHT_TIME_S = 180.0


@dataclass
class ExplorationResult:
    """Outcome of one exploration flight.

    ``coverage`` is normalized by the grid cells *reachable* from the
    start pose (free space connected to it), so a perfect sweep reports
    1.0 on any world; ``coverage_raw`` keeps the historical
    visited-over-all-cells fraction, which undercounts on worlds whose
    grid has cells inside obstacles or sealed pockets.
    """

    coverage: float  #: fraction of reachable free-space cells visited, [0, 1]
    grid: OccupancyGrid  #: final occupancy grid
    series: CoverageSeries  #: coverage over time
    collisions: int  #: control ticks with blocked motion
    flight_time_s: float  #: simulated flight duration
    distance_flown_m: float  #: integrated path length
    samples: list = None  #: mocap trajectory (:class:`TrackedSample` list)
    coverage_raw: float = 0.0  #: fraction of all grid cells visited, [0, 1]
    reachable_cells: int = 0  #: grid cells reachable from the start pose
    grid_cells: int = 0  #: total grid cells (the coverage_raw denominator)


class ExplorationMission:
    """Flies one policy in a room for a fixed duration.

    Args:
        room: the environment.
        policy: an exploration policy (will be ``reset`` per run).
        flight_time_s: duration of each run.
        start: start position; defaults to (1, 1) m.
        start_heading: initial heading, rad.
        drone_config: platform configuration (noise, control rate).
        record: when True, capture a per-tick flight trace; after
            :meth:`run` it is available as :attr:`last_trace`. The
            simulated flight is bit-identical with and without
            recording (the trace is observation, not intervention).
    """

    def __init__(
        self,
        room: Room,
        policy: ExplorationPolicy,
        flight_time_s: float = DEFAULT_FLIGHT_TIME_S,
        start: Optional[Vec2] = None,
        start_heading: float = 0.0,
        drone_config: Optional[CrazyflieConfig] = None,
        record: bool = False,
    ):
        if flight_time_s <= 0.0:
            raise MissionError("flight time must be positive")
        self.room = room
        self.policy = policy
        self.flight_time_s = flight_time_s
        self.start = start
        self.start_heading = start_heading
        self.drone_config = drone_config
        self.record = record
        self.last_trace: Optional[MissionTrace] = None

    def run(self, seed: SeedLike = None) -> ExplorationResult:
        """Execute one flight and return its statistics.

        Args:
            seed: ``None``, an integer, or a
                :class:`~numpy.random.SeedSequence`. Sensor noise and the
                policy RNG get independent spawned child streams, making
                the run fully reproducible (also under the parallel
                campaign runner).
        """
        drone_stream, policy_stream = spawn_streams(seed, 2)
        drone = Crazyflie(
            self.room,
            start=self.start,
            heading=self.start_heading,
            config=self.drone_config,
            seed=drone_stream,
        )
        self.policy.reset(policy_stream)
        tracker = MotionCaptureTracker(self.room, start=drone.state.position)
        series = CoverageSeries()
        distance = 0.0
        last_pos = drone.state.position
        n_steps = int(round(self.flight_time_s / drone.dt))
        recorder = None
        if not self.record:
            for _ in range(n_steps):
                reading = drone.read_ranger()
                setpoint = self.policy.update(reading, drone.estimated_state)
                state = drone.step(setpoint)
                distance += state.position.distance_to(last_pos)
                last_pos = state.position
                if tracker.observe(state):
                    series.append(state.time, tracker.coverage())
        else:
            # Instrumented twin of the loop above: same calls in the
            # same order (the recorder only observes), plus per-phase
            # wall-clock accounting and per-tick telemetry capture.
            # Phase seconds accumulate in locals -- the timing overhead
            # per tick is a handful of perf_counter() calls.
            import time as _time

            perf = _time.perf_counter
            recorder = FlightRecorder("explore")
            rtick = recorder.tick
            dynamics = drone.dynamics
            ph_ranger = ph_policy = ph_step = ph_mocap = 0.0
            for _ in range(n_steps):
                t0 = perf()
                reading = drone.read_ranger()
                t1 = perf()
                estimate = drone.estimated_state
                setpoint = self.policy.update(reading, estimate)
                t2 = perf()
                state = drone.step(setpoint)
                t3 = perf()
                distance += state.position.distance_to(last_pos)
                last_pos = state.position
                sampled = tracker.observe(state)
                t4 = perf()
                ph_ranger += t1 - t0
                ph_policy += t2 - t1
                ph_step += t3 - t2
                ph_mocap += t4 - t3
                if sampled:
                    coverage = tracker.coverage()
                    series.append(state.time, coverage)
                    recorder.coverage_sample(state.time, coverage)
                rtick(
                    state,
                    estimate,
                    setpoint,
                    reading,
                    dynamics.collision_count,
                )
            recorder.add_phase("ranger", ph_ranger)
            recorder.add_phase("policy", ph_policy)
            recorder.add_phase("step", ph_step)
            recorder.add_phase("mocap", ph_mocap)
        result = ExplorationResult(
            coverage=tracker.coverage(),
            grid=tracker.grid,
            series=series,
            collisions=drone.dynamics.collision_count,
            flight_time_s=self.flight_time_s,
            distance_flown_m=distance,
            samples=tracker.samples,
            coverage_raw=tracker.coverage_raw(),
            reachable_cells=tracker.reachable_cells,
            grid_cells=tracker.grid.n_cells,
        )
        if recorder is not None:
            self.last_trace = recorder.finish(
                {
                    "coverage": result.coverage,
                    "coverage_raw": result.coverage_raw,
                    "collisions": result.collisions,
                    "distance_flown_m": result.distance_flown_m,
                    "flight_time_s": result.flight_time_s,
                    "reachable_cells": result.reachable_cells,
                    "grid_cells": result.grid_cells,
                }
            )
        return result
