"""Mission runners: exploration-only and closed-loop search."""

from repro.mission.explorer import ExplorationMission, ExplorationResult
from repro.mission.detector_model import CalibratedDetectorModel, DetectorOperatingPoint
from repro.mission.closed_loop import (
    ClosedLoopMission,
    DetectionEvent,
    SearchResult,
)

__all__ = [
    "ExplorationMission",
    "ExplorationResult",
    "CalibratedDetectorModel",
    "DetectorOperatingPoint",
    "ClosedLoopMission",
    "DetectionEvent",
    "SearchResult",
]
