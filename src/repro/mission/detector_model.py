"""Per-frame detection model used by the closed-loop mission.

Running the full numpy SSD on every camera frame of a 3-minute flight for
all 24 Table-III configurations x 5 runs would take hours on a laptop, so
the closed-loop benchmark uses a *calibrated* per-frame detection model:
the probability that one camera frame containing a visible object produces
a successful detection. The model is

    p_frame = p_base(mAP) * f_size(bbox) * f_blur(motion)

- ``p_base`` grows with the detector's mAP (the accuracy term that makes
  SSD-MbV2-1.0 beat 0.75x in Table III),
- ``f_size`` discounts small/far objects (few pixels on the QVGA sensor),
- ``f_blur`` discounts fast translation/rotation (motion blur at the
  Himax exposure time), which is what makes 1 m/s flights worse than
  0.5 m/s despite better coverage.

The number of frames an object stays in view times ``p_frame`` then
produces the familiar ``1 - (1 - p)^n`` detection behaviour: high
throughput helps only while per-frame accuracy is high enough, exactly
the trade-off Sec. IV-C discusses. The rendered-frame path
(:mod:`repro.vision.pipeline`) implements the same interface with a real
CNN for validation at small scale.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.drone.dynamics import DroneState
from repro.errors import MissionError
from repro.sensors.camera import HIMAX_INTRINSICS, ObjectObservation

#: Exposure time of the Himax sensor used for the blur model, seconds.
#: Indoor scenes need long exposures on this tiny sensor.
HIMAX_EXPOSURE_S = 0.020


@dataclass(frozen=True)
class DetectorOperatingPoint:
    """The characteristics of one deployed SSD variant.

    Attributes:
        name: e.g. ``"SSD-MbV2-1.0"``.
        fps: onboard inference throughput, frames per second (Table II).
        map_score: mean average precision on the onboard-domain test set,
            in ``[0, 1]`` (Table I, int8 row).
    """

    name: str
    fps: float
    map_score: float

    def __post_init__(self) -> None:
        if self.fps <= 0.0:
            raise MissionError("fps must be positive")
        if not 0.0 <= self.map_score <= 1.0:
            raise MissionError("mAP must be in [0, 1]")


class DetectionChannel(abc.ABC):
    """Anything that can turn camera observations into detections."""

    @abc.abstractmethod
    def detect(
        self,
        observations: Sequence[ObjectObservation],
        state: DroneState,
        rng: np.random.Generator,
    ) -> List[ObjectObservation]:
        """Subset of ``observations`` successfully detected in this frame."""

    def reset(self) -> None:
        """Clear per-flight state; called by the mission at take-off."""


class CalibratedDetectorModel(DetectionChannel):
    """The calibrated per-frame probability model described above.

    Consecutive frames of the same viewpoint are *correlated*: a detector
    that misses an object from a given pose keeps missing it on the next
    nearly-identical frame. The model therefore rolls a new Bernoulli
    trial for an object only when the viewing geometry has changed
    appreciably since that object's last trial (or a timeout elapses).
    This is what makes detector *accuracy* matter more than raw
    throughput -- the regime the paper identifies in Sec. IV-C -- while
    low frame rates still hurt at high flight speed, where the drone can
    sweep past an object between two frames.

    Args:
        operating_point: the SSD variant being simulated.
        size_ref: bounding-box height fraction at which ``f_size``
            saturates to 1 (objects taller than ``size_ref * image_height``
            pixels are "easy").
        blur_ref_px: motion blur (pixels smeared during the exposure) at
            which ``f_blur`` halves.
        accuracy_gamma: exponent mapping mAP to the per-frame base
            probability; >1 penalises low-mAP models super-linearly.
        rotation_blur_weight: extra weight of yaw rate in the blur model
            (the rolling-shutter Himax smears badly while spinning, which
            is what caps the rotate-and-measure policy's detections).
        retrial_distance_m: drone displacement that decorrelates a view.
        retrial_bearing_rad: bearing change that decorrelates a view.
        retrial_timeout_s: a new trial is granted after this long even
            from an unchanged pose (sensor noise decorrelates slowly).
    """

    def __init__(
        self,
        operating_point: DetectorOperatingPoint,
        size_ref: float = 0.15,
        blur_ref_px: float = 8.0,
        accuracy_gamma: float = 1.2,
        rotation_blur_weight: float = 2.5,
        retrial_distance_m: float = 0.35,
        retrial_bearing_rad: float = 0.2,
        retrial_timeout_s: float = 2.5,
    ):
        if size_ref <= 0.0 or blur_ref_px <= 0.0 or accuracy_gamma <= 0.0:
            raise MissionError("model constants must be positive")
        self.operating_point = operating_point
        self.size_ref = size_ref
        self.blur_ref_px = blur_ref_px
        self.accuracy_gamma = accuracy_gamma
        self.rotation_blur_weight = rotation_blur_weight
        self.retrial_distance_m = retrial_distance_m
        self.retrial_bearing_rad = retrial_bearing_rad
        self.retrial_timeout_s = retrial_timeout_s
        self._last_trial: dict = {}

    def reset(self) -> None:
        self._last_trial = {}

    def base_probability(self) -> float:
        """Accuracy term: per-frame probability for an easy, static object."""
        return float(self.operating_point.map_score**self.accuracy_gamma)

    def size_factor(self, observation: ObjectObservation) -> float:
        """Discount for small apparent size."""
        xmin, ymin, xmax, ymax = observation.bbox
        height_frac = (ymax - ymin) / HIMAX_INTRINSICS.height_px
        return float(min(1.0, height_frac / self.size_ref))

    def blur_factor(self, observation: ObjectObservation, state: DroneState) -> float:
        """Discount for motion blur during the exposure."""
        f = HIMAX_INTRINSICS.focal_px
        # Apparent angular rate: translation perpendicular to the line of
        # sight plus the (rolling-shutter-weighted) body yaw rate.
        speed = state.speed()
        angular = speed / max(
            observation.distance_m, 0.1
        ) + self.rotation_blur_weight * abs(state.yaw_rate)
        blur_px = f * angular * HIMAX_EXPOSURE_S
        return float(1.0 / (1.0 + (blur_px / self.blur_ref_px) ** 2))

    def frame_probability(
        self, observation: ObjectObservation, state: DroneState
    ) -> float:
        """Probability this observation becomes a detection in this frame."""
        return (
            self.base_probability()
            * self.size_factor(observation)
            * self.blur_factor(observation, state)
        )

    def _trial_allowed(self, obs: ObjectObservation, state: DroneState) -> bool:
        """New Bernoulli trial only when the view decorrelated."""
        key = obs.obj.name
        last = self._last_trial.get(key)
        if last is None:
            return True
        last_pos, last_bearing, last_time = last
        moved = state.position.distance_to(last_pos)
        turned = abs(obs.bearing_rad - last_bearing)
        waited = state.time - last_time
        return (
            moved >= self.retrial_distance_m
            or turned >= self.retrial_bearing_rad
            or waited >= self.retrial_timeout_s
        )

    def detect(
        self,
        observations: Sequence[ObjectObservation],
        state: DroneState,
        rng: np.random.Generator,
    ) -> List[ObjectObservation]:
        detected = []
        for obs in observations:
            if not self._trial_allowed(obs, state):
                continue
            self._last_trial[obs.obj.name] = (
                state.position,
                obs.bearing_rad,
                state.time,
            )
            if rng.uniform() < self.frame_probability(obs, state):
                detected.append(obs)
        return detected


def paper_operating_points(
    map_1_0: float = 0.55, map_0_75: float = 0.46, map_0_5: float = 0.43
) -> dict:
    """The three deployed SSDs with the paper's Table I/II numbers.

    The quality figure defaults to the *float32 fine-tuned* mAP row of
    Table I (55/46/43), which tracks each model's intrinsic per-frame
    detectability better than the int8 row (where the small static test
    set makes 0.75x appear nearly equal to 1.0x, contradicting the
    closed-loop ranking the paper itself reports in Table III).

    Args:
        map_1_0: detectability score of SSD-MbV2-1.0.
        map_0_75: detectability score of SSD-MbV2-0.75.
        map_0_5: detectability score of SSD-MbV2-0.5.

    Returns:
        Mapping from width-multiplier string to
        :class:`DetectorOperatingPoint` (FPS from Table II).
    """
    return {
        "1.0": DetectorOperatingPoint("SSD-MbV2-1.0", fps=1.6, map_score=map_1_0),
        "0.75": DetectorOperatingPoint("SSD-MbV2-0.75", fps=2.3, map_score=map_0_75),
        "0.5": DetectorOperatingPoint("SSD-MbV2-0.5", fps=4.3, map_score=map_0_5),
    }
