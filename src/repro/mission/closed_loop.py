"""Closed-loop search mission: exploration + object detection (Sec. IV-C).

The exploration policy runs on the (simulated) STM32 at the control rate
while the detector consumes camera frames at its own onboard throughput,
mirroring the paper's host-accelerator split where the two tasks do not
interact. The mission reports the *detection rate*: the fraction of the
placed target objects detected at least once during the flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.drone.crazyflie import Crazyflie, CrazyflieConfig
from repro.errors import MissionError
from repro.geometry.vec import Vec2
from repro.mapping.coverage import CoverageSeries
from repro.mapping.mocap import MotionCaptureTracker
from repro.mission.detector_model import DetectionChannel, DetectorOperatingPoint
from repro.obs import FlightRecorder, MissionTrace
from repro.policies.base import ExplorationPolicy
from repro.seeding import SeedLike, spawn_streams
from repro.world.objects import SceneObject
from repro.world.room import Room


@dataclass(frozen=True)
class DetectionEvent:
    """First successful detection of one object."""

    object_name: str
    object_class: str
    time_s: float
    distance_m: float


@dataclass
class SearchResult:
    """Outcome of one closed-loop run.

    ``coverage`` is normalized by the grid cells reachable from the
    start pose (see :class:`~repro.mission.explorer.ExplorationResult`);
    ``coverage_raw`` keeps the historical all-cells fraction.
    """

    detection_rate: float  #: detected objects / placed objects
    events: List[DetectionEvent] = field(default_factory=list)
    coverage: float = 0.0  #: fraction of reachable free-space cells visited
    series: Optional[CoverageSeries] = None
    frames_processed: int = 0
    collisions: int = 0
    distance_flown_m: float = 0.0  #: integrated path length
    samples: Optional[list] = None  #: mocap trajectory for visualization
    coverage_raw: float = 0.0  #: fraction of all grid cells visited
    reachable_cells: int = 0  #: grid cells reachable from the start pose
    grid_cells: int = 0  #: total grid cells (the coverage_raw denominator)

    def time_to_full_detection(self) -> Optional[float]:
        """Time of the last first-detection if every object was found."""
        if self.detection_rate < 1.0 or not self.events:
            return None
        return max(e.time_s for e in self.events)


class ClosedLoopMission:
    """Runs exploration and detection concurrently for one flight.

    Args:
        room: the environment.
        objects: target objects placed in the room.
        policy: exploration policy.
        channel: detection channel (calibrated model or rendered CNN).
        operating_point: deployed SSD variant; its ``fps`` paces the
            camera frames.
        flight_time_s: run duration (180 s in the paper).
        start: drone start position.
        drone_config: platform configuration.
        record: when True, capture a per-tick flight trace; after
            :meth:`run` it is available as :attr:`last_trace`. The
            simulated flight is bit-identical with and without
            recording (the trace is observation, not intervention).
    """

    def __init__(
        self,
        room: Room,
        objects: Sequence[SceneObject],
        policy: ExplorationPolicy,
        channel: DetectionChannel,
        operating_point: DetectorOperatingPoint,
        flight_time_s: float = 180.0,
        start: Optional[Vec2] = None,
        drone_config: Optional[CrazyflieConfig] = None,
        record: bool = False,
    ):
        if not objects:
            raise MissionError("a search mission needs at least one object")
        if flight_time_s <= 0.0:
            raise MissionError("flight time must be positive")
        names = [o.name for o in objects]
        if len(set(names)) != len(names):
            raise MissionError("object names must be unique")
        self.room = room
        self.objects = list(objects)
        self.policy = policy
        self.channel = channel
        self.operating_point = operating_point
        self.flight_time_s = flight_time_s
        self.start = start
        self.drone_config = drone_config
        self.record = record
        self.last_trace: Optional[MissionTrace] = None

    def run(self, seed: SeedLike = None) -> SearchResult:
        """Execute one flight; fully reproducible given ``seed``.

        Args:
            seed: ``None``, an integer, or a
                :class:`~numpy.random.SeedSequence` (how the campaign
                engine hands each mission its own independent stream).
                The sensor, policy and detector RNGs are spawned as
                independent child streams, so results are bit-identical
                whether the mission runs serially or in a worker process.
        """
        drone_stream, policy_stream, detector_stream = spawn_streams(seed, 3)
        drone = Crazyflie(
            self.room, start=self.start, config=self.drone_config, seed=drone_stream
        )
        self.policy.reset(policy_stream)
        self.channel.reset()
        rng = np.random.default_rng(detector_stream)
        tracker = MotionCaptureTracker(self.room, start=drone.state.position)
        series = CoverageSeries()
        frame_period = 1.0 / self.operating_point.fps
        first_detection: Dict[str, DetectionEvent] = {}
        frames = 0
        distance = 0.0
        last_pos = drone.state.position
        n_steps = int(round(self.flight_time_s / drone.dt))
        recorder = None
        if not self.record:
            for _ in range(n_steps):
                reading = drone.read_ranger()
                setpoint = self.policy.update(reading, drone.estimated_state)
                state = drone.step(setpoint)
                distance += state.position.distance_to(last_pos)
                last_pos = state.position
                if tracker.observe(state):
                    series.append(state.time, tracker.coverage())
                # Frame times derive from the frame index: repeatedly adding
                # frame_period accumulates float error over the ~18k ticks of
                # a 180 s flight and slowly drifts the camera schedule.
                if state.time + 1e-9 >= frames * frame_period:
                    frames += 1
                    observations = drone.camera.observe(
                        self.room.raycaster, state.position, state.heading, self.objects
                    )
                    for obs in self.channel.detect(observations, state, rng):
                        name = obs.obj.name
                        if name not in first_detection:
                            first_detection[name] = DetectionEvent(
                                object_name=name,
                                object_class=obs.obj.object_class.value,
                                time_s=state.time,
                                distance_m=obs.distance_m,
                            )
        else:
            # Instrumented twin of the loop above: same calls in the
            # same order (the recorder only observes), plus per-phase
            # wall-clock accounting and per-tick telemetry capture.
            # Phase seconds accumulate in locals -- the timing overhead
            # per tick is a handful of perf_counter() calls.
            import time as _time

            perf = _time.perf_counter
            recorder = FlightRecorder("search")
            rtick = recorder.tick
            dynamics = drone.dynamics
            ph_ranger = ph_policy = ph_step = ph_mocap = 0.0
            ph_camera = ph_detect = 0.0
            for _ in range(n_steps):
                t0 = perf()
                reading = drone.read_ranger()
                t1 = perf()
                estimate = drone.estimated_state
                setpoint = self.policy.update(reading, estimate)
                t2 = perf()
                state = drone.step(setpoint)
                t3 = perf()
                distance += state.position.distance_to(last_pos)
                last_pos = state.position
                sampled = tracker.observe(state)
                t4 = perf()
                ph_ranger += t1 - t0
                ph_policy += t2 - t1
                ph_step += t3 - t2
                ph_mocap += t4 - t3
                if sampled:
                    coverage = tracker.coverage()
                    series.append(state.time, coverage)
                    recorder.coverage_sample(state.time, coverage)
                if state.time + 1e-9 >= frames * frame_period:
                    frames += 1
                    t5 = perf()
                    observations = drone.camera.observe(
                        self.room.raycaster,
                        state.position,
                        state.heading,
                        self.objects,
                    )
                    t6 = perf()
                    recorder.frame(state.time, len(observations))
                    detected = list(self.channel.detect(observations, state, rng))
                    ph_camera += t6 - t5
                    ph_detect += perf() - t6
                    for obs in detected:
                        name = obs.obj.name
                        if name not in first_detection:
                            first_detection[name] = DetectionEvent(
                                object_name=name,
                                object_class=obs.obj.object_class.value,
                                time_s=state.time,
                                distance_m=obs.distance_m,
                            )
                            recorder.detection(
                                name,
                                obs.obj.object_class.value,
                                state.time,
                                obs.distance_m,
                            )
                rtick(
                    state,
                    estimate,
                    setpoint,
                    reading,
                    dynamics.collision_count,
                )
            recorder.add_phase("ranger", ph_ranger)
            recorder.add_phase("policy", ph_policy)
            recorder.add_phase("step", ph_step)
            recorder.add_phase("mocap", ph_mocap)
            recorder.add_phase("camera", ph_camera)
            recorder.add_phase("detect", ph_detect)
        events = sorted(first_detection.values(), key=lambda e: e.time_s)
        result = SearchResult(
            detection_rate=len(events) / len(self.objects),
            events=events,
            coverage=tracker.coverage(),
            series=series,
            frames_processed=frames,
            collisions=drone.dynamics.collision_count,
            distance_flown_m=distance,
            samples=tracker.samples,
            coverage_raw=tracker.coverage_raw(),
            reachable_cells=tracker.reachable_cells,
            grid_cells=tracker.grid.n_cells,
        )
        if recorder is not None:
            self.last_trace = recorder.finish(
                {
                    "detection_rate": result.detection_rate,
                    "coverage": result.coverage,
                    "coverage_raw": result.coverage_raw,
                    "collisions": result.collisions,
                    "distance_flown_m": result.distance_flown_m,
                    "flight_time_s": self.flight_time_s,
                    "frames_processed": result.frames_processed,
                    "n_objects": len(self.objects),
                    "reachable_cells": result.reachable_cells,
                    "grid_cells": result.grid_cells,
                }
            )
        return result
