"""The four bio-inspired exploration policies of the paper (Sec. III-C).

All policies consume only the front/left/right beams of the Multi-ranger
deck plus the onboard heading estimate, and emit velocity set-points --
the exact interface the paper's STM32 firmware implements.
"""

from repro.policies.base import ExplorationPolicy, PolicyConfig
from repro.policies.pseudo_random import PseudoRandomPolicy
from repro.policies.wall_following import WallFollowingPolicy
from repro.policies.spiral import SpiralPolicy
from repro.policies.rotate_measure import RotateAndMeasurePolicy
from repro.policies.registry import POLICY_NAMES, make_policy

__all__ = [
    "ExplorationPolicy",
    "PolicyConfig",
    "PseudoRandomPolicy",
    "WallFollowingPolicy",
    "SpiralPolicy",
    "RotateAndMeasurePolicy",
    "POLICY_NAMES",
    "make_policy",
]
