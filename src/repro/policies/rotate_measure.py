"""Rotate-and-measure exploration policy (paper Fig. 2-D).

Two alternating phases: (1) a full 360 deg in-place spin sampling the
front ToF distance every 45 deg, then (2) a straight flight along the
most obstacle-free of the eight sampled directions, for at most 2 m.
The paper observes this policy spends most of the 3-minute flight
spinning in place around the room centre and frequently neglects the
corners.
"""

from __future__ import annotations

import enum
import math
from typing import List, Optional

from repro.drone.controller import SetPoint
from repro.drone.state_estimator import EstimatedState
from repro.geometry.vec import Vec2, angle_diff, normalize_angle
from repro.policies.base import ExplorationPolicy, PolicyConfig
from repro.sensors.multiranger import RangerReading

#: Angular spacing of the scan samples (the paper measures every 45 deg).
SCAN_STEP_RAD = math.pi / 4.0

#: Number of samples per full scan.
SCAN_SAMPLES = 8


class _Phase(enum.Enum):
    SCAN = "scan"
    GO = "go"


class RotateAndMeasurePolicy(ExplorationPolicy):
    """Spin-scan then fly along the freest direction.

    Args:
        config: shared policy tunables.
        max_leg_m: maximum straight-flight distance per leg (2 m in the
            paper).
    """

    name = "rotate-and-measure"

    def __init__(self, config: PolicyConfig = None, max_leg_m: float = 2.0):
        super().__init__(config)
        if max_leg_m <= 0.0:
            raise ValueError("max leg length must be positive")
        self.max_leg_m = max_leg_m
        self._phase = _Phase.SCAN
        self._scan_headings: List[float] = []
        self._scan_distances: List[float] = []
        self._next_sample_heading: Optional[float] = None
        self._scan_start_heading = 0.0
        self._samples_taken = 0
        self._leg_start: Optional[Vec2] = None
        self._leg_length = 0.0

    @property
    def phase_name(self) -> str:
        """Current phase (for logging and tests)."""
        return self._phase.value

    def _on_reset(self) -> None:
        self._phase = _Phase.SCAN
        self._start_scan_pending = True
        self._scan_headings = []
        self._scan_distances = []
        self._next_sample_heading = None
        self._samples_taken = 0
        self._leg_start = None
        self._leg_length = 0.0

    def _decide(self, reading: RangerReading, estimate: EstimatedState) -> SetPoint:
        if self._phase == _Phase.SCAN:
            return self._scan_step(reading, estimate)
        return self._go_step(reading, estimate)

    # -- phase 1: the 360 deg scan ---------------------------------------

    def _scan_step(self, reading: RangerReading, estimate: EstimatedState) -> SetPoint:
        if self._samples_taken == 0 and self._next_sample_heading is None:
            # Scan starts now: sample the current heading immediately.
            self._scan_start_heading = estimate.heading
            self._record_sample(reading, estimate.heading)
            self._next_sample_heading = normalize_angle(
                estimate.heading + SCAN_STEP_RAD
            )
            return SetPoint(yaw_rate=self.config.turn_rate)

        assert self._next_sample_heading is not None
        error = angle_diff(self._next_sample_heading, estimate.heading)
        if abs(error) < self.config.heading_tolerance:
            self._record_sample(reading, estimate.heading)
            if self._samples_taken >= SCAN_SAMPLES:
                self._begin_go(estimate)
                return self._go_step(reading, estimate)
            self._next_sample_heading = normalize_angle(
                self._next_sample_heading + SCAN_STEP_RAD
            )
        return SetPoint(yaw_rate=self.config.turn_rate)

    def _record_sample(self, reading: RangerReading, heading: float) -> None:
        self._scan_headings.append(heading)
        self._scan_distances.append(reading.front)
        self._samples_taken += 1

    # -- phase 2: fly the freest direction --------------------------------

    def _begin_go(self, estimate: EstimatedState) -> None:
        best = max(self._scan_distances)
        candidates = [
            h
            for h, d in zip(self._scan_headings, self._scan_distances)
            if d >= best - 1e-9
        ]
        choice = candidates[int(self._rng.integers(len(candidates)))]
        self._phase = _Phase.GO
        self._leg_start = estimate.position
        self._leg_length = min(self.max_leg_m, max(0.0, best - 0.5))
        self._begin_turn(estimate.heading, angle_diff(choice, estimate.heading))

    def _go_step(self, reading: RangerReading, estimate: EstimatedState) -> SetPoint:
        if self.turning:
            return self._turn_step(estimate)
        assert self._leg_start is not None
        traveled = estimate.position.distance_to(self._leg_start)
        if (
            traveled >= self._leg_length
            or reading.front < self.config.obstacle_threshold
        ):
            self._start_new_scan()
            return SetPoint.hover()
        return SetPoint(forward=self.config.cruise_speed)

    def _start_new_scan(self) -> None:
        self._phase = _Phase.SCAN
        self._scan_headings = []
        self._scan_distances = []
        self._next_sample_heading = None
        self._samples_taken = 0
        self._leg_start = None
