"""Pseudo-random exploration policy (paper Fig. 2-A).

"The drone flies in a straight line as long as the ToF sensor does not
identify obstacles within 1 m. When an obstacle is identified, the drone
rotates to a random value, which is always greater than +/-90 deg from
the current heading" -- the angle floor reduces the chance of re-facing
the obstacle just avoided. This is the policy that wins both the coverage
(Fig. 5) and closed-loop detection (Table III) comparisons at 0.5-1 m/s.
"""

from __future__ import annotations

import math

from repro.drone.controller import SetPoint
from repro.drone.state_estimator import EstimatedState
from repro.policies.base import ExplorationPolicy, PolicyConfig
from repro.sensors.multiranger import RangerReading


class PseudoRandomPolicy(ExplorationPolicy):
    """Straight-line cruise with random >=90 deg turns at obstacles.

    Args:
        config: shared policy tunables.
        min_turn_deg: lower bound of the random turn magnitude, degrees
            (90 in the paper; exposed for the ablation study).
        max_turn_deg: upper bound of the random turn magnitude, degrees.
    """

    name = "pseudo-random"

    def __init__(
        self,
        config: PolicyConfig = None,
        min_turn_deg: float = 90.0,
        max_turn_deg: float = 180.0,
    ):
        super().__init__(config)
        if not 0.0 < min_turn_deg <= max_turn_deg <= 180.0:
            raise ValueError("turn bounds must satisfy 0 < min <= max <= 180")
        self.min_turn_deg = min_turn_deg
        self.max_turn_deg = max_turn_deg

    def _decide(self, reading: RangerReading, estimate: EstimatedState) -> SetPoint:
        if self.turning:
            return self._turn_step(estimate)
        if reading.front < self.config.obstacle_threshold:
            magnitude = math.radians(
                self._rng.uniform(self.min_turn_deg, self.max_turn_deg)
            )
            sign = 1.0 if self._rng.uniform() < 0.5 else -1.0
            self._begin_turn(estimate.heading, sign * magnitude)
            return self._turn_step(estimate)
        return SetPoint(forward=self.config.cruise_speed)
