"""Common machinery for the exploration policies.

Every policy is a lightweight state machine (the paper runs them on a
single-core STM32F405 next to the flight controller) with the interface:

    policy.reset(seed)                      # before each flight
    setpoint = policy.update(reading, estimate)   # once per control tick

The ``reading`` is the latest :class:`~repro.sensors.multiranger.RangerReading`
and ``estimate`` the onboard :class:`~repro.drone.state_estimator.EstimatedState`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.drone.controller import SetPoint
from repro.drone.state_estimator import EstimatedState
from repro.errors import PolicyError
from repro.geometry.vec import angle_diff, normalize_angle
from repro.seeding import DEFAULT_INIT_SEED, SeedLike
from repro.sensors.multiranger import RangerReading


@dataclass(frozen=True)
class PolicyConfig:
    """Tunables shared by the four policies.

    Attributes:
        cruise_speed: mean forward flight speed, m/s. The paper evaluates
            0.1, 0.5 and 1.0 m/s.
        obstacle_threshold: front distance below which the policy reacts, m
            (1 m in the paper).
        wall_distance: target lateral distance to the wall for the
            wall-following and spiral policies, m (0.5 m in the paper).
        turn_rate: in-place turn rate, rad/s.
        side_gain: proportional gain of the lateral wall-distance loop, 1/s.
        heading_tolerance: angular error at which a commanded turn is
            declared complete, rad.
    """

    cruise_speed: float = 0.5
    obstacle_threshold: float = 1.0
    wall_distance: float = 0.5
    turn_rate: float = 1.8
    side_gain: float = 1.2
    heading_tolerance: float = 0.06

    def __post_init__(self) -> None:
        if self.cruise_speed <= 0.0:
            raise PolicyError("cruise speed must be positive")
        if self.obstacle_threshold <= 0.0:
            raise PolicyError("obstacle threshold must be positive")
        if self.wall_distance <= 0.0:
            raise PolicyError("wall distance must be positive")
        if self.turn_rate <= 0.0:
            raise PolicyError("turn rate must be positive")


class ExplorationPolicy(abc.ABC):
    """Base class: turn-maneuver bookkeeping shared by every policy."""

    #: Human-readable name; subclasses override.
    name: str = "base"

    def __init__(self, config: Optional[PolicyConfig] = None):
        self.config = config or PolicyConfig()
        self._rng = np.random.default_rng(DEFAULT_INIT_SEED)
        self._turn_target: Optional[float] = None
        self._turn_direction = 1.0
        self._was_reset = False

    def reset(self, seed: SeedLike = None) -> None:
        """Prepare the policy for a new flight."""
        self._rng = np.random.default_rng(seed)
        self._turn_target = None
        self._turn_direction = 1.0
        self._was_reset = True
        self._on_reset()

    def update(self, reading: RangerReading, estimate: EstimatedState) -> SetPoint:
        """Compute the set-point for the current control tick."""
        if not self._was_reset:
            raise PolicyError(f"{self.name}: call reset() before update()")
        return self._decide(reading, estimate)

    @abc.abstractmethod
    def _decide(self, reading: RangerReading, estimate: EstimatedState) -> SetPoint:
        """Policy-specific decision; implemented by subclasses."""

    def _on_reset(self) -> None:
        """Hook for subclasses to clear their state-machine state."""

    # -- turn maneuver helpers -------------------------------------------

    def _begin_turn(self, current_heading: float, delta: float) -> None:
        """Start an in-place turn of ``delta`` radians (signed)."""
        self._turn_target = normalize_angle(current_heading + delta)
        self._turn_direction = 1.0 if delta >= 0.0 else -1.0

    @property
    def turning(self) -> bool:
        """True while a commanded turn is in progress."""
        return self._turn_target is not None

    def _turn_step(self, estimate: EstimatedState) -> SetPoint:
        """Set-point that continues the current turn; ends it when aligned."""
        if self._turn_target is None:
            raise PolicyError("no turn in progress")
        error = angle_diff(self._turn_target, estimate.heading)
        if abs(error) < self.config.heading_tolerance:
            self._turn_target = None
            return SetPoint.hover()
        # Slow down near the target to avoid overshooting at 50 Hz.
        rate = min(self.config.turn_rate, 4.0 * abs(error))
        direction = self._turn_direction if abs(error) > 0.5 else (1.0 if error > 0 else -1.0)
        return SetPoint(forward=0.0, side=0.0, yaw_rate=direction * rate)
