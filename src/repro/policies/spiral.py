"""Spiral exploration policy (paper Fig. 2-C).

Concentric perimeter laps: the first lap follows the walls at 0.5 m, and
each completed lap increases the tracked wall distance by the same step
until the room centre is reached; then the distance decreases lap by lap
back to 0.5 m, and the cycle starts over. Lap completion is detected from
the accumulated heading change (four ~90 deg corners per lap).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.drone.controller import SetPoint
from repro.drone.state_estimator import EstimatedState
from repro.geometry.vec import angle_diff
from repro.policies.base import PolicyConfig
from repro.policies.wall_following import WallFollowingPolicy
from repro.sensors.multiranger import RangerReading


class SpiralPolicy(WallFollowingPolicy):
    """Inward-then-outward concentric perimeter exploration.

    Args:
        config: shared policy tunables; ``config.wall_distance`` is both
            the initial lateral distance and the per-lap increment.
        max_distance: wall distance at which the spiral reverses; defaults
            to 2.25 m which reaches the centre of the paper's 5.5 m room.
    """

    name = "spiral"

    def __init__(
        self,
        config: PolicyConfig = None,
        max_distance: Optional[float] = None,
        follow_side: str = "right",
    ):
        super().__init__(config, follow_side=follow_side)
        self.step = self.config.wall_distance
        self.max_distance = (
            max_distance if max_distance is not None else 2.25
        )
        self._accumulated_turn = 0.0
        self._last_heading: Optional[float] = None
        self._inward = True
        self._lap = 0

    @property
    def lap(self) -> int:
        """Number of completed laps since reset."""
        return self._lap

    @property
    def inward(self) -> bool:
        """True while the spiral is tightening towards the centre."""
        return self._inward

    def _on_reset(self) -> None:
        super()._on_reset()
        self._accumulated_turn = 0.0
        self._last_heading = None
        self._inward = True
        self._lap = 0
        self.set_target_distance(self.config.wall_distance)

    def _decide(self, reading: RangerReading, estimate: EstimatedState) -> SetPoint:
        self._track_laps(estimate.heading)
        return super()._decide(reading, estimate)

    def _track_laps(self, heading: float) -> None:
        if self._last_heading is not None:
            self._accumulated_turn += angle_diff(heading, self._last_heading)
        self._last_heading = heading
        lap_angle = 2.0 * math.pi
        # The right-followed perimeter turns CCW (+), the left one CW (-).
        sign = 1.0 if self.follow_side == "right" else -1.0
        if sign * self._accumulated_turn >= lap_angle:
            self._accumulated_turn -= sign * lap_angle
            self._complete_lap()

    def _complete_lap(self) -> None:
        self._lap += 1
        current = self.target_distance
        if self._inward:
            nxt = current + self.step
            if nxt > self.max_distance:
                self._inward = False
                nxt = max(self.config.wall_distance, current - self.step)
        else:
            nxt = current - self.step
            if nxt < self.config.wall_distance:
                # Back at the perimeter: the process starts over (paper).
                self._inward = True
                nxt = self.config.wall_distance
        self.set_target_distance(nxt)
