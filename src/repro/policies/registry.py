"""Name-based construction of exploration policies.

The experiment harness sweeps policies by name; this registry is the one
place mapping names to classes.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.errors import PolicyError
from repro.policies.base import ExplorationPolicy, PolicyConfig
from repro.policies.pseudo_random import PseudoRandomPolicy
from repro.policies.rotate_measure import RotateAndMeasurePolicy
from repro.policies.spiral import SpiralPolicy
from repro.policies.wall_following import WallFollowingPolicy

_REGISTRY: Dict[str, Type[ExplorationPolicy]] = {
    PseudoRandomPolicy.name: PseudoRandomPolicy,
    WallFollowingPolicy.name: WallFollowingPolicy,
    SpiralPolicy.name: SpiralPolicy,
    RotateAndMeasurePolicy.name: RotateAndMeasurePolicy,
}

#: The four policy names, in the paper's order (Fig. 2 A-D).
POLICY_NAMES = (
    PseudoRandomPolicy.name,
    WallFollowingPolicy.name,
    SpiralPolicy.name,
    RotateAndMeasurePolicy.name,
)


def make_policy(name: str, config: Optional[PolicyConfig] = None) -> ExplorationPolicy:
    """Instantiate a policy by its registered name.

    Args:
        name: one of :data:`POLICY_NAMES`.
        config: shared tunables; defaults to the paper's values.

    Raises:
        PolicyError: for an unknown name.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise PolicyError(f"unknown policy {name!r}; known: {known}") from None
    return cls(config)
