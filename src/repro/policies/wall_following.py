"""Wall-following exploration policy (paper Fig. 2-B).

The drone follows the room perimeter keeping a constant lateral distance
(0.5 m in the paper) from the wall on its right, measured by the side ToF
sensor. When a front obstacle appears (a corner), navigation stops and
resumes after a ~90 deg turn towards an obstacle-free heading. By
construction this policy never explores the inner part of the room, which
is exactly the weakness Table III exposes (it misses the centre objects).
"""

from __future__ import annotations

import enum
import math
from typing import Optional

from repro.drone.controller import SetPoint
from repro.drone.state_estimator import EstimatedState
from repro.policies.base import ExplorationPolicy, PolicyConfig
from repro.sensors.multiranger import RangerReading


class _State(enum.Enum):
    ACQUIRE = "acquire"  # fly forward until a wall is found
    ALIGN = "align"  # turn to put the wall on the followed side
    FOLLOW = "follow"  # track the wall at the target distance
    CORNER = "corner"  # in-place turn at a corner


class WallFollowingPolicy(ExplorationPolicy):
    """Perimeter exploration at a fixed wall distance.

    Args:
        config: shared policy tunables; ``config.wall_distance`` is the
            tracked lateral clearance.
        follow_side: ``"right"`` (default, counter-clockwise perimeter) or
            ``"left"``.
    """

    name = "wall-following"

    def __init__(self, config: PolicyConfig = None, follow_side: str = "right"):
        super().__init__(config)
        if follow_side not in ("left", "right"):
            raise ValueError("follow_side must be 'left' or 'right'")
        self.follow_side = follow_side
        self._state = _State.ACQUIRE
        self._target_distance: Optional[float] = None

    @property
    def state_name(self) -> str:
        """Name of the internal state (for logging and tests)."""
        return self._state.value

    @property
    def target_distance(self) -> float:
        """Lateral distance currently tracked (the spiral policy varies it)."""
        if self._target_distance is None:
            return self.config.wall_distance
        return self._target_distance

    def set_target_distance(self, distance: float) -> None:
        """Override the tracked wall distance (used by the spiral policy)."""
        self._target_distance = distance

    def _on_reset(self) -> None:
        self._state = _State.ACQUIRE
        self._target_distance = None

    def _side_reading(self, reading: RangerReading) -> float:
        return reading.right if self.follow_side == "right" else reading.left

    def _turn_away_sign(self) -> float:
        """Sign of a turn away from the followed wall (+ is CCW/left)."""
        return 1.0 if self.follow_side == "right" else -1.0

    def _decide(self, reading: RangerReading, estimate: EstimatedState) -> SetPoint:
        if self.turning:
            sp = self._turn_step(estimate)
            if not self.turning and self._state in (_State.ALIGN, _State.CORNER):
                self._state = _State.FOLLOW
            return sp

        stop_dist = max(self.config.obstacle_threshold, self.target_distance + 0.2)
        if self._state == _State.ACQUIRE:
            if reading.front < stop_dist:
                # Wall found ahead: turn away so it ends up on the followed side.
                self._state = _State.ALIGN
                self._begin_turn(estimate.heading, self._turn_away_sign() * math.pi / 2.0)
                return self._turn_step(estimate)
            return SetPoint(forward=self.config.cruise_speed)

        # FOLLOW state ----------------------------------------------------
        if reading.front < stop_dist:
            self._state = _State.CORNER
            self._begin_turn(estimate.heading, self._turn_away_sign() * math.pi / 2.0)
            return self._turn_step(estimate)

        side = self._side_reading(reading)
        error = side - self.target_distance  # + means too far from the wall
        # Body +y is left: drift towards a right-hand wall needs side < 0.
        correction = self.config.side_gain * error
        correction = max(-0.3, min(0.3, correction))
        side_cmd = -correction if self.follow_side == "right" else correction
        return SetPoint(forward=self.config.cruise_speed, side=side_cmd)
