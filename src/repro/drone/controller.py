"""Velocity set-point interface and the inner-loop controller model.

The exploration policies command the drone exactly the way the paper's
STM32 firmware does (Sec. III-B): a *set-point* of forward speed and yaw
rate (plus an optional sideways speed used by the wall-following and
spiral policies to regulate wall distance). The cascaded attitude/rate
PIDs of the real Crazyflie are abstracted into a first-order velocity
response implemented by :class:`VelocityController` +
:class:`~repro.drone.dynamics.DroneDynamics`.
"""

from __future__ import annotations

from dataclasses import dataclass


class SetPoint:
    """A velocity set-point in the drone body frame.

    Attributes:
        forward: desired forward speed, m/s (+x body axis).
        side: desired leftward speed, m/s (+y body axis).
        yaw_rate: desired yaw rate, rad/s (counter-clockwise positive).

    A ``__slots__`` value class: policies emit one per control tick.
    """

    __slots__ = ("forward", "side", "yaw_rate")

    def __init__(
        self, forward: float = 0.0, side: float = 0.0, yaw_rate: float = 0.0
    ):
        self.forward = forward
        self.side = side
        self.yaw_rate = yaw_rate

    def __eq__(self, other) -> bool:
        if other.__class__ is SetPoint:
            return (
                self.forward == other.forward
                and self.side == other.side
                and self.yaw_rate == other.yaw_rate
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.forward, self.side, self.yaw_rate))

    def __repr__(self) -> str:
        return (
            f"SetPoint(forward={self.forward!r}, side={self.side!r}, "
            f"yaw_rate={self.yaw_rate!r})"
        )

    @staticmethod
    def hover() -> "SetPoint":
        """The zero set-point."""
        return SetPoint(0.0, 0.0, 0.0)


@dataclass
class VelocityController:
    """Clamps set-points to the platform envelope before the dynamics.

    Attributes:
        max_speed: speed limit on each body axis, m/s.
        max_yaw_rate: yaw-rate limit, rad/s.
    """

    max_speed: float = 1.5
    max_yaw_rate: float = 3.5

    def clamp(self, setpoint: SetPoint) -> SetPoint:
        """Saturate a set-point to the platform limits.

        An in-envelope set-point is returned as-is (set-points are
        treated as immutable values), so the common unsaturated tick
        allocates nothing.
        """
        v = self.max_speed
        w = self.max_yaw_rate
        if (
            -v <= setpoint.forward <= v
            and -v <= setpoint.side <= v
            and -w <= setpoint.yaw_rate <= w
        ):
            return setpoint

        def _clip(value: float, limit: float) -> float:
            return max(-limit, min(limit, value))

        return SetPoint(
            forward=_clip(setpoint.forward, v),
            side=_clip(setpoint.side, v),
            yaw_rate=_clip(setpoint.yaw_rate, w),
        )
