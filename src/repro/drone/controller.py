"""Velocity set-point interface and the inner-loop controller model.

The exploration policies command the drone exactly the way the paper's
STM32 firmware does (Sec. III-B): a *set-point* of forward speed and yaw
rate (plus an optional sideways speed used by the wall-following and
spiral policies to regulate wall distance). The cascaded attitude/rate
PIDs of the real Crazyflie are abstracted into a first-order velocity
response implemented by :class:`VelocityController` +
:class:`~repro.drone.dynamics.DroneDynamics`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SetPoint:
    """A velocity set-point in the drone body frame.

    Attributes:
        forward: desired forward speed, m/s (+x body axis).
        side: desired leftward speed, m/s (+y body axis).
        yaw_rate: desired yaw rate, rad/s (counter-clockwise positive).
    """

    forward: float = 0.0
    side: float = 0.0
    yaw_rate: float = 0.0

    @staticmethod
    def hover() -> "SetPoint":
        """The zero set-point."""
        return SetPoint(0.0, 0.0, 0.0)


@dataclass
class VelocityController:
    """Clamps set-points to the platform envelope before the dynamics.

    Attributes:
        max_speed: speed limit on each body axis, m/s.
        max_yaw_rate: yaw-rate limit, rad/s.
    """

    max_speed: float = 1.5
    max_yaw_rate: float = 3.5

    def clamp(self, setpoint: SetPoint) -> SetPoint:
        """Saturate a set-point to the platform limits."""

        def _clip(v: float, limit: float) -> float:
            return max(-limit, min(limit, v))

        return SetPoint(
            forward=_clip(setpoint.forward, self.max_speed),
            side=_clip(setpoint.side, self.max_speed),
            yaw_rate=_clip(setpoint.yaw_rate, self.max_yaw_rate),
        )
