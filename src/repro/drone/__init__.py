"""The simulated Crazyflie 2.1 nano-drone platform."""

from repro.drone.dynamics import DroneDynamics, DroneState
from repro.drone.controller import SetPoint, VelocityController
from repro.drone.state_estimator import EstimatedState, StateEstimator
from repro.drone.crazyflie import Crazyflie, CrazyflieConfig

__all__ = [
    "DroneDynamics",
    "DroneState",
    "SetPoint",
    "VelocityController",
    "EstimatedState",
    "StateEstimator",
    "Crazyflie",
    "CrazyflieConfig",
]
