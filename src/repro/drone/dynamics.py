"""Planar kinematic model of the nano-drone with first-order velocity lag.

The Crazyflie's inner control loops track velocity set-points with a
settling time of a few hundred milliseconds; we model that closed-loop
behaviour as a first-order response on each body axis and on the yaw
rate. The drone cannot penetrate walls or obstacles: a blocked motion is
resolved by axis decomposition (slide along the wall) and counted as a
collision contact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import WorldError
from repro.drone.controller import SetPoint
from repro.geometry.vec import Vec2, normalize_angle
from repro.world.room import Room

#: Physical radius of the Crazyflie footprint including propellers, m.
CRAZYFLIE_RADIUS_M = 0.07


class DroneState:
    """Ground-truth state of the drone.

    Attributes:
        position: world position, m.
        heading: yaw, rad.
        vx_body: forward speed, m/s.
        vy_body: leftward speed, m/s.
        yaw_rate: rad/s.
        time: simulation time, s.

    A ``__slots__`` value class rather than a frozen dataclass: one is
    created per control tick and the dataclass init machinery was a
    measurable slice of the tick loop.
    """

    __slots__ = ("position", "heading", "vx_body", "vy_body", "yaw_rate", "time")

    def __init__(
        self,
        position: Vec2,
        heading: float,
        vx_body: float = 0.0,
        vy_body: float = 0.0,
        yaw_rate: float = 0.0,
        time: float = 0.0,
    ):
        self.position = position
        self.heading = heading
        self.vx_body = vx_body
        self.vy_body = vy_body
        self.yaw_rate = yaw_rate
        self.time = time

    def __eq__(self, other) -> bool:
        if other.__class__ is DroneState:
            return (
                self.position == other.position
                and self.heading == other.heading
                and self.vx_body == other.vx_body
                and self.vy_body == other.vy_body
                and self.yaw_rate == other.yaw_rate
                and self.time == other.time
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(
            (
                self.position,
                self.heading,
                self.vx_body,
                self.vy_body,
                self.yaw_rate,
                self.time,
            )
        )

    def __repr__(self) -> str:
        return (
            f"DroneState(position={self.position!r}, heading={self.heading!r}, "
            f"vx_body={self.vx_body!r}, vy_body={self.vy_body!r}, "
            f"yaw_rate={self.yaw_rate!r}, time={self.time!r})"
        )

    def velocity_world(self) -> Vec2:
        """Body velocity rotated into the world frame."""
        c, s = math.cos(self.heading), math.sin(self.heading)
        return Vec2(
            c * self.vx_body - s * self.vy_body,
            s * self.vx_body + c * self.vy_body,
        )

    def speed(self) -> float:
        """Magnitude of the planar velocity."""
        return math.hypot(self.vx_body, self.vy_body)


@dataclass
class DroneDynamics:
    """Integrates the drone state inside a room.

    Attributes:
        room: the world the drone flies in.
        state: current ground-truth state.
        velocity_tau: first-order time constant of the velocity response, s.
        yaw_tau: time constant of the yaw-rate response, s.
        radius: collision radius, m.
        collision_count: number of control steps in which motion was
            blocked by a wall or obstacle.
    """

    room: Room
    state: DroneState
    velocity_tau: float = 0.25
    yaw_tau: float = 0.10
    radius: float = CRAZYFLIE_RADIUS_M
    collision_count: int = field(default=0)

    def __post_init__(self) -> None:
        if not self.room.is_free(self.state.position, margin=self.radius):
            raise WorldError(
                f"initial position {self.state.position} is not free space"
            )
        self._alpha_cache = None

    def step(self, setpoint: SetPoint, dt: float) -> DroneState:
        """Advance the simulation by ``dt`` seconds under a set-point.

        Returns:
            The new ground-truth state.
        """
        s = self.state
        # The first-order response coefficients depend only on dt, which
        # is fixed at the control rate; cache them across ticks.
        cached = self._alpha_cache
        if cached is not None and cached[0] == dt:
            alpha_v, alpha_w = cached[1], cached[2]
        else:
            alpha_v = 1.0 - math.exp(-dt / self.velocity_tau)
            alpha_w = 1.0 - math.exp(-dt / self.yaw_tau)
            self._alpha_cache = (dt, alpha_v, alpha_w)
        vx = s.vx_body + alpha_v * (setpoint.forward - s.vx_body)
        vy = s.vy_body + alpha_v * (setpoint.side - s.vy_body)
        wz = s.yaw_rate + alpha_w * (setpoint.yaw_rate - s.yaw_rate)

        heading = normalize_angle(s.heading + wz * dt)
        # World-frame displacement (velocity_world() * dt inlined to skip
        # building a candidate state just to rotate the body velocity).
        ch, sh = math.cos(heading), math.sin(heading)
        delta = Vec2((ch * vx - sh * vy) * dt, (sh * vx + ch * vy) * dt)
        new_pos, blocked = self._resolve_motion(s.position, delta)
        if blocked:
            self.collision_count += 1
            # A blocked axis means the wall absorbed that velocity component.
            vx, vy = self._body_velocity_after_contact(new_pos, s.position, heading, dt)
        self.state = DroneState(
            position=new_pos,
            heading=heading,
            vx_body=vx,
            vy_body=vy,
            yaw_rate=wz,
            time=s.time + dt,
        )
        return self.state

    def _resolve_motion(self, start: Vec2, delta: Vec2):
        """Move by ``delta`` if free; otherwise slide along the free axis."""
        target = start + delta
        if self.room.is_free(target, margin=self.radius):
            return target, False
        x_only = Vec2(start.x + delta.x, start.y)
        if self.room.is_free(x_only, margin=self.radius):
            return x_only, True
        y_only = Vec2(start.x, start.y + delta.y)
        if self.room.is_free(y_only, margin=self.radius):
            return y_only, True
        return start, True

    def _body_velocity_after_contact(
        self, new_pos: Vec2, old_pos: Vec2, heading: float, dt: float
    ):
        """Effective body velocity given the position actually reached."""
        actual = Vec2((new_pos.x - old_pos.x) / dt, (new_pos.y - old_pos.y) / dt)
        c, s = math.cos(heading), math.sin(heading)
        return c * actual.x + s * actual.y, -s * actual.x + c * actual.y
