"""Assembly of the full simulated Crazyflie 2.1 platform.

Combines the kinematic model, inner-loop controller, state estimator and
the three expansion decks of the paper's prototype (Flow deck,
Multi-ranger deck, AI-deck camera). The control loop runs at 50 Hz (the
rate of the paper's motion-capture tracking and a typical firmware
commander rate); the ToF deck refreshes at its native 20 Hz, so the
policies see a new ranger reading roughly every 2.5 control ticks, just
like on the real platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.drone.controller import SetPoint, VelocityController
from repro.drone.dynamics import CRAZYFLIE_RADIUS_M, DroneDynamics, DroneState
from repro.drone.state_estimator import EstimatedState, StateEstimator
from repro.geometry.vec import Vec2
from repro.sensors.camera import HimaxCamera
from repro.sensors.flowdeck import FlowDeck
from repro.sensors.imu import Gyro
from repro.sensors.multiranger import MultiRangerDeck, RangerReading
from repro.seeding import SeedLike, spawn_streams
from repro.world.room import Room

#: Control-loop rate of the simulated platform, Hz.
CONTROL_RATE_HZ = 50.0


@dataclass
class CrazyflieConfig:
    """Configuration of the simulated platform.

    Attributes:
        control_rate_hz: rate of the outer control loop.
        tof_noise_std: Multi-ranger per-beam range noise, m.
        tof_dropout_prob: Multi-ranger per-beam dropout probability.
        odometry_noise_std: Flow-deck velocity noise, m/s.
        gyro_noise_std: gyro white noise, rad/s.
        noisy: master switch; ``False`` makes every sensor ideal.
        velocity_tau: velocity response time constant, s.
        yaw_tau: yaw-rate response time constant, s.
    """

    control_rate_hz: float = CONTROL_RATE_HZ
    tof_noise_std: float = 0.01
    tof_dropout_prob: float = 0.002
    odometry_noise_std: float = 0.02
    gyro_noise_std: float = 0.005
    noisy: bool = True
    velocity_tau: float = 0.25
    yaw_tau: float = 0.10
    #: When True (default) the tick loop uses the batched sensor paths:
    #: one kernel call for all Multi-ranger beams, one pre-drawn
    #: standard-normal block per tick for the flow deck + gyro, and the
    #: batched camera occlusion test. ``False`` restores the per-beam /
    #: per-draw / per-object reference path; both produce bit-identical
    #: missions (see tests/test_sim_core_equivalence.py).
    batched_sensors: bool = True


class Crazyflie:
    """The simulated nano-drone with all decks mounted.

    Args:
        room: the world to fly in.
        start: initial position; defaults to 1 m from the south-west corner.
        heading: initial heading, rad.
        config: platform configuration.
        seed: RNG seed for the sensor noise sources (``None``, an int,
            or a :class:`~numpy.random.SeedSequence` stream). Four child
            streams are spawned from it in a fixed order -- flow deck,
            gyro, ranger dropout, ranger gaussian noise -- so each
            sensor owns an independent stream whose position depends
            only on the tick / refresh count. That independence is what
            lets the fleet stepper (:mod:`repro.sim.fleet`) pre-draw
            every mission's noise as one block per sensor and still
            reproduce a serial mission bit-for-bit.
    """

    def __init__(
        self,
        room: Room,
        start: Optional[Vec2] = None,
        heading: float = 0.0,
        config: Optional[CrazyflieConfig] = None,
        seed: SeedLike = None,
    ):
        self.room = room
        self.config = config or CrazyflieConfig()
        if self.config.noisy:
            flow_stream, gyro_stream, drop_stream, noise_stream = spawn_streams(
                seed, 4
            )
            self._flow_rng: Optional[np.random.Generator] = np.random.default_rng(
                flow_stream
            )
            self._gyro_rng: Optional[np.random.Generator] = np.random.default_rng(
                gyro_stream
            )
            ranger_rng: Optional[np.random.Generator] = np.random.default_rng(
                drop_stream
            )
            ranger_noise_rng: Optional[np.random.Generator] = np.random.default_rng(
                noise_stream
            )
        else:
            self._flow_rng = None
            self._gyro_rng = None
            ranger_rng = None
            ranger_noise_rng = None
        if start is None:
            start = Vec2(1.0, 1.0)
        self.dynamics = DroneDynamics(
            room=room,
            state=DroneState(position=start, heading=heading),
            velocity_tau=self.config.velocity_tau,
            yaw_tau=self.config.yaw_tau,
        )
        self.controller = VelocityController()
        self.estimator = StateEstimator(initial_position=start, initial_heading=heading)
        self.multiranger = MultiRangerDeck(
            noise_std=self.config.tof_noise_std if ranger_rng is not None else 0.0,
            dropout_prob=(
                self.config.tof_dropout_prob if ranger_rng is not None else 0.0
            ),
            rng=ranger_rng,
            noise_rng=ranger_noise_rng,
        )
        self.flowdeck = FlowDeck(
            velocity_noise_std=self.config.odometry_noise_std, rng=self._flow_rng
        )
        self.gyro = Gyro(noise_std=self.config.gyro_noise_std, rng=self._gyro_rng)
        self.camera = HimaxCamera(batched=self.config.batched_sensors)
        self._dt = 1.0 / self.config.control_rate_hz
        self._tof_period = 1.0 / self.multiranger.rate_hz
        self._last_tof_time = -float("inf")
        self._last_reading: Optional[RangerReading] = None

    @property
    def dt(self) -> float:
        """Control-loop period, s."""
        return self._dt

    @property
    def state(self) -> DroneState:
        """Ground-truth state (what the mocap system would report)."""
        return self.dynamics.state

    @property
    def estimated_state(self) -> EstimatedState:
        """Onboard state estimate (what the policies can use)."""
        return self.estimator.estimate

    @property
    def radius(self) -> float:
        """Collision radius of the airframe."""
        return CRAZYFLIE_RADIUS_M

    def read_ranger(self) -> RangerReading:
        """Latest Multi-ranger reading, refreshed at the deck's 20 Hz.

        Between refreshes the previous reading is returned, exactly like
        polling the deck registers faster than the sensor ranging rate.
        """
        now = self.state.time
        if (
            self._last_reading is None
            or now - self._last_tof_time >= self._tof_period - 1e-9
        ):
            state = self.state
            if self.config.batched_sensors:
                self._last_reading = self.multiranger.read_batched(
                    self.room.raycaster, state.position, state.heading
                )
            else:
                self._last_reading = self.multiranger.read(
                    self.room.raycaster, state.position, state.heading
                )
            self._last_tof_time = now
        return self._last_reading

    def step(self, setpoint: SetPoint) -> DroneState:
        """Run one 50 Hz control tick under the given set-point."""
        clamped = self.controller.clamp(setpoint)
        state = self.dynamics.step(clamped, self._dt)
        flow_rng = self._flow_rng
        gyro_rng = self._gyro_rng
        if (
            flow_rng is not None
            and gyro_rng is not None
            and self.config.batched_sensors
        ):
            # One pre-drawn block per sensor stream replaces the scalar
            # generator calls; each stream is consumed in the same order
            # as the reference path (flow vx, vy, height; then gyro), so
            # the tick is bit-identical. The flow/gyro noise application
            # is inlined (normal(0, s) is s * standard_normal()
            # internally) and the height term is never consumed by the
            # estimator, so only its draw matters.
            zf = flow_rng.standard_normal(3).tolist()
            zg = float(gyro_rng.standard_normal())
            flow = self.flowdeck
            gyro = self.gyro
            self.estimator.update_raw(
                flow.scale * state.vx_body + flow.velocity_noise_std * zf[0],
                flow.scale * state.vy_body + flow.velocity_noise_std * zf[1],
                state.yaw_rate + gyro.bias + gyro.noise_std * zg,
                self._dt,
            )
        else:
            odo = self.flowdeck.read(
                state.vx_body, state.vy_body, self.camera.height_m
            )
            gyro_rate = self.gyro.read(state.yaw_rate)
            self.estimator.update(odo, gyro_rate, self._dt)
        return state
