"""Dead-reckoning state estimator fusing Flow-deck odometry and the gyro.

Mirrors what the STM32 provides to the exploration policies: a heading
estimate from gyro integration and a position estimate from integrating
the body-frame flow velocities. Both drift; none of the paper's policies
relies on globally consistent position, which is precisely why they work
on this class of platform.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.vec import Vec2, normalize_angle
from repro.sensors.flowdeck import OdometrySample


@dataclass(frozen=True)
class EstimatedState:
    """The estimator's belief about the drone pose."""

    position: Vec2
    heading: float
    vx_body: float
    vy_body: float
    yaw_rate: float
    time: float


class StateEstimator:
    """Integrates odometry + gyro into a drifting pose estimate."""

    def __init__(self, initial_position: Vec2 = Vec2(0.0, 0.0), initial_heading: float = 0.0):
        self._position = initial_position
        self._heading = initial_heading
        self._vx = 0.0
        self._vy = 0.0
        self._yaw_rate = 0.0
        self._time = 0.0

    @property
    def estimate(self) -> EstimatedState:
        """Current belief."""
        return EstimatedState(
            position=self._position,
            heading=self._heading,
            vx_body=self._vx,
            vy_body=self._vy,
            yaw_rate=self._yaw_rate,
            time=self._time,
        )

    def update(self, odometry: OdometrySample, gyro_yaw_rate: float, dt: float) -> EstimatedState:
        """Fuse one odometry + gyro sample taken over the last ``dt`` s."""
        self._heading = normalize_angle(self._heading + gyro_yaw_rate * dt)
        self._yaw_rate = gyro_yaw_rate
        self._vx = odometry.vx
        self._vy = odometry.vy
        c, s = math.cos(self._heading), math.sin(self._heading)
        self._position = Vec2(
            self._position.x + (c * odometry.vx - s * odometry.vy) * dt,
            self._position.y + (s * odometry.vx + c * odometry.vy) * dt,
        )
        self._time += dt
        return self.estimate
