"""Dead-reckoning state estimator fusing Flow-deck odometry and the gyro.

Mirrors what the STM32 provides to the exploration policies: a heading
estimate from gyro integration and a position estimate from integrating
the body-frame flow velocities. Both drift; none of the paper's policies
relies on globally consistent position, which is precisely why they work
on this class of platform.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.geometry.vec import Vec2, normalize_angle
from repro.sensors.flowdeck import OdometrySample


class EstimatedState:
    """The estimator's belief about the drone pose.

    A ``__slots__`` value class (see :class:`DroneState` for why).
    """

    __slots__ = ("position", "heading", "vx_body", "vy_body", "yaw_rate", "time")

    def __init__(
        self,
        position: Vec2,
        heading: float,
        vx_body: float,
        vy_body: float,
        yaw_rate: float,
        time: float,
    ):
        self.position = position
        self.heading = heading
        self.vx_body = vx_body
        self.vy_body = vy_body
        self.yaw_rate = yaw_rate
        self.time = time

    def __eq__(self, other) -> bool:
        if other.__class__ is EstimatedState:
            return (
                self.position == other.position
                and self.heading == other.heading
                and self.vx_body == other.vx_body
                and self.vy_body == other.vy_body
                and self.yaw_rate == other.yaw_rate
                and self.time == other.time
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(
            (
                self.position,
                self.heading,
                self.vx_body,
                self.vy_body,
                self.yaw_rate,
                self.time,
            )
        )

    def __repr__(self) -> str:
        return (
            f"EstimatedState(position={self.position!r}, heading={self.heading!r}, "
            f"vx_body={self.vx_body!r}, vy_body={self.vy_body!r}, "
            f"yaw_rate={self.yaw_rate!r}, time={self.time!r})"
        )


class StateEstimator:
    """Integrates odometry + gyro into a drifting pose estimate."""

    def __init__(self, initial_position: Vec2 = Vec2(0.0, 0.0), initial_heading: float = 0.0):
        self._position = initial_position
        self._heading = initial_heading
        self._vx = 0.0
        self._vy = 0.0
        self._yaw_rate = 0.0
        self._time = 0.0
        self._estimate: Optional[EstimatedState] = None

    @property
    def estimate(self) -> EstimatedState:
        """Current belief (cached between updates; treat it as read-only)."""
        if self._estimate is None:
            self._estimate = EstimatedState(
                position=self._position,
                heading=self._heading,
                vx_body=self._vx,
                vy_body=self._vy,
                yaw_rate=self._yaw_rate,
                time=self._time,
            )
        return self._estimate

    def update(self, odometry: OdometrySample, gyro_yaw_rate: float, dt: float) -> EstimatedState:
        """Fuse one odometry + gyro sample taken over the last ``dt`` s."""
        self.update_raw(odometry.vx, odometry.vy, gyro_yaw_rate, dt)
        return self.estimate

    def update_raw(
        self, vx: float, vy: float, gyro_yaw_rate: float, dt: float
    ) -> None:
        """:meth:`update` without the sample wrapper (hot tick path).

        The belief object is rebuilt lazily on the next :attr:`estimate`
        access, so a tick costs one pose integration and nothing else.
        """
        self._heading = normalize_angle(self._heading + gyro_yaw_rate * dt)
        self._yaw_rate = gyro_yaw_rate
        self._vx = vx
        self._vy = vy
        c, s = math.cos(self._heading), math.sin(self._heading)
        self._position = Vec2(
            self._position.x + (c * vx - s * vy) * dt,
            self._position.y + (s * vx + c * vy) * dt,
        )
        self._time += dt
        self._estimate = None
