"""Fig. 6: coverage over time (mean/variance) + per-object detection times.

The paper's best configuration -- pseudo-random policy, SSD-MbV2-1.0,
0.5 m/s -- over ``n_runs`` flights: the coverage-vs-time band, and the
detection timeline of the six objects for the best run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.exec import Broker, ProgressCallback, ResultCache, RetryPolicy
from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import ascii_series
from repro.mapping.coverage import CoverageSeries
from repro.mission.closed_loop import SearchResult
from repro.mission.detector_model import DetectorOperatingPoint
from repro.sim import (
    Campaign,
    OperatingPointSpec,
    get_scenario,
    paper_operating_point_spec,
    run_campaign,
)


@dataclass
class Fig6Result:
    grid_times: np.ndarray
    mean_coverage: np.ndarray
    var_coverage: np.ndarray
    best_run: SearchResult  #: the run with the highest detection rate
    runs: List[SearchResult]
    scale_name: str


def run(
    scale: Optional[ExperimentScale] = None,
    operating_point: Optional[DetectorOperatingPoint] = None,
    speed: float = 0.5,
    seed: int = 900,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
    retry: Optional[RetryPolicy] = None,
    keep_going: bool = False,
    broker: Optional[Broker] = None,
) -> Fig6Result:
    """Fly the paper's best configuration ``n_runs`` times via the engine."""
    scale = scale or default_scale()
    op_spec = (
        paper_operating_point_spec("1.0")
        if operating_point is None
        else OperatingPointSpec.from_operating_point("1.0", operating_point)
    )
    campaign = Campaign(
        name="fig6",
        scenarios=(get_scenario("paper-room"),),
        policies=("pseudo-random",),
        speeds=(speed,),
        ssd_widths=("1.0",),
        n_runs=scale.n_runs,
        flight_time_s=scale.flight_time_s,
        kind="search",
        seed=seed,
        operating_points=(op_spec,),
    )
    result = run_campaign(
        campaign, workers=workers, cache=cache, exec_progress=progress,
        retry=retry, keep_going=keep_going, broker=broker,
    )
    runs: List[SearchResult] = [r.to_search_result() for r in result.records]
    grid_times = np.linspace(0.0, scale.flight_time_s, 61)
    mean, var = CoverageSeries.mean_and_variance(
        [r.series for r in runs], grid_times
    )
    best = max(
        runs,
        key=lambda r: (r.detection_rate, -(r.time_to_full_detection() or np.inf)),
    )
    return Fig6Result(
        grid_times=grid_times,
        mean_coverage=mean,
        var_coverage=var,
        best_run=best,
        runs=runs,
        scale_name=scale.name,
    )


def format_figure(result: Fig6Result) -> str:
    lines = [
        f"Fig. 6 (scale={result.scale_name}, {len(result.runs)} runs): "
        "pseudo-random @ 0.5 m/s with SSD-MbV2-1.0",
        ascii_series(
            result.grid_times.tolist(),
            result.mean_coverage.tolist(),
            label="mean coverage",
        ),
        f"final coverage: {result.mean_coverage[-1]:.0%} "
        f"(variance {result.var_coverage[-1]:.1%})",
        f"best-run detection rate: {result.best_run.detection_rate:.0%}",
    ]
    for event in result.best_run.events:
        lines.append(
            f"  {event.time_s:6.1f} s  {event.object_name} "
            f"({event.object_class}) at {event.distance_m:.2f} m"
        )
    full = result.best_run.time_to_full_detection()
    if full is not None:
        lines.append(f"all objects detected in {full:.0f} s")
    return "\n".join(lines)
