"""Table IV: power breakdown of the robotic platform.

The AI-deck draw comes from the same per-width deployment-plan job
Table II runs (:func:`repro.experiments.jobs.deployment_plan`): with a
shared result cache, whichever experiment runs first leaves the plan
behind for the other -- Table IV then derives the platform breakdown
without re-tracing the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exec import Executor, ProgressCallback, ResultCache, RetryPolicy
from repro.experiments import jobs
from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import ascii_table
from repro.hw import AIDeckPowerModel
from repro.hw.power import PlatformPowerBreakdown, platform_power_breakdown


@dataclass
class Table4Result:
    breakdown: PlatformPowerBreakdown
    ai_deck_w: float
    scale_name: str


def run(
    scale: Optional[ExperimentScale] = None,
    width: float = 1.0,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
    retry: Optional[RetryPolicy] = None,
) -> Table4Result:
    """Power breakdown with the given SSD running on the AI-deck."""
    scale = scale or default_scale()
    [payload] = Executor(workers=workers, cache=cache, retry=retry).run(
        [jobs.plan_job(width)], progress=progress
    )
    plan = jobs.plan_from_dict(payload["plan"])
    ai_deck_w = AIDeckPowerModel().power_w(plan.performance)
    breakdown = platform_power_breakdown(ai_deck_w)
    return Table4Result(breakdown=breakdown, ai_deck_w=ai_deck_w, scale_name=scale.name)


def format_table(result: Table4Result) -> str:
    names = list(result.breakdown.components_w)
    pcts = result.breakdown.percentages()
    headers = [""] + names + ["Total"]
    power_row = ["Power [W]"] + [
        f"{result.breakdown.components_w[n]:.3f}" for n in names
    ] + [f"{result.breakdown.total_w:.2f}"]
    pct_row = ["Percentage"] + [f"{pcts[n]:.2f}%" for n in names] + ["100%"]
    return ascii_table(
        headers,
        [power_row, pct_row],
        title="Table IV: power breakdown of the robotic platform",
    )
