"""Fig. 5: mean coverage area per policy and flight speed.

12 configurations (4 policies x 3 speeds), ``n_runs`` flights of 3 min
each, reporting the mean coverage percentage -- the paper's bar chart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import ascii_table
from repro.mission.explorer import ExplorationMission
from repro.policies import POLICY_NAMES, PolicyConfig, make_policy
from repro.world import paper_room

#: The paper's three mean flight speeds, m/s.
PAPER_SPEEDS = (0.1, 0.5, 1.0)


@dataclass
class Fig5Result:
    coverage: Dict[Tuple[str, float], float]  #: (policy, speed) -> mean coverage
    stddev: Dict[Tuple[str, float], float]
    n_runs: int
    scale_name: str

    def best_configuration(self) -> Tuple[str, float]:
        """(policy, speed) with the highest mean coverage."""
        return max(self.coverage, key=self.coverage.get)


def run(
    scale: ExperimentScale = None,
    speeds: Tuple[float, ...] = PAPER_SPEEDS,
    seed: int = 100,
) -> Fig5Result:
    """Sweep every policy x speed configuration."""
    scale = scale or default_scale()
    room = paper_room()
    coverage = {}
    stddev = {}
    for name in POLICY_NAMES:
        for speed in speeds:
            scores: List[float] = []
            for run_idx in range(scale.n_runs):
                policy = make_policy(name, PolicyConfig(cruise_speed=speed))
                mission = ExplorationMission(
                    room, policy, flight_time_s=scale.flight_time_s
                )
                scores.append(mission.run(seed=seed + run_idx).coverage)
            coverage[(name, speed)] = float(np.mean(scores))
            stddev[(name, speed)] = float(np.std(scores))
    return Fig5Result(
        coverage=coverage, stddev=stddev, n_runs=scale.n_runs, scale_name=scale.name
    )


def format_table(result: Fig5Result) -> str:
    speeds = sorted({s for (_, s) in result.coverage})
    headers = ["Policy"] + [f"{s:g} m/s" for s in speeds]
    rows = []
    for name in POLICY_NAMES:
        rows.append(
            [name]
            + [
                f"{result.coverage[(name, s)]:.0%} (±{result.stddev[(name, s)]:.0%})"
                for s in speeds
            ]
        )
    return ascii_table(
        headers,
        rows,
        title=(
            f"Fig. 5 (scale={result.scale_name}, {result.n_runs} runs): "
            "mean coverage area"
        ),
    )
