"""Fig. 5: mean coverage area per policy and flight speed.

12 configurations (4 policies x 3 speeds), ``n_runs`` flights of 3 min
each, reporting the mean coverage percentage -- the paper's bar chart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.exec import Broker, ProgressCallback, ResultCache, RetryPolicy
from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import ascii_table
from repro.policies import POLICY_NAMES
from repro.sim import Campaign, get_scenario, run_campaign

#: The paper's three mean flight speeds, m/s.
PAPER_SPEEDS = (0.1, 0.5, 1.0)


@dataclass
class Fig5Result:
    coverage: Dict[Tuple[str, float], float]  #: (policy, speed) -> mean coverage
    stddev: Dict[Tuple[str, float], float]
    n_runs: int
    scale_name: str

    def best_configuration(self) -> Tuple[str, float]:
        """(policy, speed) with the highest mean coverage."""
        return max(self.coverage, key=self.coverage.get)


def run(
    scale: Optional[ExperimentScale] = None,
    speeds: Tuple[float, ...] = PAPER_SPEEDS,
    seed: int = 100,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
    retry: Optional[RetryPolicy] = None,
    keep_going: bool = False,
    broker: Optional[Broker] = None,
) -> Fig5Result:
    """Sweep every policy x speed configuration via the campaign engine."""
    scale = scale or default_scale()
    campaign = Campaign(
        name="fig5",
        scenarios=(get_scenario("paper-room"),),
        policies=POLICY_NAMES,
        speeds=tuple(speeds),
        n_runs=scale.n_runs,
        flight_time_s=scale.flight_time_s,
        kind="explore",
        seed=seed,
    )
    result = run_campaign(
        campaign, workers=workers, cache=cache, exec_progress=progress,
        retry=retry, keep_going=keep_going, broker=broker,
    )
    agg = result.aggregate(("policy", "speed"), value="coverage")
    return Fig5Result(
        coverage={key: stat.mean for key, stat in agg.items()},
        stddev={key: stat.std for key, stat in agg.items()},
        n_runs=scale.n_runs,
        scale_name=scale.name,
    )


def format_table(result: Fig5Result) -> str:
    speeds = sorted({s for (_, s) in result.coverage})
    headers = ["Policy"] + [f"{s:g} m/s" for s in speeds]
    rows = []
    for name in POLICY_NAMES:
        rows.append(
            [name]
            + [
                f"{result.coverage[(name, s)]:.0%} (±{result.stddev[(name, s)]:.0%})"
                for s in speeds
            ]
        )
    return ascii_table(
        headers,
        rows,
        title=(
            f"Fig. 5 (scale={result.scale_name}, {result.n_runs} runs): "
            "mean coverage area"
        ),
    )
