"""Regenerators for every table and figure of the paper's evaluation.

Each module exposes ``run(scale)`` returning a structured result plus a
``format_*`` helper printing the same rows/series the paper reports.
``scale`` is a :class:`~repro.experiments.config.ExperimentScale`;
:func:`~repro.experiments.config.default_scale` picks the fast smoke
configuration unless ``REPRO_FULL=1`` is set.
"""

from repro.experiments.config import ExperimentScale, FULL_SCALE, SMOKE_SCALE, default_scale

__all__ = ["ExperimentScale", "FULL_SCALE", "SMOKE_SCALE", "default_scale"]
