"""Table III: closed-loop detection rate (6 objects, multiple runs).

Every combination of the two best SSDs (1.0x, 0.75x), the four policies
and the three flight speeds, each averaged over ``n_runs`` flights with
the paper's object layout. Detection uses the calibrated per-frame model
fed by the Table I/II characteristics (mAP, FPS) of each SSD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.exec import Broker, ProgressCallback, ResultCache, RetryPolicy
from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.fig5 import PAPER_SPEEDS
from repro.experiments.reporting import ascii_table
from repro.mission.detector_model import (
    DetectorOperatingPoint,
    paper_operating_points,
)
from repro.policies import POLICY_NAMES
from repro.sim import Campaign, OperatingPointSpec, get_scenario, run_campaign


@dataclass
class Table3Result:
    #: (ssd_width_key, policy, speed) -> mean detection rate
    rates: Dict[Tuple[str, str, float], float]
    stddev: Dict[Tuple[str, str, float], float]
    n_runs: int
    scale_name: str

    def best_configuration(self) -> Tuple[str, str, float]:
        return max(self.rates, key=self.rates.get)


def build_campaign(
    scale: Optional[ExperimentScale] = None,
    operating_points: Optional[Dict[str, DetectorOperatingPoint]] = None,
    widths: Tuple[str, ...] = ("1.0", "0.75"),
    speeds: Tuple[float, ...] = PAPER_SPEEDS,
    seed: int = 500,
) -> Campaign:
    """The Table III sweep as a :class:`~repro.sim.Campaign`."""
    scale = scale or default_scale()
    points = operating_points or paper_operating_points()
    return Campaign(
        name="table3",
        scenarios=(get_scenario("paper-room"),),
        policies=POLICY_NAMES,
        speeds=tuple(speeds),
        ssd_widths=tuple(widths),
        n_runs=scale.n_runs,
        flight_time_s=scale.flight_time_s,
        kind="search",
        seed=seed,
        operating_points=tuple(
            OperatingPointSpec.from_operating_point(w, points[w]) for w in widths
        ),
    )


def run(
    scale: Optional[ExperimentScale] = None,
    operating_points: Optional[Dict[str, DetectorOperatingPoint]] = None,
    widths: Tuple[str, ...] = ("1.0", "0.75"),
    speeds: Tuple[float, ...] = PAPER_SPEEDS,
    seed: int = 500,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
    retry: Optional[RetryPolicy] = None,
    keep_going: bool = False,
    broker: Optional[Broker] = None,
) -> Table3Result:
    """Sweep SSD x policy x speed through the campaign engine.

    Args:
        scale: experiment scale.
        operating_points: SSD characteristics; defaults to the paper's
            Table I/II values. Pass the measured Table 1 results to close
            the loop end-to-end on this library's own numbers.
        widths: which SSDs to fly (the paper flies the best two).
        speeds: mean flight speeds.
        seed: campaign root seed; every flight spawns an independent
            stream, so results do not depend on execution order.
        workers: ``None`` for the serial path, ``0`` for one worker per
            core, otherwise the pool size (identical results either way).
        cache: optional persistent result cache; missions already flown
            for this sweep load instead of re-flying.
        broker: optional shared work queue: missions are enqueued and
            external ``python -m repro.exec worker`` daemons fly them
            (``workers`` and ``cache`` then apply on the worker side);
            results are byte-identical to in-process execution.
    """
    scale = scale or default_scale()
    campaign = build_campaign(scale, operating_points, widths, speeds, seed)
    result = run_campaign(
        campaign, workers=workers, cache=cache, exec_progress=progress,
        retry=retry, keep_going=keep_going, broker=broker,
    )
    agg = result.aggregate(("ssd_width", "policy", "speed"), value="detection_rate")
    return Table3Result(
        rates={key: stat.mean for key, stat in agg.items()},
        stddev={key: stat.std for key, stat in agg.items()},
        n_runs=scale.n_runs,
        scale_name=scale.name,
    )


def format_table(result: Table3Result) -> str:
    widths = sorted({w for (w, _, _) in result.rates}, key=float, reverse=True)
    speeds = sorted({s for (_, _, s) in result.rates})
    headers = ["SSD", "Speed [m/s]"] + list(POLICY_NAMES)
    rows = []
    for width in widths:
        for speed in speeds:
            rows.append(
                [f"{width}x", f"{speed:g}"]
                + [
                    f"{result.rates[(width, p, speed)]:.0%}"
                    for p in POLICY_NAMES
                ]
            )
    return ascii_table(
        headers,
        rows,
        title=(
            f"Table III (scale={result.scale_name}, {result.n_runs} runs): "
            "average detection rate, 6 objects"
        ),
    )
