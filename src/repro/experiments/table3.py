"""Table III: closed-loop detection rate (6 objects, multiple runs).

Every combination of the two best SSDs (1.0x, 0.75x), the four policies
and the three flight speeds, each averaged over ``n_runs`` flights with
the paper's object layout. Detection uses the calibrated per-frame model
fed by the Table I/II characteristics (mAP, FPS) of each SSD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.evaluation.detection_rate import aggregate_detection_rate
from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.fig5 import PAPER_SPEEDS
from repro.experiments.reporting import ascii_table
from repro.mission.closed_loop import ClosedLoopMission
from repro.mission.detector_model import (
    CalibratedDetectorModel,
    DetectorOperatingPoint,
    paper_operating_points,
)
from repro.policies import POLICY_NAMES, PolicyConfig, make_policy
from repro.world import paper_object_layout, paper_room


@dataclass
class Table3Result:
    #: (ssd_width_key, policy, speed) -> mean detection rate
    rates: Dict[Tuple[str, str, float], float]
    stddev: Dict[Tuple[str, str, float], float]
    n_runs: int
    scale_name: str

    def best_configuration(self) -> Tuple[str, str, float]:
        return max(self.rates, key=self.rates.get)


def run(
    scale: ExperimentScale = None,
    operating_points: Optional[Dict[str, DetectorOperatingPoint]] = None,
    widths: Tuple[str, ...] = ("1.0", "0.75"),
    speeds: Tuple[float, ...] = PAPER_SPEEDS,
    seed: int = 500,
) -> Table3Result:
    """Sweep SSD x policy x speed.

    Args:
        scale: experiment scale.
        operating_points: SSD characteristics; defaults to the paper's
            Table I/II values. Pass the measured Table 1 results to close
            the loop end-to-end on this library's own numbers.
        widths: which SSDs to fly (the paper flies the best two).
        speeds: mean flight speeds.
        seed: base RNG seed.
    """
    scale = scale or default_scale()
    points = operating_points or paper_operating_points()
    room = paper_room()
    objects = paper_object_layout()
    rates = {}
    stddev = {}
    for width in widths:
        op = points[width]
        channel = CalibratedDetectorModel(op)
        for policy_name in POLICY_NAMES:
            for speed in speeds:
                results = []
                for run_idx in range(scale.n_runs):
                    policy = make_policy(policy_name, PolicyConfig(cruise_speed=speed))
                    mission = ClosedLoopMission(
                        room,
                        objects,
                        policy,
                        channel,
                        op,
                        flight_time_s=scale.flight_time_s,
                    )
                    results.append(mission.run(seed=seed + run_idx))
                mean, std = aggregate_detection_rate(results)
                rates[(width, policy_name, speed)] = mean
                stddev[(width, policy_name, speed)] = std
    return Table3Result(
        rates=rates, stddev=stddev, n_runs=scale.n_runs, scale_name=scale.name
    )


def format_table(result: Table3Result) -> str:
    widths = sorted({w for (w, _, _) in result.rates}, key=float, reverse=True)
    speeds = sorted({s for (_, _, s) in result.rates})
    headers = ["SSD", "Speed [m/s]"] + list(POLICY_NAMES)
    rows = []
    for width in widths:
        for speed in speeds:
            rows.append(
                [f"{width}x", f"{speed:g}"]
                + [
                    f"{result.rates[(width, p, speed)]:.0%}"
                    for p in POLICY_NAMES
                ]
            )
    return ascii_table(
        headers,
        rows,
        title=(
            f"Table III (scale={result.scale_name}, {result.n_runs} runs): "
            "average detection rate, 6 objects"
        ),
    )
