"""ASCII table/series rendering for the experiment harness."""

from __future__ import annotations

from typing import List, Sequence


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = "") -> str:
    """Render a padded ASCII table."""
    cols = len(headers)
    for row in rows:
        if len(row) != cols:
            raise ValueError("row width disagrees with headers")
    widths = [
        max(len(str(headers[c])), max((len(str(r[c])) for r in rows), default=0))
        for c in range(cols)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_series(times: Sequence[float], values: Sequence[float], width: int = 60, label: str = "") -> str:
    """Render a (time, value) series as a coarse ASCII sparkline block."""
    if len(times) != len(values):
        raise ValueError("times and values disagree")
    if not times:
        return label
    ramp = " .:-=+*#%@"
    n = min(width, len(values))
    idx = [int(i * (len(values) - 1) / max(n - 1, 1)) for i in range(n)]
    vmax = max(values) or 1.0
    chars = [ramp[min(len(ramp) - 1, int(values[i] / vmax * (len(ramp) - 1)))] for i in idx]
    header = f"{label} (0..{times[-1]:.0f}s, peak {vmax:.2f})" if label else ""
    return (header + "\n" if header else "") + "".join(chars)
