"""ASCII table/series rendering + machine metadata for the experiment harness."""

from __future__ import annotations

import os
import platform
from typing import Dict, List, Optional, Sequence, Union


def _cpu_model() -> Optional[str]:
    """Human CPU model string from ``/proc/cpuinfo``; ``None`` off-Linux."""
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        return None
    return None


def machine_info() -> Dict[str, Union[str, int, None]]:
    """Machine fingerprint stamped into ``BENCH_*.json`` reports.

    Benchmark numbers are meaningless without knowing what they ran on:
    ``cpu_count`` is the machine's total core count, while
    ``cpus_available`` is what the process may actually use
    (``sched_getaffinity`` -- CI runners and cgroup-limited containers
    often pin far fewer cores than the box has), and ``cpu_model``
    names the silicon.
    """
    try:
        available: Optional[int] = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux platforms
        available = None
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "cpus_available": available,
        "cpu_model": _cpu_model(),
    }


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = "") -> str:
    """Render a padded ASCII table."""
    cols = len(headers)
    for row in rows:
        if len(row) != cols:
            raise ValueError("row width disagrees with headers")
    widths = [
        max(len(str(headers[c])), max((len(str(r[c])) for r in rows), default=0))
        for c in range(cols)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_series(times: Sequence[float], values: Sequence[float], width: int = 60, label: str = "") -> str:
    """Render a (time, value) series as a coarse ASCII sparkline block."""
    if len(times) != len(values):
        raise ValueError("times and values disagree")
    if not times:
        return label
    ramp = " .:-=+*#%@"
    n = min(width, len(values))
    idx = [int(i * (len(values) - 1) / max(n - 1, 1)) for i in range(n)]
    vmax = max(values) or 1.0
    chars = [ramp[min(len(ramp) - 1, int(values[i] / vmax * (len(ramp) - 1)))] for i in idx]
    header = f"{label} (0..{times[-1]:.0f}s, peak {vmax:.2f})" if label else ""
    return (header + "\n" if header else "") + "".join(chars)
