"""Fig. 3: occupancy heatmaps of the four exploration policies.

One 3-minute flight at 0.5 m/s per policy in the paper room; occupancy
time per 0.5 m cell, rendered as ASCII (the paper caps the color scale at
18 s). Each policy's flight is one execution-layer job
(:func:`repro.experiments.jobs.explore_policy`) -- pass ``workers=`` to
fly the four policies in parallel and ``cache=`` to reuse finished
heatmaps across runs. Every flight draws the identical seed stream the
original in-process loop used, so the figures are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.exec import Executor, ProgressCallback, ResultCache, RetryPolicy
from repro.experiments import jobs
from repro.experiments.config import ExperimentScale, default_scale
from repro.mapping.occupancy import OccupancyGrid
from repro.policies import POLICY_NAMES


@dataclass
class Fig3Result:
    grids: Dict[str, OccupancyGrid]
    coverage: Dict[str, float]
    scale_name: str


def run(
    scale: Optional[ExperimentScale] = None,
    speed: float = 0.5,
    seed: int = 7,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
    retry: Optional[RetryPolicy] = None,
) -> Fig3Result:
    """Fly each policy once and collect its occupancy grid.

    The grids are rebuilt from the jobs' exact occupancy arrays
    (:meth:`~repro.mapping.occupancy.OccupancyGrid.from_occupancy`);
    the reported coverage is the mission's reachable-normalized value
    from the job payload.
    """
    scale = scale or default_scale()
    job_list = [
        jobs.fig3_job(name, speed, scale.flight_time_s, seed)
        for name in POLICY_NAMES
    ]
    payloads = Executor(workers=workers, cache=cache, retry=retry).run(
        job_list, progress=progress
    )
    grids = {}
    coverage = {}
    for name, payload in zip(POLICY_NAMES, payloads):
        grids[name] = jobs.rebuild_grid(payload)
        coverage[name] = payload["coverage"]
    return Fig3Result(grids=grids, coverage=coverage, scale_name=scale.name)


def format_maps(result: Fig3Result, cap_seconds: float = 18.0) -> str:
    """ASCII heatmaps, one block per policy ('.' = never visited)."""
    blocks = []
    for name, grid in result.grids.items():
        blocks.append(
            f"[{name}] coverage {result.coverage[name]:.0%} "
            f"(occupancy time capped at {cap_seconds:.0f}s)\n"
            + grid.render_ascii(cap_seconds)
        )
    return "\n\n".join(blocks)
