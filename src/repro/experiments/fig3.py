"""Fig. 3: occupancy heatmaps of the four exploration policies.

One 3-minute flight at 0.5 m/s per policy in the paper room; occupancy
time per 0.5 m cell, rendered as ASCII (the paper caps the color scale at
18 s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.experiments.config import ExperimentScale, default_scale
from repro.mapping.occupancy import OccupancyGrid
from repro.mission.explorer import ExplorationMission
from repro.policies import POLICY_NAMES, PolicyConfig, make_policy
from repro.world import paper_room


@dataclass
class Fig3Result:
    grids: Dict[str, OccupancyGrid]
    coverage: Dict[str, float]
    scale_name: str


def run(scale: ExperimentScale = None, speed: float = 0.5, seed: int = 7) -> Fig3Result:
    """Fly each policy once and collect its occupancy grid."""
    scale = scale or default_scale()
    room = paper_room()
    grids = {}
    coverage = {}
    for name in POLICY_NAMES:
        policy = make_policy(name, PolicyConfig(cruise_speed=speed))
        mission = ExplorationMission(room, policy, flight_time_s=scale.flight_time_s)
        result = mission.run(seed=seed)
        grids[name] = result.grid
        coverage[name] = result.coverage
    return Fig3Result(grids=grids, coverage=coverage, scale_name=scale.name)


def format_maps(result: Fig3Result, cap_seconds: float = 18.0) -> str:
    """ASCII heatmaps, one block per policy ('.' = never visited)."""
    blocks = []
    for name, grid in result.grids.items():
        blocks.append(
            f"[{name}] coverage {result.coverage[name]:.0%} "
            f"(occupancy time capped at {cap_seconds:.0f}s)\n"
            + grid.render_ascii(cap_seconds)
        )
    return "\n\n".join(blocks)
