"""CLI entry: regenerate any of the paper's tables/figures.

Usage:
    python -m repro.experiments list
    python -m repro.experiments table2 fig5
    python -m repro.experiments all --full
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import FULL_SCALE, SMOKE_SCALE
from repro.experiments import fig3, fig5, fig6, table1, table2, table3, table4

# Flight experiments route through the repro.sim campaign engine and
# accept a worker-pool size; the static ones ignore it.
_EXPERIMENTS = {
    "table1": lambda s, w: table1.format_table(table1.run(s)),
    "table2": lambda s, w: table2.format_table(table2.run(s)),
    "table3": lambda s, w: table3.format_table(table3.run(s, workers=w)),
    "table4": lambda s, w: table4.format_table(table4.run(s)),
    "fig3": lambda s, w: fig3.format_maps(fig3.run(s)),
    "fig5": lambda s, w: fig5.format_table(fig5.run(s, workers=w)),
    "fig6": lambda s, w: fig6.format_figure(fig6.run(s, workers=w)),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments", description=__doc__
    )
    parser.add_argument(
        "names",
        nargs="+",
        help="experiment names (table1..table4, fig3, fig5, fig6), 'all', or 'list'",
    )
    parser.add_argument(
        "--full", action="store_true", help="paper-scale runs (slow)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-pool size for the flight experiments; 0 = all cores",
    )
    args = parser.parse_args(argv)
    if args.names == ["list"]:
        for name in _EXPERIMENTS:
            print(name)
        return 0
    names = list(_EXPERIMENTS) if args.names == ["all"] else args.names
    unknown = [n for n in names if n not in _EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")
    scale = FULL_SCALE if args.full else SMOKE_SCALE
    for name in names:
        start = time.time()
        output = _EXPERIMENTS[name](scale, args.workers)
        print(f"\n===== {name} ({time.time() - start:.0f}s) =====")
        print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
