"""CLI entry: regenerate any of the paper's tables/figures.

Usage:
    python -m repro.experiments list
    python -m repro.experiments table2 fig5
    python -m repro.experiments all --full --workers 0
    python -m repro.experiments cache stats

Every experiment runs through the shared execution layer
(:mod:`repro.exec`): ``--workers`` fans independent jobs (missions,
per-width trainings) over a process pool, and results are cached under
``.repro-cache`` (``--cache-dir`` / ``$REPRO_CACHE_DIR`` override) so
repeated runs -- and experiments sharing work, like Tables II and IV --
load finished jobs instead of recomputing them. ``--no-cache`` opts out.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.exec import ResultCache, default_cache_dir, open_cache
from repro.experiments import FULL_SCALE, SMOKE_SCALE
from repro.experiments import fig3, fig5, fig6, table1, table2, table3, table4
from repro.obs import ProgressLine

# Every experiment accepts the shared executor knobs: a worker-pool
# size, an optional persistent result cache, and an optional live
# progress callback.
_EXPERIMENTS = {
    "table1": lambda s, w, c, p: table1.format_table(
        table1.run(s, workers=w, cache=c, progress=p)
    ),
    "table2": lambda s, w, c, p: table2.format_table(
        table2.run(s, workers=w, cache=c, progress=p)
    ),
    "table3": lambda s, w, c, p: table3.format_table(
        table3.run(s, workers=w, cache=c, progress=p)
    ),
    "table4": lambda s, w, c, p: table4.format_table(
        table4.run(s, workers=w, cache=c, progress=p)
    ),
    "fig3": lambda s, w, c, p: fig3.format_maps(
        fig3.run(s, workers=w, cache=c, progress=p)
    ),
    "fig5": lambda s, w, c, p: fig5.format_table(
        fig5.run(s, workers=w, cache=c, progress=p)
    ),
    "fig6": lambda s, w, c, p: fig6.format_figure(
        fig6.run(s, workers=w, cache=c, progress=p)
    ),
}


def _cmd_cache(names, cache_dir) -> int:
    action = names[1] if len(names) > 1 else "stats"
    if action not in ("stats", "clear"):
        print(f"error: unknown cache action {action!r} (stats, clear)", file=sys.stderr)
        return 2
    cache = ResultCache(cache_dir or default_cache_dir())
    if action == "clear":
        print(f"removed {cache.clear()} cached results from {cache.directory}")
        return 0
    stats = cache.stats()
    print(
        f"cache {cache.directory}: {stats.entries} results, "
        f"{stats.total_bytes / 1e6:.2f} MB"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments", description=__doc__
    )
    parser.add_argument(
        "names",
        nargs="+",
        help=(
            "experiment names (table1..table4, fig3, fig5, fig6), 'all', "
            "'list', or 'cache stats'/'cache clear'"
        ),
    )
    parser.add_argument(
        "--full", action="store_true", help="paper-scale runs (slow)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-pool size for the experiment jobs; 0 = all cores",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always recompute; neither read nor write the result cache",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="live single-line job progress (done/total, hits vs executed, ETA)",
    )
    args = parser.parse_args(argv)
    if args.names == ["list"]:
        for name in _EXPERIMENTS:
            print(name)
        return 0
    if args.names[0] == "cache":
        return _cmd_cache(args.names, args.cache_dir)
    names = list(_EXPERIMENTS) if args.names == ["all"] else args.names
    unknown = [n for n in names if n not in _EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")
    scale = FULL_SCALE if args.full else SMOKE_SCALE
    cache = open_cache(args.cache_dir, enabled=not args.no_cache)
    for name in names:
        start = time.time()
        hits = cache.hits if cache else 0
        misses = cache.misses if cache else 0
        line = ProgressLine(name) if args.progress else None
        try:
            output = _EXPERIMENTS[name](scale, args.workers, cache, line)
        finally:
            if line is not None:
                line.finish()
        print(f"\n===== {name} ({time.time() - start:.0f}s) =====")
        print(output)
        if cache is not None:
            print(
                f"[cache: {cache.hits - hits} hits, "
                f"{cache.misses - misses} misses ({cache.directory})]"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
