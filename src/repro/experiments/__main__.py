"""CLI entry: regenerate any of the paper's tables/figures.

Usage:
    python -m repro.experiments list
    python -m repro.experiments table2 fig5
    python -m repro.experiments all --full --workers 0
    python -m repro.experiments cache stats

Every experiment runs through the shared execution layer
(:mod:`repro.exec`): ``--workers`` fans independent jobs (missions,
per-width trainings) over a process pool, and results are cached under
``.repro-cache`` (``--cache-dir`` / ``$REPRO_CACHE_DIR`` override) so
repeated runs -- and experiments sharing work, like Tables II and IV --
load finished jobs instead of recomputing them. ``--no-cache`` opts out.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import ExecError
from repro.exec import (
    Broker,
    ResultCache,
    RetryPolicy,
    default_cache_dir,
    open_cache,
)
from repro.exec.cache import parse_age, parse_size
from repro.experiments import FULL_SCALE, SMOKE_SCALE
from repro.experiments import fig3, fig5, fig6, table1, table2, table3, table4
from repro.obs import ProgressLine

# Every experiment accepts the shared executor knobs: a worker-pool
# size, an optional persistent result cache, an optional live progress
# callback, and an optional retry policy. ``kg`` (--keep-going) only
# reaches the campaign-backed experiments: a table built from per-width
# jobs has no meaningful partial result, but a campaign aggregates over
# whichever missions survived.
_EXPERIMENTS = {
    "table1": lambda s, w, c, p, r, kg, b: table1.format_table(
        table1.run(s, workers=w, cache=c, progress=p, retry=r)
    ),
    "table2": lambda s, w, c, p, r, kg, b: table2.format_table(
        table2.run(s, workers=w, cache=c, progress=p, retry=r)
    ),
    "table3": lambda s, w, c, p, r, kg, b: table3.format_table(
        table3.run(
            s, workers=w, cache=c, progress=p, retry=r, keep_going=kg, broker=b
        )
    ),
    "table4": lambda s, w, c, p, r, kg, b: table4.format_table(
        table4.run(s, workers=w, cache=c, progress=p, retry=r)
    ),
    "fig3": lambda s, w, c, p, r, kg, b: fig3.format_maps(
        fig3.run(s, workers=w, cache=c, progress=p, retry=r)
    ),
    "fig5": lambda s, w, c, p, r, kg, b: fig5.format_table(
        fig5.run(
            s, workers=w, cache=c, progress=p, retry=r, keep_going=kg, broker=b
        )
    ),
    "fig6": lambda s, w, c, p, r, kg, b: fig6.format_figure(
        fig6.run(
            s, workers=w, cache=c, progress=p, retry=r, keep_going=kg, broker=b
        )
    ),
}

#: Experiments that can shard through ``--broker`` (campaign-backed).
_BROKER_AWARE = frozenset({"table3", "fig5", "fig6"})


def _cmd_cache(names, args) -> int:
    action = names[1] if len(names) > 1 else "stats"
    if action not in ("stats", "clear", "evict"):
        print(
            f"error: unknown cache action {action!r} (stats, clear, evict)",
            file=sys.stderr,
        )
        return 2
    cache = ResultCache(args.cache_dir or default_cache_dir())
    if action == "clear":
        print(f"removed {cache.clear()} cached results from {cache.directory}")
        return 0
    if action == "evict":
        if args.max_bytes is None and args.max_age is None:
            print(
                "error: cache evict needs --max-bytes and/or --max-age",
                file=sys.stderr,
            )
            return 2
        report = cache.evict(
            max_bytes=None if args.max_bytes is None else parse_size(args.max_bytes),
            max_age_s=None if args.max_age is None else parse_age(args.max_age),
        )
        print(
            f"evicted {report.removed_entries} entries "
            f"(+{report.removed_traces} paired traces, "
            f"{report.removed_junk} junk files), freed "
            f"{report.freed_bytes / 1e6:.2f} MB; "
            f"{report.remaining_bytes / 1e6:.2f} MB remain in {cache.directory}"
        )
        return 0
    stats = cache.stats()
    print(
        f"cache {cache.directory}: {stats.entries} results, "
        f"{stats.total_bytes / 1e6:.2f} MB"
    )
    if stats.orphans or stats.quarantined:
        print(
            f"  junk: {stats.orphans} orphaned temp files, "
            f"{stats.quarantined} quarantined corrupt entries"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments", description=__doc__
    )
    parser.add_argument(
        "names",
        nargs="+",
        help=(
            "experiment names (table1..table4, fig3, fig5, fig6), 'all', "
            "'list', or 'cache stats'/'cache clear'"
        ),
    )
    parser.add_argument(
        "--full", action="store_true", help="paper-scale runs (slow)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-pool size for the experiment jobs; 0 = all cores",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always recompute; neither read nor write the result cache",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="live single-line job progress (done/total, hits vs executed, ETA)",
    )
    parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="attempts per job (1 = no retries); only transient failures "
        "(crashed workers, timeouts, flaky I/O) are retried",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-attempt wall-clock budget per job",
    )
    parser.add_argument(
        "--keep-going", action="store_true",
        help="campaign-backed experiments (table3, fig5, fig6) aggregate "
        "over the missions that survived instead of aborting on the "
        "first exhausted one",
    )
    parser.add_argument(
        "--broker", default=None, metavar="PATH",
        help="campaign-backed experiments (table3, fig5, fig6) shard "
        "their missions through this queue database; drain with "
        "`python -m repro.exec worker --broker PATH` (byte-identical "
        "results)",
    )
    parser.add_argument(
        "--max-bytes", default=None, metavar="SIZE",
        help="for `cache evict`: byte budget (k/M/G suffixes ok)",
    )
    parser.add_argument(
        "--max-age", default=None, metavar="AGE",
        help="for `cache evict`: drop entries last used longer ago than "
        "this (s/m/h/d suffixes ok)",
    )
    args = parser.parse_args(argv)
    if args.names == ["list"]:
        for name in _EXPERIMENTS:
            print(name)
        return 0
    if args.names[0] == "cache":
        try:
            return _cmd_cache(args.names, args)
        except ExecError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    names = list(_EXPERIMENTS) if args.names == ["all"] else args.names
    unknown = [n for n in names if n not in _EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")
    scale = FULL_SCALE if args.full else SMOKE_SCALE
    cache = open_cache(args.cache_dir, enabled=not args.no_cache)
    retry = RetryPolicy(max_attempts=args.retries, timeout_s=args.timeout)
    broker = Broker(args.broker) if args.broker else None
    if broker is not None:
        unsharded = [n for n in names if n not in _BROKER_AWARE]
        if unsharded:
            print(
                f"note: --broker only shards {', '.join(sorted(_BROKER_AWARE))}; "
                f"{', '.join(unsharded)} run in-process",
                file=sys.stderr,
            )
    for name in names:
        start = time.time()
        hits = cache.hits if cache else 0
        misses = cache.misses if cache else 0
        line = ProgressLine(name) if args.progress else None
        try:
            output = _EXPERIMENTS[name](
                scale, args.workers, cache, line, retry, args.keep_going,
                broker if name in _BROKER_AWARE else None,
            )
        finally:
            if line is not None:
                line.finish()
        print(f"\n===== {name} ({time.time() - start:.0f}s) =====")
        print(output)
        if cache is not None:
            print(
                f"[cache: {cache.hits - hits} hits, "
                f"{cache.misses - misses} misses ({cache.directory})]"
            )
    if broker is not None:
        broker.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
